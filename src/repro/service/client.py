"""Blocking client SDK for the experiment service.

A thin, dependency-free wrapper over :mod:`http.client` (stdlib) that
speaks the ``/v1`` API: submit jobs, poll or stream their progress,
fetch results, cancel, and read server stats.  This is the library the
``repro submit`` / ``repro jobs`` CLI commands are built on, the one
the golden bit-identity smoke tests drive, and -- via the ``fleet_*``
methods -- the transport layer of every fleet worker.

    client = ServiceClient("http://127.0.0.1:8035")
    job = client.submit(benchmarks=["mcf"], techniques=["sampler"], sweep=True)
    for event in client.stream_events(job["id"]):
        print(event["event"])
    result = client.result(job["id"])      # == export_json of the CLI sweep

Every HTTP error surfaces as :class:`ServiceError` carrying the status
code and the server's message; 429 backpressure additionally carries
``retry_after``.

Transient failures are retried *inside* the client: connection resets
and refusals, torn responses, and 429/503 answers are retried up to
``max_retries`` times with exponential backoff plus jitter (a server's
``Retry-After`` hint, when present, overrides the computed delay, capped
at ``backoff_cap``).  Other 4xx/5xx statuses are never retried -- they
are answers, not weather.  Construct with ``max_retries=0`` to disable
retries entirely and see every failure raw (the backpressure tests and
the fleet blob fetch path, which runs its own attempt loop, do this).
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["ServiceClient", "ServiceError"]

_RETRYABLE_STATUSES = (429, 503)


class ServiceError(Exception):
    """An HTTP-level failure from the service."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        self.status = status
        self.message = message
        self.retry_after = retry_after
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Blocking client bound to one service base URL.

    Args:
        base_url: ``http://host:port`` (scheme optional).
        timeout: per-request socket timeout, seconds.
        max_retries: extra attempts after a retryable failure (429/503
            or a transport error); 0 disables retrying.
        backoff: base delay before the first retry, seconds; doubles per
            attempt with jitter in ``[0.5, 1.0]`` of the computed delay.
        backoff_cap: upper bound on any single delay, including one a
            ``Retry-After`` header asks for.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        max_retries: int = 3,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        netloc = parsed.netloc or parsed.path  # accept "host:port" without scheme
        host, _, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retries_performed = 0  # observability: total retries, all calls

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            data = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status,
                    data.get("error", raw.decode("utf-8", "replace")),
                    retry_after=float(retry_after) if retry_after else None,
                )
            return data
        finally:
            connection.close()

    def _retry_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Delay before retry number ``attempt`` (1-based); the server's
        ``Retry-After``, when given, wins -- capped, never amplified."""
        if retry_after is not None:
            return min(max(retry_after, 0.0), self.backoff_cap)
        delay = min(self.backoff_cap, self.backoff * (2.0 ** (attempt - 1)))
        return delay * (0.5 + random.random() / 2.0)

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if (
                    exc.status not in _RETRYABLE_STATUSES
                    or attempt >= self.max_retries
                ):
                    raise
                delay = self._retry_delay(attempt + 1, exc.retry_after)
            except (OSError, http.client.HTTPException):
                # Connection refused/reset, timeout, torn response --
                # the request may or may not have landed; every /v1
                # mutation is idempotent or dedup'd, so retrying is safe.
                if attempt >= self.max_retries:
                    raise
                delay = self._retry_delay(attempt + 1, None)
            attempt += 1
            self.retries_performed += 1
            time.sleep(delay)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        techniques: Optional[Sequence[str]] = None,
        benchmark: Optional[str] = None,
        technique: Optional[str] = None,
        sweep: bool = False,
        config: Optional[Dict] = None,
        client: str = "anonymous",
        priority: int = 0,
    ) -> Dict:
        """Submit one cell (``benchmark=.../technique=...``) or a sweep
        (``benchmarks=[...], techniques=[...], sweep=True``).  Returns
        the created job record (``state`` may already be ``done`` when
        every cell was a dedup hit)."""
        body: Dict = {"sweep": sweep, "client": client, "priority": priority}
        if benchmarks is not None:
            body["benchmarks"] = list(benchmarks)
        if techniques is not None:
            body["techniques"] = list(techniques)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if technique is not None:
            body["technique"] = technique
        if config is not None:
            body["config"] = dict(config)
        return self._request("POST", "/v1/jobs", body)

    def get(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self) -> List[Dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.1,
    ) -> Dict:
        """Block until the job reaches a terminal state; returns the
        final job record.  Raises TimeoutError after ``timeout``."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            job = self.get(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)

    def stream_events(self, job_id: str, follow: bool = True) -> Iterator[Dict]:
        """Yield the job's NDJSON progress events as dicts.

        With ``follow=True`` (default) the stream runs until the job
        reaches a terminal state; the final event is ``sweep_finished``.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            suffix = "" if follow else "?follow=0"
            connection.request("GET", f"/v1/jobs/{job_id}/events{suffix}")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode("utf-8")).get("error", "")
                except Exception:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def submit_and_wait(
        self, timeout: Optional[float] = None, **submit_kwargs
    ) -> Dict:
        """Submit, wait for terminal state, and return the final job."""
        job = self.submit(**submit_kwargs)
        return self.wait(job["id"], timeout=timeout)

    # ------------------------------------------------------------------
    # fleet protocol (workers)
    # ------------------------------------------------------------------
    def fleet_register(
        self, name: str = "", pid: Optional[int] = None, host: str = ""
    ) -> Dict:
        return self._request(
            "POST",
            "/v1/fleet/register",
            {"name": name, "pid": pid, "host": host},
        )

    def fleet_lease(
        self, worker_id: str, max_cells: Optional[int] = None
    ) -> Dict:
        body: Dict = {"worker_id": worker_id}
        if max_cells is not None:
            body["max_cells"] = int(max_cells)
        return self._request("POST", "/v1/fleet/lease", body)

    def fleet_heartbeat(
        self, worker_id: str, lease_ids: Sequence[str]
    ) -> Dict:
        return self._request(
            "POST",
            "/v1/fleet/heartbeat",
            {"worker_id": worker_id, "leases": list(lease_ids)},
        )

    def fleet_complete(
        self,
        worker_id: str,
        lease_id: str,
        key: str,
        status: str,
        result: Optional[str] = None,
        error: str = "",
        timing: Optional[Dict[str, float]] = None,
    ) -> Dict:
        body: Dict = {
            "worker_id": worker_id,
            "lease_id": lease_id,
            "key": key,
            "status": status,
            "error": error,
        }
        if result is not None:
            body["result"] = result
        if timing is not None:
            body["timing"] = dict(timing)
        return self._request("POST", "/v1/fleet/complete", body)

    def fleet_deregister(self, worker_id: str) -> Dict:
        return self._request(
            "POST", "/v1/fleet/deregister", {"worker_id": worker_id}
        )

    def fetch_blob(self, digest: str, attempt: int = 1) -> bytes:
        """Raw stream-blob bytes by digest.

        Deliberately *not* auto-retried: the worker runs its own attempt
        loop so it can verify each transfer (decode + digest) before
        trusting it, and so chaos blob-truncation draws see true attempt
        numbers.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/v1/blobs/{digest}?attempt={int(attempt)}"
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(raw.decode("utf-8")).get("error", "")
                except Exception:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            return raw
        finally:
            connection.close()
