"""Blocking client SDK for the experiment service.

A thin, dependency-free wrapper over :mod:`http.client` (stdlib) that
speaks the ``/v1`` API: submit jobs, poll or stream their progress,
fetch results, cancel, and read server stats.  This is the library the
``repro submit`` / ``repro jobs`` CLI commands are built on, and the
one the golden bit-identity smoke test drives.

    client = ServiceClient("http://127.0.0.1:8035")
    job = client.submit(benchmarks=["mcf"], techniques=["sampler"], sweep=True)
    for event in client.stream_events(job["id"]):
        print(event["event"])
    result = client.result(job["id"])      # == export_json of the CLI sweep

Every HTTP error surfaces as :class:`ServiceError` carrying the status
code and the server's message; 429 backpressure additionally carries
``retry_after`` so callers can back off and resubmit.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """An HTTP-level failure from the service."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        self.status = status
        self.message = message
        self.retry_after = retry_after
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Blocking client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r} (http only)")
        netloc = parsed.netloc or parsed.path  # accept "host:port" without scheme
        host, _, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            data = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status,
                    data.get("error", raw.decode("utf-8", "replace")),
                    retry_after=float(retry_after) if retry_after else None,
                )
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        techniques: Optional[Sequence[str]] = None,
        benchmark: Optional[str] = None,
        technique: Optional[str] = None,
        sweep: bool = False,
        config: Optional[Dict] = None,
        client: str = "anonymous",
        priority: int = 0,
    ) -> Dict:
        """Submit one cell (``benchmark=.../technique=...``) or a sweep
        (``benchmarks=[...], techniques=[...], sweep=True``).  Returns
        the created job record (``state`` may already be ``done`` when
        every cell was a dedup hit)."""
        body: Dict = {"sweep": sweep, "client": client, "priority": priority}
        if benchmarks is not None:
            body["benchmarks"] = list(benchmarks)
        if techniques is not None:
            body["techniques"] = list(techniques)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if technique is not None:
            body["technique"] = technique
        if config is not None:
            body["config"] = dict(config)
        return self._request("POST", "/v1/jobs", body)

    def get(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self) -> List[Dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.1,
    ) -> Dict:
        """Block until the job reaches a terminal state; returns the
        final job record.  Raises TimeoutError after ``timeout``."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            job = self.get(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)

    def stream_events(self, job_id: str, follow: bool = True) -> Iterator[Dict]:
        """Yield the job's NDJSON progress events as dicts.

        With ``follow=True`` (default) the stream runs until the job
        reaches a terminal state; the final event is ``sweep_finished``.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            suffix = "" if follow else "?follow=0"
            connection.request("GET", f"/v1/jobs/{job_id}/events{suffix}")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode("utf-8")).get("error", "")
                except Exception:
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def submit_and_wait(
        self, timeout: Optional[float] = None, **submit_kwargs
    ) -> Dict:
        """Submit, wait for terminal state, and return the final job."""
        job = self.submit(**submit_kwargs)
        return self.wait(job["id"], timeout=timeout)
