"""Job model and persistent job store for the experiment service.

A *job* is one client submission: either a single (benchmark, technique)
cell or a whole sweep, expanded server-side into its cell grid (each
benchmark's LRU baseline cell included, exactly as
:func:`repro.harness.parallel.parallel_single_thread_comparison`
expands it).  Cells are content-addressed with the *same* key scheme as
:class:`repro.harness.checkpoint.CheckpointStore` --
``v1|scale=..|instructions=..|seed=..|cores=..|benchmark=..|technique=..``
-- which is what makes service-level dedup sound: a cell key names
everything that determines the cell's result, so any two submissions
with the same key may share one execution, and a cell computed by a
plain CLI sweep into the same checkpoint store satisfies a later job
without running anything.

State machine::

    queued -> running -> done
                      -> failed
    queued ----------> cancelled
    running ---------> cancelled   (cancel observed between cells)

Illegal transitions raise :class:`JobStateError`; terminal states never
transition again.  The :class:`JobStore` persists each job as one JSON
record written atomically (temp file + ``os.replace``), so a killed
server leaves either the old record or the new, never a torn one, and a
restarted server resumes from the store: ``queued`` jobs re-enqueue,
``running`` jobs fall back to ``queued`` (their already-completed cells
come out of the checkpoint store as instant dedup hits).

A record that does not parse -- torn by a crash mid-rename on an odd
filesystem, truncated by a full disk, or hand-edited into nonsense --
is *quarantined* on resume: moved aside into ``<jobs>/corrupt/`` with a
warning, so it can neither crash the server on every restart nor be
silently deleted before a human looks at it.  The quarantine count is
surfaced in ``/healthz``.
"""

from __future__ import annotations

import json
import os
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.checkpoint import CheckpointStore
from repro.harness.runner import ExperimentConfig

__all__ = [
    "Job",
    "JobStateError",
    "JobStore",
    "QueueFull",
    "STATES",
    "TERMINAL_STATES",
    "cell_key",
    "config_from_dict",
]

#: Every legal job state.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

_TRANSITIONS = {
    "queued": {"running", "cancelled", "done", "failed"},
    "running": {"done", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}
# queued -> done/failed directly covers fully-deduplicated jobs: every
# cell was already in the checkpoint store, so the job never runs.


class JobStateError(Exception):
    """An illegal job state transition was attempted."""


class QueueFull(Exception):
    """The scheduler's bounded queue is at capacity (HTTP 429)."""


def config_from_dict(raw: Optional[Dict]) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from a request's ``config``
    object (missing fields take the dataclass defaults).

    Raises ValueError on unknown fields or non-positive values, so a
    typo'd submission fails loudly at the API boundary instead of
    silently running the default configuration.
    """
    raw = dict(raw or {})
    known = {"scale", "instructions", "seed", "cores"}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(
            f"unknown config field(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(known))})"
        )
    defaults = ExperimentConfig()
    values = {
        "scale": raw.get("scale", defaults.scale),
        "instructions": raw.get("instructions", defaults.instructions),
        "seed": raw.get("seed", defaults.seed),
        "num_cores": raw.get("cores", defaults.num_cores),
    }
    for name, value in values.items():
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ValueError(f"config.{name} must be a positive integer, got {value!r}")
    return ExperimentConfig(**values)


def config_to_dict(config: ExperimentConfig) -> Dict[str, int]:
    """The wire form of a config (the ``cores`` spelling, as submitted)."""
    return {
        "scale": config.scale,
        "instructions": config.instructions,
        "seed": config.seed,
        "cores": config.num_cores,
    }


def cell_key(
    config: ExperimentConfig, benchmark: str, technique_key: Optional[str]
) -> str:
    """The content address of one cell -- delegated to the checkpoint
    store's key scheme so service dedup and checkpoint resume agree on
    what "the same cell" means."""
    return CheckpointStore.cell_key(config, benchmark, technique_key)


#: A cell identity as carried by a job: (benchmark, technique key or None).
Cell = Tuple[str, Optional[str]]


@dataclass
class Job:
    """One client submission and its lifecycle.

    ``cells`` is the expanded work list; ``kind`` records whether the
    submission was a single cell or a sweep (which changes the shape of
    ``/result``: a cell job returns one run's stats, a sweep job returns
    the full :func:`repro.harness.export.to_dict` comparison).
    """

    id: str
    kind: str  # "cell" | "sweep"
    client: str
    priority: int
    config: ExperimentConfig
    benchmarks: Tuple[str, ...]
    techniques: Tuple[str, ...]
    cells: Tuple[Cell, ...]
    state: str = "queued"
    error: str = ""
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    seq: int = 0  # submission order, tie-breaker in the queue
    dedup_cells: int = 0  # cells satisfied without a new execution

    @classmethod
    def new(
        cls,
        kind: str,
        client: str,
        priority: int,
        config: ExperimentConfig,
        benchmarks: Sequence[str],
        techniques: Sequence[str],
        cells: Sequence[Cell],
        seq: int = 0,
    ) -> "Job":
        return cls(
            id=f"job-{uuid.uuid4().hex[:12]}",
            kind=kind,
            client=client,
            priority=priority,
            config=config,
            benchmarks=tuple(benchmarks),
            techniques=tuple(techniques),
            cells=tuple((b, t) for b, t in cells),
            seq=seq,
        )

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, enforcing the machine; stamps the
        started/finished timestamps as states are entered."""
        if new_state not in STATES:
            raise JobStateError(f"unknown job state {new_state!r}")
        if new_state == self.state:
            return
        if new_state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.id}: illegal transition {self.state!r} -> {new_state!r}"
            )
        self.state = new_state
        now = time.time()
        if new_state == "running" and self.started_at is None:
            self.started_at = now
        if new_state in TERMINAL_STATES:
            self.finished_at = now

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self, progress: Optional[Dict[str, int]] = None) -> Dict:
        """JSON-ready record (also the ``GET /v1/jobs/{id}`` body)."""
        record = {
            "id": self.id,
            "kind": self.kind,
            "client": self.client,
            "priority": self.priority,
            "config": config_to_dict(self.config),
            "benchmarks": list(self.benchmarks),
            "techniques": list(self.techniques),
            "cells": [[b, t] for b, t in self.cells],
            "state": self.state,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "seq": self.seq,
            "dedup_cells": self.dedup_cells,
        }
        if progress is not None:
            record["progress"] = dict(progress)
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "Job":
        job = cls(
            id=record["id"],
            kind=record["kind"],
            client=record.get("client", ""),
            priority=int(record.get("priority", 0)),
            config=config_from_dict(record.get("config")),
            benchmarks=tuple(record.get("benchmarks", ())),
            techniques=tuple(record.get("techniques", ())),
            cells=tuple((b, t) for b, t in record.get("cells", ())),
            state=record.get("state", "queued"),
            error=record.get("error", ""),
            created_at=record.get("created_at", 0.0),
            started_at=record.get("started_at"),
            finished_at=record.get("finished_at"),
            seq=int(record.get("seq", 0)),
            dedup_cells=int(record.get("dedup_cells", 0)),
        )
        if job.state not in STATES:
            raise ValueError(f"job {job.id}: unknown state {job.state!r}")
        return job


class JobStore:
    """Atomic one-file-per-job JSON persistence under ``<root>/jobs/``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._jobs = self.root / "jobs"
        self._jobs.mkdir(parents=True, exist_ok=True)

    def path(self, job_id: str) -> Path:
        return self._jobs / f"{job_id}.json"

    @property
    def corrupt_dir(self) -> Path:
        """Where unparseable job records are moved (may not exist yet)."""
        return self._jobs / "corrupt"

    @property
    def quarantined_count(self) -> int:
        """How many corrupt records have been quarantined (``/healthz``)."""
        try:
            return sum(1 for _ in self.corrupt_dir.glob("job-*.json"))
        except OSError:
            return 0

    def quarantine(self, path: Path) -> None:
        """Move one unreadable record into ``corrupt/``, loudly."""
        self.corrupt_dir.mkdir(parents=True, exist_ok=True)
        target = self.corrupt_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            return  # racing writer revived or removed it; leave it be
        print(
            f"[jobs] warning: quarantined unreadable job record "
            f"{path.name} -> {target} (torn write or corruption; "
            "inspect or delete manually)",
            file=sys.stderr,
            flush=True,
        )

    def save(self, job: Job, progress: Optional[Dict[str, int]] = None) -> Path:
        """Persist one job atomically (old record or new, never torn)."""
        path = self.path(job.id)
        payload = json.dumps(job.to_dict(progress), sort_keys=True, indent=1)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return path

    def load(self, job_id: str) -> Optional[Job]:
        """One job by id; missing, torn, or malformed records read as None."""
        try:
            record = json.loads(self.path(job_id).read_text(encoding="utf-8"))
            return Job.from_dict(record)
        except FileNotFoundError:
            return None
        except Exception:
            return None  # torn or corrupt record: absent, never wrong

    def load_all(self, quarantine: bool = False) -> List[Job]:
        """Every readable job record, in submission (seq) order.

        With ``quarantine=True``, records that exist but do not parse
        are moved into ``corrupt/`` (see :meth:`quarantine`) instead of
        being skipped silently.
        """
        jobs = []
        for path in sorted(self._jobs.glob("job-*.json")):
            job = self.load(path.stem)
            if job is not None:
                jobs.append(job)
            elif quarantine and path.exists():
                self.quarantine(path)
        jobs.sort(key=lambda job: (job.seq, job.created_at, job.id))
        return jobs

    def resume(self) -> List[Job]:
        """Jobs for a restarting server: non-terminal jobs come back as
        ``queued`` (a job caught ``running`` by a crash re-enqueues; its
        finished cells are checkpoint-store dedup hits) and are
        re-persisted in that state.  Unparseable records are quarantined
        rather than re-tripped-over on every restart."""
        jobs = self.load_all(quarantine=True)
        for job in jobs:
            if not job.is_terminal and job.state != "queued":
                job.state = "queued"
                job.started_at = None
                self.save(job)
        return jobs

    def __len__(self) -> int:
        return sum(1 for _ in self._jobs.glob("job-*.json"))

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r}, {len(self)} jobs)"
