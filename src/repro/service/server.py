"""Stdlib-only HTTP/1.1 front end for the experiment scheduler.

Built directly on ``asyncio.start_server`` -- no ``http.server``, no
third-party framework.  Each connection carries one request (responses
always send ``Connection: close``), which keeps the protocol machine
tiny and the drain story exact.

API (all request/response bodies are JSON unless noted)::

    POST   /v1/jobs              submit a cell or sweep        201 / 400 / 429 / 503
    GET    /v1/jobs              list jobs                     200
    GET    /v1/jobs/{id}         job state + progress          200 / 404
    GET    /v1/jobs/{id}/events  NDJSON progress stream        200 / 404
    GET    /v1/jobs/{id}/result  result (cell stats or the
                                 full export_json comparison)  200 / 404 / 409
    DELETE /v1/jobs/{id}         cancel                        200 / 404
    GET    /v1/healthz           liveness                      200
    GET    /v1/stats             queue/dedup/worker/store      200

Fleet-mode servers (``--fleet``) additionally speak the worker
protocol (404 on every route below when fleet mode is off)::

    POST   /v1/fleet/register    join the fleet                200
    POST   /v1/fleet/lease       pull a leased cell batch      200 / 404
    POST   /v1/fleet/heartbeat   renew leases                  200 / 404
    POST   /v1/fleet/complete    report one cell result        200 / 400 / 404
    POST   /v1/fleet/deregister  graceful leave (requeues)     200 / 404
    GET    /v1/blobs/{digest}    raw compiled-workload blob    200 / 404
                                 (octet-stream; ``?attempt=N``
                                 feeds chaos truncation draws)

A 404 on lease/heartbeat means the server does not know the worker
(typically a server restart): the worker re-registers and carries on.

Submission body::

    {"benchmark": "mcf", "technique": "sampler",          # one cell, or
     "benchmarks": [...], "techniques": [...], "sweep": true,
     "config": {"scale": 8, "instructions": 400000, "seed": 1, "cores": 4},
     "client": "alice", "priority": 0}

``/events`` re-uses the PR 3 sweep event schema (one JSON object per
line: ``sweep_started``, ``cell_resumed`` for dedup hits,
``cell_finished``, ``cell_retried``, ``cell_timed_out``,
``sweep_finished``).  By default the stream follows the job until it
reaches a terminal state; ``?follow=0`` dumps the events so far and
closes.

Backpressure: a submission that would overflow the scheduler's bounded
queue gets ``429`` with a ``Retry-After`` header; a draining server
answers ``503`` for new submissions while read-only endpoints keep
working until the listener closes.

Graceful drain: :func:`serve` installs SIGTERM/SIGINT handlers that
stop accepting connections, drain the scheduler (running cells finish
and checkpoint; queued jobs persist), and exit.  A server restarted on
the same ``--job-store`` resumes the queued jobs.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.harness.faults import ChaosSpec
from repro.service.jobs import QueueFull, config_from_dict
from repro.service.scheduler import ExperimentScheduler

__all__ = ["ExperimentServer", "serve"]

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024
_EVENT_POLL_SECONDS = 0.05


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[Dict] = None):
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ExperimentServer:
    """One listening socket in front of an :class:`ExperimentScheduler`."""

    def __init__(
        self,
        scheduler: ExperimentScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port  # 0 = ephemeral; the bound port lands here
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: Optional[float] = 60.0) -> None:
        """Stop accepting, drain the scheduler, close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.scheduler.close(timeout=drain_timeout)
        )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _HttpError as error:
                await self._respond_json(
                    writer, error.status, {"error": error.message}, error.headers
                )
                return
            try:
                await self._route(method, path, query, body, writer)
            except _HttpError as error:
                await self._respond_json(
                    writer, error.status, {"error": error.message}, error.headers
                )
            except Exception as exc:  # defensive: one request, one 500
                await self._respond_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], Optional[Dict]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        path, _, raw_query = target.partition("?")
        query = {}
        for pair in raw_query.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                query[name] = value
        body = None
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if length > _MAX_BODY_BYTES:
                raise _HttpError(413, "request body too large")
            raw = await reader.readexactly(length)
            if raw:
                try:
                    body = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    raise _HttpError(400, "request body is not valid JSON") from None
        return method, path, query, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers: Optional[Dict] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(payload)),
            "Connection": "close",
            "Server": f"repro-service/{__version__}",
        }
        headers.update(extra_headers or {})
        head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        ) + "\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict,
        extra_headers: Optional[Dict] = None,
    ) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        await self._respond(
            writer, status, payload, "application/json", extra_headers
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[Dict],
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/v1/healthz" and method == "GET":
            loop = asyncio.get_running_loop()
            quarantined = await loop.run_in_executor(
                None, lambda: self.scheduler.job_store.quarantined_count
            )
            health = {
                "status": "ok",
                "version": __version__,
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "quarantined_jobs": quarantined,
            }
            if self.scheduler.fleet is not None:
                health["fleet_workers_alive"] = (
                    self.scheduler.fleet.alive_workers()
                )
            await self._respond_json(writer, 200, health)
            return
        if path == "/v1/stats" and method == "GET":
            await self._respond_json(writer, 200, self.scheduler.stats())
            return
        if path == "/v1/jobs" and method == "POST":
            await self._submit(body, writer)
            return
        if path == "/v1/jobs" and method == "GET":
            jobs = [
                self.scheduler.job_dict(job)
                for job in self.scheduler.list_jobs()
            ]
            await self._respond_json(writer, 200, {"jobs": jobs})
            return
        if path.startswith("/v1/fleet/") and method == "POST":
            await self._fleet_route(path[len("/v1/fleet/"):], body, writer)
            return
        if path.startswith("/v1/blobs/") and method == "GET":
            await self._serve_blob(path[len("/v1/blobs/"):], query, writer)
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, action = rest.partition("/")
            if not job_id:
                raise _HttpError(404, "missing job id")
            if not action and method == "GET":
                await self._get_job(job_id, writer)
                return
            if not action and method == "DELETE":
                await self._cancel(job_id, writer)
                return
            if action == "events" and method == "GET":
                await self._stream_events(job_id, query, writer)
                return
            if action == "result" and method == "GET":
                await self._result(job_id, writer)
                return
        raise _HttpError(404 if method in ("GET", "POST", "DELETE") else 405,
                         f"no route for {method} {path}")

    async def _submit(
        self, body: Optional[Dict], writer: asyncio.StreamWriter
    ) -> None:
        if not isinstance(body, dict):
            raise _HttpError(400, "submission body must be a JSON object")
        try:
            config = config_from_dict(body.get("config"))
            benchmarks = body.get("benchmarks")
            if benchmarks is None:
                benchmark = body.get("benchmark")
                benchmarks = [benchmark] if benchmark else []
            techniques = body.get("techniques")
            if techniques is None:
                technique = body.get("technique")
                techniques = [technique] if technique else []
            sweep = bool(body.get("sweep", False))
            client = str(body.get("client", "anonymous"))
            priority = int(body.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc)) from None
        loop = asyncio.get_running_loop()
        try:
            # submit() touches the checkpoint store (dedup probes), so
            # keep it off the event loop thread.
            job = await loop.run_in_executor(
                None,
                lambda: self.scheduler.submit(
                    config, benchmarks, techniques,
                    sweep=sweep, client=client, priority=priority,
                ),
            )
        except QueueFull as exc:
            raise _HttpError(429, str(exc), headers={"Retry-After": "1"}) from None
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        except RuntimeError as exc:
            raise _HttpError(503, str(exc)) from None
        await self._respond_json(writer, 201, self.scheduler.job_dict(job))

    async def _get_job(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        job = self.scheduler.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        await self._respond_json(writer, 200, self.scheduler.job_dict(job))

    async def _cancel(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        try:
            job = self.scheduler.cancel(job_id)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}") from None
        await self._respond_json(writer, 200, self.scheduler.job_dict(job))

    async def _result(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        job = self.scheduler.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if job.state != "done":
            raise _HttpError(
                409,
                f"job {job_id} is {job.state}; result available once done",
            )
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None, lambda: self.scheduler.result(job_id)
        )
        await self._respond_json(writer, 200, result)

    async def _stream_events(
        self, job_id: str, query: Dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        follow = query.get("follow", "1") not in ("0", "false", "no")
        try:
            events, done = self.scheduler.events_since(job_id, 0)
        except KeyError:
            raise _HttpError(404, f"unknown job {job_id!r}") from None
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            f"Server: repro-service/{__version__}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        sent = 0
        while True:
            for event in events:
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
            sent += len(events)
            await writer.drain()
            if done or not follow:
                return
            await asyncio.sleep(_EVENT_POLL_SECONDS)
            events, done = self.scheduler.events_since(job_id, sent)

    # ------------------------------------------------------------------
    # fleet protocol
    # ------------------------------------------------------------------
    def _fleet_coordinator(self):
        coordinator = self.scheduler.fleet
        if coordinator is None:
            raise _HttpError(
                404, "fleet mode disabled (start the server with --fleet)"
            )
        return coordinator

    async def _fleet_route(
        self, action: str, body: Optional[Dict], writer: asyncio.StreamWriter
    ) -> None:
        coordinator = self._fleet_coordinator()
        if body is None:
            body = {}
        if not isinstance(body, dict):
            raise _HttpError(400, "fleet request body must be a JSON object")

        def call() -> Dict:
            if action == "register":
                return coordinator.register(
                    name=str(body.get("name", "")),
                    pid=body.get("pid"),
                    host=str(body.get("host", "")),
                )
            worker_id = str(body.get("worker_id", ""))
            if action == "lease":
                return coordinator.lease(
                    worker_id, max_cells=body.get("max_cells")
                )
            if action == "heartbeat":
                leases = body.get("leases") or []
                if not isinstance(leases, list):
                    raise ValueError("'leases' must be a list of lease ids")
                return coordinator.heartbeat(
                    worker_id, [str(lease) for lease in leases]
                )
            if action == "complete":
                return coordinator.complete(
                    worker_id,
                    str(body.get("lease_id", "")),
                    str(body.get("key", "")),
                    str(body.get("status", "")),
                    result_b64=body.get("result"),
                    error=str(body.get("error", "")),
                    timing=body.get("timing"),
                )
            if action == "deregister":
                return coordinator.deregister(worker_id)
            raise _HttpError(404, f"no fleet action {action!r}")

        loop = asyncio.get_running_loop()
        try:
            # Coordinator calls take the scheduler lock and may touch
            # the checkpoint store; keep them off the event loop thread.
            response = await loop.run_in_executor(None, call)
        except KeyError as exc:
            # Unknown/forgotten worker: the worker re-registers on 404.
            raise _HttpError(404, str(exc.args[0] if exc.args else exc)) from None
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc)) from None
        await self._respond_json(writer, 200, response)

    async def _serve_blob(
        self, digest: str, query: Dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        coordinator = self._fleet_coordinator()
        store = self.scheduler.stream_store
        if store is None:
            raise _HttpError(
                404, "no stream store attached; workers compile locally"
            )
        try:
            attempt = int(query.get("attempt", "1") or 1)
        except ValueError:
            raise _HttpError(400, "attempt must be an integer") from None
        loop = asyncio.get_running_loop()
        data = await loop.run_in_executor(None, lambda: store.load_raw(digest))
        if data is None:
            raise _HttpError(404, f"no blob with digest {digest!r}")
        truncated = ChaosSpec.from_env().fires("blob", digest, attempt)
        if truncated:
            # Chaos: a torn transfer.  The worker's decode+digest check
            # must catch this and retry (next attempt draws fresh).
            data = data[: max(1, len(data) // 3)]
        coordinator.record_blob_served(len(data), truncated=truncated)
        await self._respond(writer, 200, data, "application/octet-stream")

    # ------------------------------------------------------------------
    # embedding (tests, `make serve-smoke`)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> "_ThreadedServer":
        """Run this server on its own event loop in a daemon thread.

        Returns a handle with the bound ``port`` and a blocking
        ``stop()``; used by the test suite and the smoke gate to embed
        a real server without owning the process.
        """
        return _ThreadedServer(self)


class _ThreadedServer:
    def __init__(self, server: ExperimentServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start in 30s")

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def scheduler(self) -> ExperimentScheduler:
        return self.server.scheduler

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        self._loop.run_forever()
        # run_forever returned: stop() asked us to shut down.
        self._loop.run_until_complete(self.server.stop())
        self._loop.close()

    def stop(self) -> None:
        """Drain and stop the embedded server (blocking, idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=120.0)


async def _serve_until_signalled(server: ExperimentServer) -> None:
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without loop signal handlers
    await server.start()
    print(
        f"repro service listening on http://{server.host}:{server.port} "
        f"(workers={server.scheduler.worker_count}, "
        f"queue depth {server.scheduler.queue_depth}); "
        "SIGTERM drains gracefully",
        flush=True,
    )
    await stop_event.wait()
    print("repro service draining: running cells will finish and "
          "checkpoint; queued jobs persist for resume", flush=True)
    await server.stop()
    print("repro service stopped", flush=True)


def serve(
    host: str = "127.0.0.1",
    port: int = 8035,
    **scheduler_kwargs,
) -> int:
    """Blocking entry point behind ``repro serve``: build the scheduler,
    listen, and run until SIGTERM/SIGINT, then drain gracefully."""
    scheduler = ExperimentScheduler(**scheduler_kwargs)
    server = ExperimentServer(scheduler, host=host, port=port)
    asyncio.run(_serve_until_signalled(server))
    return 0
