"""End-to-end smoke gate for the experiment service (``make serve-smoke``).

Boots a real server on an ephemeral port (own event loop, daemon
thread), submits a tiny sweep through the client SDK with parallel
workers and shared-memory stream fan-out, and asserts the result is
**bit-identical** to the same sweep run serially through the existing
harness path -- the service's core correctness promise.  Then
re-submits the identical sweep and requires it to complete instantly
via dedup (one execution, two completed jobs, hits visible in
``/v1/stats``), and finally drains the server cleanly.

The whole run sits under a hard ``SIGALRM`` deadline so a wedged server
fails the gate loudly instead of hanging ``make check``.

Exit status: 0 on success, 1 on any mismatch or failure.
"""

from __future__ import annotations

import json
import signal
import sys
import tempfile
from pathlib import Path

from repro.harness.export import to_dict
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.service.client import ServiceClient
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer

HARD_DEADLINE_SECONDS = 300.0
BENCHMARKS = ("perlbench",)
TECHNIQUES = ("sampler", "rrip")
CONFIG = ExperimentConfig(scale=16, instructions=30_000, seed=1)


def _fail(message: str) -> int:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    if hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"serve-smoke exceeded its {HARD_DEADLINE_SECONDS}s deadline"
            )

        signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, HARD_DEADLINE_SECONDS)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        root = Path(tmp)

        # Reference: the sweep exactly as `repro run` executes it, serially.
        serial = parallel_single_thread_comparison(
            WorkloadCache(CONFIG), list(TECHNIQUES), BENCHMARKS, jobs=1
        )
        expected = to_dict(serial)

        scheduler = ExperimentScheduler(
            job_store=root / "service",
            stream_cache=root / "streams",
            shared_memory=True,
            jobs=2,
        )
        handle = ExperimentServer(scheduler, port=0).start_in_thread()
        try:
            client = ServiceClient(f"http://127.0.0.1:{handle.port}")
            health = client.healthz()
            if health.get("status") != "ok":
                return _fail(f"healthz: {health}")

            spec = dict(
                benchmarks=list(BENCHMARKS), techniques=list(TECHNIQUES),
                sweep=True,
                config={
                    "scale": CONFIG.scale,
                    "instructions": CONFIG.instructions,
                    "seed": CONFIG.seed,
                    "cores": CONFIG.num_cores,
                },
            )
            job = client.submit(client="smoke", **spec)
            final = client.wait(job["id"], timeout=HARD_DEADLINE_SECONDS)
            if final["state"] != "done":
                return _fail(
                    f"job finished {final['state']}: {final.get('error', '')}"
                )
            got = client.result(job["id"])
            if got != expected:
                return _fail(
                    "service sweep is not bit-identical to the serial sweep:\n"
                    f"service: {json.dumps(got, sort_keys=True)[:2000]}\n"
                    f"serial : {json.dumps(expected, sort_keys=True)[:2000]}"
                )

            # Dedup: the identical sweep must complete without executing
            # anything, and the hits must show up in /v1/stats.
            repeat = client.submit(client="smoke-again", **spec)
            if repeat["state"] != "done":
                repeat = client.wait(repeat["id"], timeout=10.0)
            if repeat["state"] != "done":
                return _fail(f"dedup resubmission finished {repeat['state']}")
            if repeat["dedup_cells"] != len(repeat["cells"]):
                return _fail(
                    f"dedup resubmission executed cells: "
                    f"{repeat['dedup_cells']}/{len(repeat['cells'])} deduped"
                )
            if client.result(repeat["id"]) != expected:
                return _fail("dedup result differs from the original")
            stats = client.stats()
            hits = stats["dedup"]["checkpoint_hits"] + stats["dedup"]["inflight_hits"]
            if hits < len(repeat["cells"]):
                return _fail(f"stats do not show the dedup hits: {stats['dedup']}")
            events = list(client.stream_events(job["id"]))
            kinds = [event.get("event") for event in events]
            if kinds[:1] != ["sweep_started"] or kinds[-1:] != ["sweep_finished"]:
                return _fail(f"unexpected event stream: {kinds}")
        finally:
            handle.stop()

        print(
            "serve-smoke: OK -- service sweep bit-identical to serial, "
            f"dedup hits visible ({stats['dedup']}), drained cleanly"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
