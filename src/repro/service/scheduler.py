"""Deduplicating scheduler: the dispatcher between jobs and the harness.

The scheduler owns three things:

* the **bounded priority queue** of cells awaiting execution.  Depth is
  counted in cells; an admission that would overflow it raises
  :class:`~repro.service.jobs.QueueFull`, which the HTTP layer turns
  into ``429`` backpressure.  Queued cells are ordered by ``(priority,
  fair-share, submission seq)`` where fair-share is a per-client
  served-cell counter -- a client that has had many cells dispatched
  yields to one that has had few, so a bulk submitter cannot starve
  small interactive jobs of equal priority.
* the **dedup registry**.  Every cell is content-addressed (the
  checkpoint key scheme); before enqueueing, a submission is checked
  against (1) the checkpoint store -- the cell may already be computed,
  by anyone, ever -- and (2) the in-flight registry -- the cell may
  already be queued or running for another job, in which case the new
  job simply attaches to it.  Either way the cell costs nothing extra;
  both kinds of hit are counted and surfaced in ``GET /v1/stats``.
* the **dispatcher**: a daemon thread that drains the queue in batches
  (all queued cells sharing one :class:`ExperimentConfig`) into the
  supervised machinery of :mod:`repro.harness.faults` -- the same
  ``spawn`` pools, per-cell deadlines, retries, watchdog, and graceful
  serial degradation a CLI sweep gets, via the shared
  :func:`repro.harness.parallel.make_cell_pool_factory`.  With a
  compiled workload store / ``shared_memory=True`` the batch pre-compiles
  each workload once and fans it out to workers exactly as PR 4's sweep
  path does, so concurrent jobs over one benchmark never recompile.

Because cells execute through the identical code path as
``make``-driven sweeps and results are persisted in the identical
checkpoint store, a sweep served through the service is bit-identical
to the CLI one -- pinned by ``tests/test_service_http.py`` and ``make
serve-smoke``.

Graceful drain: :meth:`ExperimentScheduler.drain` stops the dispatcher
from starting new batches, waits for the running batch (every completed
cell of which is already checkpointed), and persists job states.  A
scheduler constructed over the same job store resumes: terminal jobs
are served read-only, non-terminal jobs re-admit -- their finished
cells come back as checkpoint dedup hits, so no work repeats.

Fleet mode (``fleet=True``) replaces the local dispatcher with the
lease-based worker-fleet protocol of :mod:`repro.service.fleet`:
queued cells are checked out to registered ``repro worker`` processes
under time-bounded leases, expired leases re-dispatch, and duplicate
completions are dropped idempotently (see docs/service.md).  The
queue, dedup registry, fair-share ordering, and job settlement are
shared between the two modes -- `fleet_checkout` / `fleet_complete` /
`fleet_fail` / `fleet_requeue` below are the fleet's entry points into
the same state machine `_dispatch_loop` drives locally.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.harness.checkpoint import CheckpointStore
from repro.harness.experiments import SingleThreadComparison
from repro.harness.export import to_dict
from repro.harness.faults import (
    FaultPolicy,
    cell_label,
    run_cells_supervised,
)
from repro.harness.parallel import (
    _run_cell_on,
    _run_cell_supervised,
    make_cell_pool_factory,
    resolve_jobs,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.harness.techniques import validate_techniques
from repro.sim.streamstore import SharedStreamExport, StreamStore
from repro.sim.system import RunResult
from repro.telemetry.events import SweepTelemetry
from repro.service.jobs import (
    Cell,
    Job,
    JobStore,
    QueueFull,
    cell_key,
)
from repro.workloads import SINGLE_THREAD_SUBSET, validate_workloads

__all__ = ["ExperimentScheduler"]


class _EventBuffer:
    """Per-job event sink: a `SweepTelemetry` sink appending to a list.

    Mutation always happens under the scheduler lock (RLock, so emits
    from paths already holding it are fine); readers copy slices out
    under the same lock.
    """

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.events: List[Dict] = []

    def emit(self, event: Dict) -> None:
        with self._lock:
            self.events.append(dict(event))


class _CellEntry:
    """One in-flight content-addressed cell and the jobs attached to it."""

    __slots__ = (
        "key", "config", "benchmark", "technique", "state",
        "jobs", "priority", "client", "seq", "detail", "timing",
        "dispatches",
    )

    def __init__(
        self,
        key: str,
        config: ExperimentConfig,
        benchmark: str,
        technique: Optional[str],
        priority: int,
        client: str,
        seq: int,
    ) -> None:
        self.key = key
        self.config = config
        self.benchmark = benchmark
        self.technique = technique
        self.state = "queued"  # queued | running | done | failed
        self.jobs: Set[str] = set()
        self.priority = priority
        self.client = client
        self.seq = seq
        self.detail = ""
        self.timing: Optional[Dict[str, float]] = None
        self.dispatches = 0  # executions started (fleet: lease grants)

    @property
    def cell(self) -> Cell:
        return (self.benchmark, self.technique)

    @property
    def label(self) -> str:
        return cell_label(self.cell)


class ExperimentScheduler:
    """Bounded, fair-share, deduplicating dispatcher over the harness.

    Args:
        job_store: a :class:`~repro.service.jobs.JobStore` or a root
            directory for one.  Results always live in a
            :class:`~repro.harness.checkpoint.CheckpointStore`; by
            default it is rooted at ``<job_store>/checkpoints`` so the
            service's dedup and a CLI sweep pointed at the same
            directory see each other's results.
        checkpoint: override the checkpoint store (store instance or
            path).
        stream_cache: compiled workload store (instance, path, or None
            to defer to ``REPRO_STREAM_CACHE``).
        shared_memory: fan compiled workloads to workers via shared
            memory (None defers to ``REPRO_SHM``).
        jobs: worker processes per batch (None defers to
            ``REPRO_JOBS``).
        queue_depth: maximum queued cells before submissions bounce
            with :class:`~repro.service.jobs.QueueFull`.
        fault_policy: supervision knobs (None defers to the
            ``REPRO_CELL_*`` environment).  ``allow_partial`` is forced
            on -- a failed cell fails its jobs, never the whole server.
        start: start the dispatcher thread immediately (tests that only
            exercise admission pass False).
    """

    def __init__(
        self,
        job_store: Union[JobStore, str, os.PathLike],
        checkpoint: Union[CheckpointStore, str, os.PathLike, None] = None,
        stream_cache: Union[StreamStore, str, os.PathLike, None] = None,
        shared_memory: Optional[bool] = None,
        jobs: Optional[int] = None,
        queue_depth: int = 256,
        fault_policy: Optional[FaultPolicy] = None,
        start: bool = True,
        fleet: bool = False,
        lease_ttl: Optional[float] = None,
        heartbeat_seconds: Optional[float] = None,
        lease_cells: Optional[int] = None,
    ) -> None:
        self.job_store = (
            job_store if isinstance(job_store, JobStore) else JobStore(job_store)
        )
        if isinstance(checkpoint, CheckpointStore):
            self.checkpoint = checkpoint
        elif checkpoint is not None:
            self.checkpoint = CheckpointStore(checkpoint)
        else:
            self.checkpoint = CheckpointStore(self.job_store.root / "checkpoints")
        if isinstance(stream_cache, StreamStore):
            self.stream_store: Optional[StreamStore] = stream_cache
        else:
            self.stream_store = StreamStore.from_env(stream_cache)
        self.shared_memory = bool(shared_memory) if shared_memory is not None else (
            os.environ.get("REPRO_SHM", "").strip().lower()
            in ("1", "true", "yes", "on")
        )
        self.worker_count = resolve_jobs(jobs)
        self.queue_depth = int(queue_depth)
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        base_policy = fault_policy if fault_policy is not None else FaultPolicy.from_env()
        self.fault_policy = replace(base_policy, allow_partial=True)

        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._cells: Dict[str, _CellEntry] = {}  # key -> entry (queued/running)
        self._queue: List[str] = []  # queued cell keys (unordered; picked by sort)
        self._job_pending: Dict[str, Set[str]] = {}
        self._job_failed: Dict[str, Dict[str, str]] = {}
        self._events: Dict[str, _EventBuffer] = {}
        self._telemetry: Dict[str, SweepTelemetry] = {}
        self._served: Dict[str, int] = {}  # client -> cells dispatched (fair share)
        self._seq = 0
        self._running_batch = 0  # cells in the batch being executed
        self._draining = False
        self._closed = False
        self._started_at = time.time()
        self.counters = {
            "submitted_jobs": 0,
            "submitted_cells": 0,
            "executed_cells": 0,
            "failed_cells": 0,
            "dedup_checkpoint_hits": 0,
            "dedup_inflight_hits": 0,
            "stream_hits": 0,
            "stream_misses": 0,
            "kernel_array_cells": 0,
            "kernel_object_cells": 0,
        }
        #: Per-reason tally of array-kernel fallbacks across all cells.
        self.kernel_fallbacks: Dict[str, int] = {}

        self._resume_from_store()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        #: The fleet coordinator in fleet mode, else None.  In fleet
        #: mode cells execute on remote `repro worker` processes under
        #: time-bounded leases, so the local dispatcher thread never
        #: starts -- the coordinator's monitor thread replaces it.
        self.fleet = None
        if fleet:
            from repro.service.fleet import FleetCoordinator

            self.fleet = FleetCoordinator(
                self,
                lease_ttl=lease_ttl,
                heartbeat_seconds=heartbeat_seconds,
                lease_cells=lease_cells,
                start=start,
            )
        elif start:
            self._dispatcher.start()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self,
        config: ExperimentConfig,
        benchmarks: Sequence[str],
        techniques: Sequence[str],
        sweep: bool = False,
        client: str = "anonymous",
        priority: int = 0,
    ) -> Job:
        """Admit one submission; returns the (persisted) job.

        A *sweep* expands server-side into the full cell grid -- every
        benchmark's LRU baseline plus one cell per (benchmark,
        technique) -- the exact grid a CLI sweep runs.  A non-sweep
        submission must name exactly one benchmark and one technique
        and runs that single cell (techniques may name ``"lru"``'s
        baseline via an empty technique list).

        Raises:
            ValueError: unknown benchmark/technique, or bad shapes.
            QueueFull: admitting would overflow the bounded queue.
            RuntimeError: the scheduler is draining or closed.
        """
        benchmarks = list(benchmarks)
        techniques = list(techniques)
        # Spec-aware validation: suite names, pattern specs ("zipf(a=1.2)"),
        # and trace replays all resolve here; anything else 400s with a
        # closest-match suggestion (the server maps ValueError -> 400).
        bad = validate_workloads(benchmarks)
        if bad:
            raise ValueError("; ".join(bad))
        bad = validate_techniques(techniques)
        if bad:
            raise ValueError("; ".join(bad))
        if sweep:
            if not benchmarks:
                benchmarks = list(SINGLE_THREAD_SUBSET)
            cells: List[Cell] = []
            for benchmark in benchmarks:
                cells.append((benchmark, None))
                cells.extend((benchmark, t) for t in techniques)
            kind = "sweep"
        else:
            if len(benchmarks) != 1 or len(techniques) > 1:
                raise ValueError(
                    "a cell submission names exactly one benchmark and at "
                    "most one technique; set sweep=true for grids"
                )
            technique = techniques[0] if techniques else None
            cells = [(benchmarks[0], technique)]
            techniques = [technique] if technique is not None else []
            kind = "cell"

        with self._lock:
            if self._draining or self._closed:
                raise RuntimeError("scheduler is draining; not accepting jobs")
            self._seq += 1
            job = Job.new(
                kind=kind, client=client, priority=int(priority), config=config,
                benchmarks=benchmarks, techniques=techniques, cells=cells,
                seq=self._seq,
            )
            # Backpressure check before any state changes: count the
            # cells this job would newly enqueue.
            new_cells = 0
            for cell in cells:
                key = cell_key(config, *cell)
                entry = self._cells.get(key)
                if entry is not None and entry.state in ("queued", "running"):
                    continue
                if self.checkpoint.load(config, *cell) is not None:
                    continue
                new_cells += 1
            if len(self._queue) + new_cells > self.queue_depth:
                raise QueueFull(
                    f"queue at capacity ({len(self._queue)}/{self.queue_depth} "
                    f"cells queued, submission needs {new_cells} more)"
                )
            self.counters["submitted_jobs"] += 1
            self.counters["submitted_cells"] += len(cells)
            self._admit(job)
            self._wakeup.notify_all()
        return job

    def _admit(self, job: Job) -> None:
        """Attach a job's cells to the registry (lock held).

        Shared by :meth:`submit` and restart resume.  Dedup layers, in
        order: in-flight registry (queued/running/done-this-life), then
        the checkpoint store; only a cell missing from both enqueues.
        """
        self._jobs[job.id] = job
        buffer = _EventBuffer(self._lock)
        self._events[job.id] = buffer
        telemetry = SweepTelemetry(sinks=[buffer])
        self._telemetry[job.id] = telemetry
        pending: Set[str] = set()
        telemetry.sweep_started(
            len(job.cells), list(job.benchmarks), list(job.techniques),
            self.worker_count,
        )
        for cell in job.cells:
            key = cell_key(job.config, *cell)
            entry = self._cells.get(key)
            if entry is not None and entry.state in ("queued", "running"):
                # Someone else is already computing this cell: attach.
                entry.jobs.add(job.id)
                entry.priority = min(entry.priority, job.priority)
                pending.add(key)
                job.dedup_cells += 1
                self.counters["dedup_inflight_hits"] += 1
                continue
            if entry is not None and entry.state == "done":
                job.dedup_cells += 1
                self.counters["dedup_checkpoint_hits"] += 1
                telemetry.cell_resumed(cell_label(cell))
                continue
            if self.checkpoint.load(job.config, *cell) is not None:
                job.dedup_cells += 1
                self.counters["dedup_checkpoint_hits"] += 1
                telemetry.cell_resumed(cell_label(cell))
                continue
            # Cold (or previously failed) cell: (re-)enqueue it.
            entry = _CellEntry(
                key, job.config, cell[0], cell[1],
                job.priority, job.client, job.seq,
            )
            entry.jobs.add(job.id)
            self._cells[key] = entry
            self._queue.append(key)
            pending.add(key)
        self._job_pending[job.id] = pending
        self._job_failed[job.id] = {}
        if not pending:
            job.transition("done")
            telemetry.sweep_finished("ok")
        self.job_store.save(job, progress=self._progress(job))

    def _resume_from_store(self) -> None:
        """Re-admit persisted non-terminal jobs (constructor path)."""
        for job in self.job_store.resume():
            if job.is_terminal:
                self._jobs[job.id] = job
                self._events[job.id] = _EventBuffer(self._lock)
                self._job_pending[job.id] = set()
                self._job_failed[job.id] = {}
                continue
            self._seq = max(self._seq, job.seq)
            self._admit(job)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: (j.seq, j.id))

    def job_dict(self, job: Job) -> Dict:
        with self._lock:
            return job.to_dict(progress=self._progress(job))

    def _progress(self, job: Job) -> Dict[str, int]:
        pending = self._job_pending.get(job.id, set())
        failed = self._job_failed.get(job.id, {})
        total = len(job.cells)
        return {
            "total": total,
            "done": total - len(pending) - len(failed),
            "failed": len(failed),
            "pending": len(pending),
        }

    def events_since(self, job_id: str, start: int = 0) -> Tuple[List[Dict], bool]:
        """Events ``start:`` for a job plus whether the job is terminal
        (no further events will ever arrive)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            buffer = self._events.get(job_id)
            events = list(buffer.events[start:]) if buffer is not None else []
            return events, job.is_terminal

    def result(self, job_id: str) -> Dict:
        """The result body for a *done* job.

        Cell jobs return the run's stats; sweep jobs return the full
        :func:`repro.harness.export.to_dict` comparison -- byte-for-byte
        what ``export_json`` of the equivalent CLI sweep produces.

        Raises KeyError for unknown jobs and RuntimeError for jobs not
        in ``done`` (the HTTP layer maps these to 404 / 409).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.state != "done":
                raise RuntimeError(f"job {job_id} is {job.state}, not done")
        if job.kind == "cell":
            benchmark, technique = job.cells[0]
            run = self.checkpoint.load(job.config, benchmark, technique)
            if run is None:
                raise RuntimeError(
                    f"job {job_id} is done but its checkpoint is missing "
                    "(store cleared underneath the service?)"
                )
            return _run_to_dict(run, benchmark, technique)
        comparison = self._assemble_comparison(job)
        return to_dict(comparison)

    def _assemble_comparison(self, job: Job) -> SingleThreadComparison:
        baseline: Dict[str, RunResult] = {}
        results: Dict[str, Dict[str, RunResult]] = {
            b: {} for b in job.benchmarks
        }
        for benchmark, technique in job.cells:
            run = self.checkpoint.load(job.config, benchmark, technique)
            if run is None:
                raise RuntimeError(
                    f"job {job.id}: checkpoint for "
                    f"{cell_label((benchmark, technique))} is missing"
                )
            if technique is None:
                baseline[benchmark] = run
            else:
                results[benchmark][technique] = run
        return SingleThreadComparison(
            benchmarks=job.benchmarks,
            technique_keys=job.techniques,
            baseline=baseline,
            results=results,
        )

    def stats(self) -> Dict:
        """The ``GET /v1/stats`` body."""
        with self._lock:
            states: Dict[str, int] = {state: 0 for state in
                                      ("queued", "running", "done", "failed",
                                       "cancelled")}
            for job in self._jobs.values():
                states[job.state] += 1
            hits = (self.counters["dedup_checkpoint_hits"]
                    + self.counters["dedup_inflight_hits"])
            submitted = self.counters["submitted_cells"]
            busy = min(self._running_batch, self.worker_count)
            return {
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "draining": self._draining,
                "queue": {
                    "depth": len(self._queue),
                    "limit": self.queue_depth,
                    "running_batch": self._running_batch,
                },
                "jobs": states,
                "cells": {
                    "submitted": submitted,
                    "executed": self.counters["executed_cells"],
                    "failed": self.counters["failed_cells"],
                },
                "dedup": {
                    "checkpoint_hits": self.counters["dedup_checkpoint_hits"],
                    "inflight_hits": self.counters["dedup_inflight_hits"],
                    "hit_rate": round(hits / submitted, 6) if submitted else 0.0,
                },
                "workers": {
                    "count": self.worker_count,
                    "busy": busy,
                    "utilization": round(busy / self.worker_count, 6),
                },
                "stream_store": {
                    "enabled": self.stream_store is not None,
                    "shared_memory": self.shared_memory,
                    "hits": self.counters["stream_hits"],
                    "misses": self.counters["stream_misses"],
                },
                "replay_kernel": {
                    "array_cells": self.counters["kernel_array_cells"],
                    "object_cells": self.counters["kernel_object_cells"],
                    "fallbacks": dict(self.kernel_fallbacks),
                },
                **(
                    {"fleet": self.fleet.stats()}
                    if self.fleet is not None else {}
                ),
            }

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued cells it alone wanted leave the queue;
        cells other jobs share (or that are mid-execution) keep running
        and their results still checkpoint.  Terminal jobs are a no-op.

        Raises KeyError for unknown jobs.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.is_terminal:
                return job
            for key in list(self._job_pending.get(job_id, ())):
                entry = self._cells.get(key)
                if entry is None:
                    continue
                entry.jobs.discard(job_id)
                if not entry.jobs and entry.state == "queued":
                    self._queue.remove(key)
                    del self._cells[key]
            self._job_pending[job_id] = set()
            job.transition("cancelled")
            telemetry = self._telemetry.get(job_id)
            if telemetry is not None:
                telemetry.sweep_finished("cancelled")
            self.job_store.save(job, progress=self._progress(job))
            return job

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _pick_batch(
        self, limit: Optional[int] = None
    ) -> Tuple[Optional[ExperimentConfig], List[_CellEntry]]:
        """The next batch: queued cells sharing the best cell's config,
        in fair-share order, at most ``limit`` of them (lock held)."""
        if not self._queue:
            return None, []

        def sort_key(key: str):
            entry = self._cells[key]
            return (entry.priority, self._served.get(entry.client, 0), entry.seq)

        best = self._cells[min(self._queue, key=sort_key)]
        batch = [
            self._cells[key]
            for key in self._queue
            if self._cells[key].config == best.config
        ]
        batch.sort(key=lambda e: sort_key(e.key))
        if limit is not None:
            batch = batch[:limit]
        for entry in batch:
            self._queue.remove(entry.key)
            entry.state = "running"
            entry.dispatches += 1
            self._served[entry.client] = self._served.get(entry.client, 0) + 1
            for job_id in entry.jobs:
                job = self._jobs[job_id]
                if job.state == "queued":
                    job.transition("running")
                    self.job_store.save(job, progress=self._progress(job))
        return best.config, batch

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._draining:
                    self._wakeup.wait(timeout=0.5)
                    if self._closed:
                        return
                if self._draining:
                    # Drain means: never *start* a batch.  Whatever is
                    # still queued stays queued (and persisted) for the
                    # next server life to resume.
                    self._wakeup.notify_all()
                    return
                config, batch = self._pick_batch()
                self._running_batch = len(batch)
            try:
                if batch:
                    self._execute_batch(config, batch)
            except Exception as exc:  # defensive: dispatcher must survive
                with self._lock:
                    for entry in batch:
                        if entry.state == "running":
                            self._finish_cell(
                                entry, "failed",
                                detail=f"batch execution failed: "
                                       f"{type(exc).__name__}: {exc}",
                            )
            finally:
                with self._lock:
                    self._running_batch = 0
                    self._wakeup.notify_all()

    def _execute_batch(
        self, config: ExperimentConfig, batch: List[_CellEntry]
    ) -> None:
        """Run one batch through the harness (dispatcher thread)."""
        by_cell = {entry.cell: entry for entry in batch}
        cells = [entry.cell for entry in batch]
        cache = WorkloadCache(config, stream_store=self.stream_store)

        def record(cell: Cell, result: RunResult, timing=None) -> None:
            entry = by_cell[cell]
            self.checkpoint.store(config, cell[0], cell[1], result)
            kernel = getattr(result, "kernel", None)
            fallback = getattr(result, "kernel_fallback", None)
            with self._lock:
                entry.timing = timing
                if kernel == "array":
                    self.counters["kernel_array_cells"] += 1
                elif kernel is not None:
                    self.counters["kernel_object_cells"] += 1
                    if fallback is not None:
                        self.kernel_fallbacks[fallback] = (
                            self.kernel_fallbacks.get(fallback, 0) + 1
                        )
                self._finish_cell(entry, "done")

        workers = min(self.worker_count, len(cells))
        if workers <= 1:
            for cell in cells:
                entry = by_cell[cell]
                with self._lock:
                    for job_id in entry.jobs:
                        telemetry = self._telemetry.get(job_id)
                        if telemetry is not None:
                            telemetry.cell_started(entry.label)
                wall = time.perf_counter()
                cpu = time.process_time()
                try:
                    result = _run_cell_on(cache, cell)
                except Exception as exc:
                    with self._lock:
                        self._finish_cell(
                            entry, "failed",
                            detail=f"{type(exc).__name__}: {exc}",
                        )
                else:
                    record(cell, result, timing={
                        "wall_seconds": time.perf_counter() - wall,
                        "cpu_seconds": time.process_time() - cpu,
                    })
        else:
            # Warm fan-out, exactly as the CLI sweep path: compile each
            # workload once in the parent, then export via shared memory
            # and/or let workers load blobs from the store.
            store_root = (
                os.fspath(self.stream_store.root)
                if self.stream_store is not None else None
            )
            stream_manifest = None
            export: Optional[SharedStreamExport] = None
            cleanup_hooks = []
            if self.stream_store is not None or self.shared_memory:
                compiled = {}
                for benchmark in dict.fromkeys(b for b, _ in cells):
                    compiled[benchmark] = cache.compiled(benchmark)
                if self.shared_memory:
                    export = SharedStreamExport.create(compiled)
                    stream_manifest = export.manifest()
                    cleanup_hooks.append(export.close)

            make_pool = make_cell_pool_factory(
                config, workers, store_root, stream_manifest
            )

            def on_success(cell: Cell, result: RunResult) -> None:
                record(cell, result)

            def on_event(kind: str, label: str, **payload) -> None:
                if kind not in ("retried", "timed_out"):
                    return
                benchmark, _, technique = label.partition("/")
                entry = by_cell.get(
                    (benchmark, None if technique == "lru(baseline)" else technique)
                )
                if entry is None:
                    return
                with self._lock:
                    for job_id in entry.jobs:
                        telemetry = self._telemetry.get(job_id)
                        if telemetry is not None:
                            telemetry.on_event(kind, label, **payload)

            failures = run_cells_supervised(
                make_pool,
                _run_cell_supervised,
                cells,
                self.fault_policy,
                on_success=on_success,
                serial_fallback=(
                    (lambda cell: _run_cell_on(cache, cell))
                    if self.fault_policy.degrade_serially else None
                ),
                on_event=on_event,
                cleanup=cleanup_hooks,
            )
            with self._lock:
                for failure in failures:
                    entry = by_cell.get(failure.cell)
                    if entry is not None and entry.state == "running":
                        self._finish_cell(entry, "failed", detail=str(failure))
        with self._lock:
            self.counters["stream_hits"] += cache.stream_hits
            self.counters["stream_misses"] += cache.stream_misses

    def _finish_cell(
        self, entry: _CellEntry, state: str, detail: str = ""
    ) -> None:
        """Mark a cell terminal and settle every attached job (lock held)."""
        entry.state = state
        entry.detail = detail
        if state == "done":
            self.counters["executed_cells"] += 1
        else:
            self.counters["failed_cells"] += 1
        status = "ok" if state == "done" else "failed"
        for job_id in sorted(entry.jobs):
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                continue
            pending = self._job_pending.get(job_id, set())
            pending.discard(entry.key)
            if state == "failed":
                self._job_failed.setdefault(job_id, {})[entry.key] = (
                    f"{entry.label}: {detail}"
                )
            telemetry = self._telemetry.get(job_id)
            if telemetry is not None:
                telemetry.cell_finished(entry.label, status, timing=entry.timing)
            if not pending:
                failed = self._job_failed.get(job_id, {})
                if failed:
                    job.error = "; ".join(failed.values())
                    job.transition("failed")
                    if telemetry is not None:
                        telemetry.sweep_finished("failed")
                else:
                    job.transition("done")
                    if telemetry is not None:
                        telemetry.sweep_finished("ok")
            self.job_store.save(job, progress=self._progress(job))
        # The registry keeps done/failed entries so later submissions
        # dedup against them in-memory; they are cheap (no results).

    # ------------------------------------------------------------------
    # fleet integration (called by repro.service.fleet)
    # ------------------------------------------------------------------
    def fleet_checkout(
        self, max_cells: Optional[int] = None
    ) -> Tuple[Optional[ExperimentConfig], List[_CellEntry]]:
        """Check out up to ``max_cells`` queued cells for a lease.

        Same selection as the local dispatcher (`_pick_batch`): fair-share
        order within the best cell's config.  Checked-out cells are
        ``running`` with ``dispatches`` bumped -- the per-cell attempt
        number the chaos harness draws against.
        """
        with self._lock:
            config, batch = self._pick_batch(limit=max_cells)
            for entry in batch:
                for job_id in entry.jobs:
                    telemetry = self._telemetry.get(job_id)
                    if telemetry is not None:
                        telemetry.cell_started(entry.label)
            return config, batch

    def fleet_requeue(self, keys: Sequence[str], reason: str = "") -> int:
        """Return running cells to the queue (lease expiry, worker loss,
        graceful deregistration).  Returns how many actually requeued;
        cells already settled by a racing completion stay settled."""
        requeued = 0
        with self._lock:
            for key in keys:
                entry = self._cells.get(key)
                if entry is None or entry.state != "running":
                    continue
                entry.state = "queued"
                self._queue.append(key)
                requeued += 1
                for job_id in entry.jobs:
                    telemetry = self._telemetry.get(job_id)
                    if telemetry is not None:
                        telemetry.cell_retried(
                            entry.label, reason, entry.dispatches + 1
                        )
            if requeued:
                self._wakeup.notify_all()
        return requeued

    def fleet_complete(
        self,
        key: str,
        result: RunResult,
        timing: Optional[Dict[str, float]] = None,
    ) -> str:
        """Settle one leased cell with a worker's result.

        Outcomes: ``accepted`` (first completion), ``late`` (the cell
        had expired back to the queue -- or even terminally failed --
        before the original worker finished; the result is still taken,
        because it is bit-identical to any other execution's),
        ``duplicate`` (already done: the result is dropped), or
        ``unknown`` (no such cell in the registry).  At-least-once
        dispatch is safe precisely because this settlement is
        idempotent: the checkpoint store is content-addressed and every
        execution of a cell produces identical bytes.
        """
        with self._lock:
            entry = self._cells.get(key)
            if entry is None:
                return "unknown"
            if entry.state == "done":
                return "duplicate"
            config = entry.config
        # Checkpoint outside the lock: a disk write must not stall
        # admission or heartbeats.
        self.checkpoint.store(config, entry.benchmark, entry.technique, result)
        kernel = getattr(result, "kernel", None)
        fallback = getattr(result, "kernel_fallback", None)
        with self._lock:
            if entry.state == "done":
                return "duplicate"
            if entry.state == "failed":
                # The scheduler gave up on the cell before this result
                # arrived; jobs already settled, but the checkpoint now
                # exists, so future submissions dedup against it.
                return "late"
            late = entry.state == "queued"
            if late:
                try:
                    self._queue.remove(key)
                except ValueError:
                    pass
            entry.timing = timing
            if kernel == "array":
                self.counters["kernel_array_cells"] += 1
            elif kernel is not None:
                self.counters["kernel_object_cells"] += 1
                if fallback is not None:
                    self.kernel_fallbacks[fallback] = (
                        self.kernel_fallbacks.get(fallback, 0) + 1
                    )
            self._finish_cell(entry, "done")
            return "late" if late else "accepted"

    def fleet_fail(self, key: str, detail: str) -> str:
        """Record a worker-reported cell failure: requeue while dispatch
        attempts remain (``max_retries`` + the first), else fail the
        cell and its jobs.  Returns ``requeued``, ``failed``, or
        ``unknown``."""
        max_dispatches = self.fault_policy.max_retries + 1
        with self._lock:
            entry = self._cells.get(key)
            if entry is None or entry.state != "running":
                return "unknown"
            if entry.dispatches < max_dispatches:
                entry.state = "queued"
                self._queue.append(key)
                for job_id in entry.jobs:
                    telemetry = self._telemetry.get(job_id)
                    if telemetry is not None:
                        telemetry.cell_retried(
                            entry.label, detail, entry.dispatches + 1
                        )
                self._wakeup.notify_all()
                return "requeued"
            self._finish_cell(entry, "failed", detail=detail)
            return "failed"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new jobs, let the running batch
        finish (each completed cell is already checkpointed), persist
        job states, stop the dispatcher.  Returns True when the
        dispatcher stopped within ``timeout``."""
        with self._lock:
            self._draining = True
            self._wakeup.notify_all()
        if self.fleet is not None:
            # Fleet mode: stop granting leases, give in-flight leases a
            # chance to complete (their results checkpoint); whatever
            # remains leased stays journaled for the next server life.
            self.fleet.drain(timeout=timeout)
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=timeout)
        stopped = not self._dispatcher.is_alive()
        with self._lock:
            for job in self._jobs.values():
                self.job_store.save(job, progress=self._progress(job))
        return stopped

    def close(self, timeout: Optional[float] = 30.0) -> None:
        self.drain(timeout=timeout)
        if self.fleet is not None:
            self.fleet.stop()
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()


def _run_to_dict(run: RunResult, benchmark: str, technique: Optional[str]) -> Dict:
    """JSON body for a single-cell result."""
    stats = run.llc_stats
    return {
        "kind": "cell",
        "benchmark": benchmark,
        "technique": technique if technique is not None else "lru(baseline)",
        "instructions": run.instructions,
        "mpki": run.mpki,
        "ipc": run.ipc,
        "llc": {
            "accesses": stats.accesses,
            "hits": stats.hits,
            "misses": stats.misses,
            "fills": stats.fills,
            "evictions": stats.evictions,
            "writebacks": stats.writebacks,
            "bypasses": stats.bypasses,
            "dead_block_victims": stats.dead_block_victims,
        },
    }
