"""Lease-based worker-fleet coordination for the experiment service.

The PR 5 service executes cells on local process pools; this module is
the protocol layer that lets *worker processes* -- ``repro worker
--connect URL``, on this machine or any other -- pull cell batches from
one scheduler and survive every ugly way a distributed fleet fails:

* **Time-bounded leases.**  A worker checks cells out under a lease
  that expires unless renewed by heartbeats.  A worker that crashes,
  hangs, or partitions simply stops renewing; the monitor thread
  returns its cells to the queue and they re-dispatch to live workers.
* **At-least-once, exactly-once-effective.**  Re-dispatch means a cell
  can execute twice (the original worker may finish after its lease
  expired -- the split-brain case).  That is safe by construction:
  cells are content-addressed, every execution is bit-identical, and
  results settle through the idempotent checkpoint store.  Duplicate
  and late completions are detected, dropped or absorbed, and counted
  in ``GET /v1/stats``.
* **Write-ahead lease journal.**  Every grant/renewal/settlement
  rewrites ``<job-store>/leases.json`` atomically *before* the worker
  observes the change, so a restarted server recovers in-flight leases
  instead of instantly re-dispatching work that live workers are still
  computing.  A journaled lease whose worker never returns expires
  normally and re-dispatches.
* **Blob handover.**  When the scheduler has a compiled-workload store,
  each lease names the stream-blob digest for every benchmark it
  carries; workers fetch missing blobs by digest over
  ``GET /v1/blobs/{digest}`` with torn-transfer detection (the sha256
  addressing of :mod:`repro.sim.streamstore`) and fall back to a local
  compile when the transfer cannot be made whole.
* **Deterministic chaos.**  ``REPRO_CHAOS`` (see
  :class:`repro.harness.faults.ChaosSpec`) injects worker kills,
  heartbeat drops, slow workers, and truncated blob transfers as pure
  hash draws, so ``make fleet-smoke`` can kill a worker mid-batch on
  every run and still demand a bit-identical sweep result.

The coordinator shares the scheduler's RLock: worker registry, lease
table, and cell state mutate under one lock, so there is no window
where a cell is both queued and leased.  See docs/service.md for the
wire protocol and docs/robustness.md for the failure taxonomy.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.harness.checkpoint import result_from_wire
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.streamstore import StreamStore
from repro.service.jobs import cell_key, config_from_dict, config_to_dict

__all__ = ["FleetCoordinator", "Lease", "WorkerInfo"]

#: Default lease TTL in seconds (override with ``REPRO_LEASE_TTL``).
DEFAULT_LEASE_TTL = 60.0
#: Default heartbeat period in seconds (override with ``REPRO_HEARTBEAT_SEC``).
DEFAULT_HEARTBEAT_SECONDS = 5.0
#: Default max cells per lease grant.
DEFAULT_LEASE_CELLS = 4


def _env_positive_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass
class WorkerInfo:
    """One registered worker as the coordinator sees it."""

    id: str
    name: str
    pid: Optional[int] = None
    host: str = ""
    registered_at: float = 0.0
    last_seen: float = 0.0
    state: str = "idle"  # idle | busy | dead | gone
    leases: set = field(default_factory=set)
    completed_cells: int = 0
    failed_cells: int = 0


@dataclass
class Lease:
    """One time-bounded checkout of cells to one worker.

    ``cells`` maps cell key -> (benchmark, technique, attempt) where
    *attempt* is the cell's dispatch count at grant time -- the number
    the worker-side chaos harness draws against, so ``kill:1@1`` kills
    exactly the first dispatch of a cell and never its re-dispatch.
    """

    id: str
    worker_id: str
    config: ExperimentConfig
    cells: Dict[str, Tuple[str, Optional[str], int]]
    granted_at: float
    expires_at: float
    renewals: int = 0
    recovered: bool = False


class FleetCoordinator:
    """Worker registry + lease table + expiry monitor for one scheduler.

    Constructed by :class:`~repro.service.scheduler.ExperimentScheduler`
    when ``fleet=True``; all mutable state shares the scheduler's RLock.

    Args:
        scheduler: the owning scheduler (queue, registry, checkpoint).
        lease_ttl: seconds a lease lives without renewal (default
            ``REPRO_LEASE_TTL`` or 60).
        heartbeat_seconds: the renewal period workers are told to use
            (default ``REPRO_HEARTBEAT_SEC`` or 5); a worker silent for
            ``max(lease_ttl, 3 * heartbeat)`` is declared dead.
        lease_cells: max cells per lease grant (default 4).
        start: start the expiry-monitor thread (tests driving expiry by
            hand pass False).
    """

    def __init__(
        self,
        scheduler,
        lease_ttl: Optional[float] = None,
        heartbeat_seconds: Optional[float] = None,
        lease_cells: Optional[int] = None,
        start: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.lease_ttl = (
            float(lease_ttl) if lease_ttl is not None
            else _env_positive_float("REPRO_LEASE_TTL", DEFAULT_LEASE_TTL)
        )
        self.heartbeat_seconds = (
            float(heartbeat_seconds) if heartbeat_seconds is not None
            else _env_positive_float(
                "REPRO_HEARTBEAT_SEC", DEFAULT_HEARTBEAT_SECONDS
            )
        )
        if self.lease_ttl <= 0 or self.heartbeat_seconds <= 0:
            raise ValueError("lease_ttl and heartbeat_seconds must be positive")
        self.lease_cells = int(lease_cells) if lease_cells else DEFAULT_LEASE_CELLS
        if self.lease_cells < 1:
            raise ValueError(f"lease_cells must be >= 1, got {lease_cells}")
        self.journal_path = self.scheduler.job_store.root / "leases.json"

        self._lock = scheduler._lock  # one lock: cells + leases + workers
        self._workers: Dict[str, WorkerInfo] = {}
        self._leases: Dict[str, Lease] = {}
        self._compile_caches: Dict[ExperimentConfig, WorkloadCache] = {}
        self._draining = False
        self._stop = threading.Event()
        self.counters = {
            "workers_registered": 0,
            "workers_lost": 0,
            "leases_granted": 0,
            "leases_expired": 0,
            "leases_recovered": 0,
            "cells_leased": 0,
            "cells_completed": 0,
            "cells_redispatched": 0,
            "duplicate_completions": 0,
            "late_completions": 0,
            "failed_reports": 0,
            "blobs_served": 0,
            "blob_bytes_served": 0,
            "chaos_truncated_blobs": 0,
        }

        self._recover_journal()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        if start:
            self._monitor.start()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def register(
        self, name: str = "", pid: Optional[int] = None, host: str = ""
    ) -> Dict:
        """Admit a worker; returns its id and the protocol knobs."""
        now = time.time()
        with self._lock:
            worker_id = f"wkr-{uuid.uuid4().hex[:10]}"
            self._workers[worker_id] = WorkerInfo(
                id=worker_id,
                name=name or worker_id,
                pid=pid,
                host=host,
                registered_at=now,
                last_seen=now,
            )
            self.counters["workers_registered"] += 1
            return {
                "worker_id": worker_id,
                "lease_ttl": self.lease_ttl,
                "heartbeat_seconds": self.heartbeat_seconds,
                "draining": self._draining or self.scheduler._draining,
            }

    def deregister(self, worker_id: str) -> Dict:
        """Graceful drain: the worker's unfinished cells requeue
        immediately (no TTL wait) and the worker is marked gone."""
        with self._lock:
            worker = self._require_worker(worker_id)
            released = 0
            for lease_id in list(worker.leases):
                released += self._expire_lease_locked(
                    self._leases[lease_id],
                    reason=f"worker {worker.name} deregistered",
                    count_expired=False,
                )
            worker.state = "gone"
            worker.leases.clear()
            self._write_journal_locked()
            return {"worker_id": worker_id, "requeued_cells": released}

    def _require_worker(self, worker_id: str) -> WorkerInfo:
        """Look up a live worker (lock held); revives ``dead`` workers
        that turn out to still be talking.  Raises KeyError for unknown
        or deregistered ids -- the HTTP layer maps that to 404, and the
        worker re-registers."""
        worker = self._workers.get(worker_id)
        if worker is None or worker.state == "gone":
            raise KeyError(f"unknown worker {worker_id!r}")
        worker.last_seen = time.time()
        if worker.state == "dead":
            worker.state = "busy" if worker.leases else "idle"
        return worker

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    def lease(self, worker_id: str, max_cells: Optional[int] = None) -> Dict:
        """Grant a lease of queued cells to a worker, or report why not.

        The response always carries ``outstanding`` (cells currently
        leased fleet-wide) so an idle ``--once`` worker can distinguish
        "queue empty, fleet finished" from "queue empty, another
        worker's lease may yet expire back to me".
        """
        with self._lock:
            self._require_worker(worker_id)
            draining = self._draining or self.scheduler._draining
            if draining:
                return {
                    "lease": None,
                    "draining": True,
                    "outstanding": self._outstanding_locked(),
                    "retry_seconds": self.heartbeat_seconds,
                }
            limit = min(int(max_cells), self.lease_cells) if max_cells else self.lease_cells
            if limit < 1:
                limit = 1
        config, batch = self.scheduler.fleet_checkout(limit)
        if not batch:
            with self._lock:
                return {
                    "lease": None,
                    "draining": False,
                    "outstanding": self._outstanding_locked(),
                    "retry_seconds": min(1.0, self.heartbeat_seconds),
                }
        blobs = self._blob_digests(config, batch)
        now = time.time()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None or worker.state == "gone":
                # The worker vanished between checkout and grant: put
                # the cells straight back.
                self.scheduler.fleet_requeue(
                    [entry.key for entry in batch],
                    reason="worker vanished during lease grant",
                )
                raise KeyError(f"unknown worker {worker_id!r}")
            lease = Lease(
                id=f"lease-{uuid.uuid4().hex[:12]}",
                worker_id=worker_id,
                config=config,
                cells={
                    entry.key: (entry.benchmark, entry.technique, entry.dispatches)
                    for entry in batch
                },
                granted_at=now,
                expires_at=now + self.lease_ttl,
            )
            self._leases[lease.id] = lease
            worker.leases.add(lease.id)
            worker.state = "busy"
            self.counters["leases_granted"] += 1
            self.counters["cells_leased"] += len(batch)
            # Write-ahead: the journal records the lease before the
            # worker ever sees it, so a crash between here and the HTTP
            # response can only recover a lease, never lose one.
            self._write_journal_locked()
            return {
                "lease": self._lease_wire_locked(lease, blobs),
                "draining": False,
                "outstanding": self._outstanding_locked(),
            }

    def heartbeat(self, worker_id: str, lease_ids: List[str]) -> Dict:
        """Renew a worker's leases; returns lease ids the server no
        longer recognizes (expired and re-dispatched -- the worker must
        abandon their remaining cells: split-brain resolution)."""
        with self._lock:
            self._require_worker(worker_id)
            unknown: List[str] = []
            renewed = False
            now = time.time()
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if lease is None or lease.worker_id != worker_id:
                    unknown.append(lease_id)
                    continue
                lease.expires_at = now + self.lease_ttl
                lease.renewals += 1
                renewed = True
            if renewed:
                self._write_journal_locked()
            return {
                "ok": True,
                "draining": self._draining or self.scheduler._draining,
                "unknown_leases": unknown,
                "heartbeat_seconds": self.heartbeat_seconds,
            }

    def complete(
        self,
        worker_id: str,
        lease_id: str,
        key: str,
        status: str,
        result_b64: Optional[str] = None,
        error: str = "",
        timing: Optional[Dict[str, float]] = None,
    ) -> Dict:
        """Settle one cell of a lease with a worker's outcome.

        ``status="ok"`` carries a base64 :func:`result_to_wire` payload;
        anything undecodable is a protocol error (ValueError -> 400),
        never a stored result.  Completions for expired or foreign
        leases are still settled against the cell registry -- a result
        is a result, whoever computed it -- they just count as late or
        duplicate.  Returns ``{"outcome": ...}``.
        """
        if status == "ok":
            if not result_b64:
                raise ValueError("status 'ok' requires a result payload")
            try:
                raw = base64.b64decode(result_b64, validate=True)
            except Exception as exc:
                raise ValueError(f"bad result encoding: {exc}") from None
            result = result_from_wire(raw)
            outcome = self.scheduler.fleet_complete(key, result, timing=timing)
        else:
            outcome = self.scheduler.fleet_fail(
                key, error or "worker reported failure"
            )
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is not None and worker.state != "gone":
                worker.last_seen = time.time()
                if status == "ok":
                    worker.completed_cells += 1
                else:
                    worker.failed_cells += 1
            if outcome in ("accepted", "late"):
                self.counters["cells_completed"] += 1
            if outcome == "late":
                self.counters["late_completions"] += 1
            elif outcome == "duplicate":
                self.counters["duplicate_completions"] += 1
            elif outcome == "requeued":
                self.counters["failed_reports"] += 1
                self.counters["cells_redispatched"] += 1
            elif outcome == "failed":
                self.counters["failed_reports"] += 1
            lease = self._leases.get(lease_id)
            if lease is not None and key in lease.cells:
                del lease.cells[key]
                if not lease.cells:
                    self._drop_lease_locked(lease)
                self._write_journal_locked()
            return {"outcome": outcome}

    # ------------------------------------------------------------------
    # expiry + journal
    # ------------------------------------------------------------------
    def _outstanding_locked(self) -> int:
        return sum(len(lease.cells) for lease in self._leases.values())

    def _drop_lease_locked(self, lease: Lease) -> None:
        self._leases.pop(lease.id, None)
        worker = self._workers.get(lease.worker_id)
        if worker is not None:
            worker.leases.discard(lease.id)
            if not worker.leases and worker.state == "busy":
                worker.state = "idle"

    def _expire_lease_locked(
        self, lease: Lease, reason: str, count_expired: bool = True
    ) -> int:
        """Return a lease's unfinished cells to the queue (lock held)."""
        requeued = self.scheduler.fleet_requeue(list(lease.cells), reason=reason)
        self.counters["cells_redispatched"] += requeued
        if count_expired:
            self.counters["leases_expired"] += 1
        self._drop_lease_locked(lease)
        return requeued

    def _monitor_loop(self) -> None:
        interval = max(0.05, min(self.heartbeat_seconds, self.lease_ttl / 4.0))
        while not self._stop.wait(interval):
            self.check_expiry()

    def check_expiry(self) -> int:
        """One monitor scan: expire overdue leases, declare silent
        workers dead (and expire their leases early).  Public so tests
        and the drain path can force a scan."""
        now = time.time()
        dead_after = max(self.lease_ttl, 3.0 * self.heartbeat_seconds)
        requeued = 0
        with self._lock:
            changed = False
            for worker in self._workers.values():
                if (
                    worker.state in ("idle", "busy")
                    and now - worker.last_seen > dead_after
                ):
                    worker.state = "dead"
                    self.counters["workers_lost"] += 1
                    changed = True
                    for lease_id in list(worker.leases):
                        lease = self._leases.get(lease_id)
                        if lease is not None:
                            requeued += self._expire_lease_locked(
                                lease,
                                reason=f"worker {worker.name} stopped "
                                       f"heartbeating ({dead_after:.1f}s silent)",
                            )
            for lease in [
                lease for lease in self._leases.values()
                if lease.expires_at <= now
            ]:
                requeued += self._expire_lease_locked(
                    lease,
                    reason=f"lease {lease.id} expired "
                           f"({self.lease_ttl:.1f}s without renewal)",
                )
                changed = True
            if changed:
                self._write_journal_locked()
        return requeued

    def _write_journal_locked(self) -> None:
        """Atomically rewrite the write-ahead lease journal (lock held)."""
        records = []
        for lease in self._leases.values():
            worker = self._workers.get(lease.worker_id)
            records.append({
                "id": lease.id,
                "worker_id": lease.worker_id,
                "worker_name": worker.name if worker is not None else "",
                "config": config_to_dict(lease.config),
                "cells": [
                    [benchmark, technique, attempt]
                    for benchmark, technique, attempt in lease.cells.values()
                ],
                "granted_at": lease.granted_at,
                "expires_at": lease.expires_at,
                "renewals": lease.renewals,
            })
        payload = json.dumps(
            {"version": 1, "leases": records}, sort_keys=True, indent=1
        )
        tmp = self.journal_path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.journal_path)

    def _recover_journal(self) -> None:
        """Restore in-flight leases from a previous server life.

        Runs after the scheduler's job resume re-queued all unfinished
        cells: each journaled cell still queued is pulled back out of
        the queue and held under a restored lease with a fresh TTL.  If
        its worker is still alive, its heartbeats (same lease id) renew
        the restored lease and its completions settle normally; if not,
        the lease expires and the cells re-dispatch -- either way no
        work is lost and none double-runs while a live worker holds it.
        """
        try:
            data = json.loads(self.journal_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return
        except Exception as exc:
            print(
                f"[fleet] lease journal unreadable ({type(exc).__name__}: "
                f"{exc}); in-flight leases from the previous life are "
                "forfeit and their cells will re-dispatch",
                flush=True,
            )
            return
        now = time.time()
        with self._lock:
            for record in data.get("leases", ()):
                try:
                    config = config_from_dict(record.get("config"))
                    raw_cells = list(record.get("cells", ()))
                    lease_id = str(record["id"])
                    worker_id = str(record["worker_id"])
                except (KeyError, TypeError, ValueError):
                    continue  # malformed record: its cells stay queued
                cells: Dict[str, Tuple[str, Optional[str], int]] = {}
                for item in raw_cells:
                    try:
                        benchmark, technique, attempt = item
                    except (TypeError, ValueError):
                        continue
                    key = cell_key(config, benchmark, technique)
                    entry = self.scheduler._cells.get(key)
                    if entry is None or entry.state != "queued":
                        continue  # already finished, or never resumed
                    self.scheduler._queue.remove(key)
                    entry.state = "running"
                    entry.dispatches = max(entry.dispatches, int(attempt))
                    cells[key] = (benchmark, technique, int(attempt))
                if not cells:
                    continue
                if worker_id not in self._workers:
                    self._workers[worker_id] = WorkerInfo(
                        id=worker_id,
                        name=str(record.get("worker_name", "")) or worker_id,
                        registered_at=now,
                        last_seen=now,
                        state="busy",
                    )
                worker = self._workers[worker_id]
                lease = Lease(
                    id=lease_id,
                    worker_id=worker_id,
                    config=config,
                    cells=cells,
                    granted_at=float(record.get("granted_at", now)),
                    expires_at=now + self.lease_ttl,
                    renewals=int(record.get("renewals", 0)),
                    recovered=True,
                )
                self._leases[lease.id] = lease
                worker.leases.add(lease.id)
                worker.state = "busy"
                self.counters["leases_recovered"] += 1
            self._write_journal_locked()

    # ------------------------------------------------------------------
    # blob handover
    # ------------------------------------------------------------------
    def _blob_digests(self, config: ExperimentConfig, batch) -> Dict[str, str]:
        """Compile (once) and digest each benchmark's stream blob so the
        lease can name what workers may fetch.  Best-effort: a compile
        failure just means workers build the workload themselves."""
        store = self.scheduler.stream_store
        if store is None:
            return {}
        try:
            cache = self._compile_caches.get(config)
            if cache is None:
                cache = WorkloadCache(config, stream_store=store)
                self._compile_caches[config] = cache
            digests = {}
            for benchmark in dict.fromkeys(entry.benchmark for entry in batch):
                compiled = cache.compiled(benchmark)
                digests[benchmark] = StreamStore.digest_for_key(compiled.key)
            with self._lock:
                self.scheduler.counters["stream_hits"] += cache.stream_hits
                self.scheduler.counters["stream_misses"] += cache.stream_misses
                cache.stream_hits = 0
                cache.stream_misses = 0
            return digests
        except Exception as exc:
            print(
                f"[fleet] blob compile failed ({type(exc).__name__}: {exc}); "
                "lease ships without blob digests",
                flush=True,
            )
            return {}

    def record_blob_served(self, nbytes: int, truncated: bool = False) -> None:
        """Counter hook for the HTTP blob route."""
        with self._lock:
            self.counters["blobs_served"] += 1
            self.counters["blob_bytes_served"] += int(nbytes)
            if truncated:
                self.counters["chaos_truncated_blobs"] += 1

    def _lease_wire_locked(self, lease: Lease, blobs: Dict[str, str]) -> Dict:
        return {
            "id": lease.id,
            "ttl": self.lease_ttl,
            "heartbeat_seconds": self.heartbeat_seconds,
            "expires_at": lease.expires_at,
            "config": config_to_dict(lease.config),
            "cells": [
                {
                    "key": key,
                    "benchmark": benchmark,
                    "technique": technique,
                    "attempt": attempt,
                }
                for key, (benchmark, technique, attempt) in lease.cells.items()
            ],
            "blobs": {
                benchmark: blobs[benchmark]
                for benchmark in dict.fromkeys(
                    benchmark for benchmark, _, _ in lease.cells.values()
                )
                if benchmark in blobs
            },
        }

    # ------------------------------------------------------------------
    # lifecycle + stats
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop granting leases and wait for in-flight leases to settle
        (workers finish their cells and the results checkpoint).  Leases
        that outlive ``timeout`` stay journaled for the next server life.
        Returns True when every lease settled."""
        with self._lock:
            self._draining = True
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            self.check_expiry()
            with self._lock:
                if not self._leases:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    def stop(self) -> None:
        """Stop the monitor thread (idempotent)."""
        self._stop.set()
        if self._monitor.is_alive():
            self._monitor.join(timeout=10.0)

    def alive_workers(self) -> int:
        """How many workers are currently idle or busy (``/healthz``)."""
        with self._lock:
            return sum(
                1
                for worker in self._workers.values()
                if worker.state in ("idle", "busy")
            )

    def stats(self) -> Dict:
        """The ``fleet`` section of ``GET /v1/stats``."""
        with self._lock:
            states: Dict[str, int] = {}
            for worker in self._workers.values():
                states[worker.state] = states.get(worker.state, 0) + 1
            return {
                "lease_ttl": self.lease_ttl,
                "heartbeat_seconds": self.heartbeat_seconds,
                "lease_cells": self.lease_cells,
                "draining": self._draining,
                "workers": {
                    "registered": self.counters["workers_registered"],
                    "alive": states.get("idle", 0) + states.get("busy", 0),
                    "states": states,
                    "lost": self.counters["workers_lost"],
                },
                "leases": {
                    "active": len(self._leases),
                    "outstanding_cells": self._outstanding_locked(),
                    "granted": self.counters["leases_granted"],
                    "expired": self.counters["leases_expired"],
                    "recovered": self.counters["leases_recovered"],
                },
                "cells": {
                    "leased": self.counters["cells_leased"],
                    "completed": self.counters["cells_completed"],
                    "redispatched": self.counters["cells_redispatched"],
                    "duplicate_completions":
                        self.counters["duplicate_completions"],
                    "late_completions": self.counters["late_completions"],
                    "failed_reports": self.counters["failed_reports"],
                },
                "blobs": {
                    "served": self.counters["blobs_served"],
                    "bytes_served": self.counters["blob_bytes_served"],
                    "chaos_truncated": self.counters["chaos_truncated_blobs"],
                },
            }
