"""Chaos smoke gate for the worker fleet (``make fleet-smoke``).

Boots a real fleet-mode server (ephemeral port, embedded event loop),
submits a tiny sweep, and runs it across two genuine ``repro worker``
subprocesses -- one of which is configured, via ``REPRO_CHAOS=kill:1@1``,
to die without cleanup the moment it starts its first cell.  The gate
then requires the full robustness story to actually happen:

* the killed worker's lease expires and its cells **re-dispatch** (the
  ``redispatched`` counter in ``/v1/stats`` must move);
* the surviving worker finishes the sweep and the result is
  **bit-identical** to the same sweep run serially in this process --
  a crash plus a re-dispatch must not change a single byte;
* the dedup/duplicate counters are visible in ``/v1/stats``;
* the surviving worker, started with ``--once``, notices the fleet has
  nothing left and exits 0 on its own.

The whole run sits under a hard ``SIGALRM`` deadline so a wedged fleet
fails the gate loudly instead of hanging ``make check``.

Exit status: 0 on success, 1 on any mismatch or failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.harness.export import to_dict
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.service.client import ServiceClient
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer

HARD_DEADLINE_SECONDS = 300.0
BENCHMARKS = ("perlbench",)
TECHNIQUES = ("sampler", "rrip")
CONFIG = ExperimentConfig(scale=16, instructions=30_000, seed=1)
LEASE_TTL = 3.0
HEARTBEAT_SECONDS = 0.5
KILL_EXIT_CODE = 67


def _fail(message: str) -> int:
    print(f"fleet-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def _spawn_worker(url: str, name: str, root: Path, chaos: str = "") -> subprocess.Popen:
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if chaos:
        env["REPRO_CHAOS"] = chaos
    else:
        env.pop("REPRO_CHAOS", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", url, "--name", name, "--once",
            "--stream-cache", str(root / f"worker-streams-{name}"),
        ],
        env=env,
    )


def main() -> int:
    if hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"fleet-smoke exceeded its {HARD_DEADLINE_SECONDS}s deadline"
            )

        signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, HARD_DEADLINE_SECONDS)

    workers = []
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as tmp:
        root = Path(tmp)

        # Reference: the sweep exactly as `repro run` executes it, serially.
        serial = parallel_single_thread_comparison(
            WorkloadCache(CONFIG), list(TECHNIQUES), BENCHMARKS, jobs=1
        )
        expected = to_dict(serial)

        scheduler = ExperimentScheduler(
            job_store=root / "service",
            stream_cache=root / "streams",
            fleet=True,
            lease_ttl=LEASE_TTL,
            heartbeat_seconds=HEARTBEAT_SECONDS,
            lease_cells=2,
        )
        handle = ExperimentServer(scheduler, port=0).start_in_thread()
        try:
            url = f"http://127.0.0.1:{handle.port}"
            client = ServiceClient(url)
            health = client.healthz()
            if health.get("status") != "ok":
                return _fail(f"healthz: {health}")
            if "fleet_workers_alive" not in health:
                return _fail(f"healthz does not report the fleet: {health}")

            job = client.submit(
                client="fleet-smoke",
                benchmarks=list(BENCHMARKS), techniques=list(TECHNIQUES),
                sweep=True,
                config={
                    "scale": CONFIG.scale,
                    "instructions": CONFIG.instructions,
                    "seed": CONFIG.seed,
                    "cores": CONFIG.num_cores,
                },
            )

            # Worker A is chaos-rigged to die, kill -9 style, the moment
            # it starts its first cell.  Hold worker B back until A has
            # actually leased work, so the kill is guaranteed to orphan
            # cells rather than race B for them.
            victim = _spawn_worker(url, "victim", root, chaos="kill:1@1")
            workers.append(victim)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if client.stats()["fleet"]["cells"]["leased"] >= 1:
                    break
                time.sleep(0.1)
            else:
                return _fail("victim worker never leased a cell")
            victim_code = victim.wait(timeout=60.0)
            if victim_code != KILL_EXIT_CODE:
                return _fail(
                    f"victim exited {victim_code}, expected the chaos "
                    f"kill code {KILL_EXIT_CODE}"
                )

            survivor = _spawn_worker(url, "survivor", root)
            workers.append(survivor)

            final = client.wait(job["id"], timeout=HARD_DEADLINE_SECONDS)
            if final["state"] != "done":
                return _fail(
                    f"job finished {final['state']}: {final.get('error', '')}"
                )
            got = client.result(job["id"])
            if got != expected:
                return _fail(
                    "fleet sweep is not bit-identical to the serial sweep:\n"
                    f"fleet : {json.dumps(got, sort_keys=True)[:2000]}\n"
                    f"serial: {json.dumps(expected, sort_keys=True)[:2000]}"
                )

            stats = client.stats()
            fleet = stats.get("fleet")
            if not fleet:
                return _fail(f"/v1/stats has no fleet section: {stats}")
            if fleet["cells"]["redispatched"] < 1:
                return _fail(
                    "the kill did not cause a re-dispatch: "
                    f"{json.dumps(fleet, sort_keys=True)}"
                )
            for counter in ("duplicate_completions", "late_completions"):
                if counter not in fleet["cells"]:
                    return _fail(f"fleet stats missing {counter!r}: {fleet}")
            if fleet["workers"]["lost"] < 1 and fleet["leases"]["expired"] < 1:
                return _fail(
                    "neither a lost worker nor an expired lease recorded: "
                    f"{json.dumps(fleet, sort_keys=True)}"
                )

            survivor_code = survivor.wait(timeout=60.0)
            if survivor_code != 0:
                return _fail(f"survivor worker exited {survivor_code}")
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            handle.stop()

        print(
            "fleet-smoke: OK -- worker killed mid-lease, "
            f"{fleet['cells']['redispatched']} cell(s) re-dispatched, "
            "result bit-identical to serial "
            f"(duplicates={fleet['cells']['duplicate_completions']}, "
            f"late={fleet['cells']['late_completions']}), "
            "survivor drained and exited cleanly"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
