"""End-to-end smoke gate for pattern workloads (``make pattern-smoke``).

The workload-subsystem promise: a parameterized pattern spec like
``zipf(a=1.2)`` is a benchmark name everywhere -- ``repro submit``, the
scheduler's cell grid, the stream store, shared-memory fan-out -- with
results **bit-identical** to the serial harness path.  This gate proves
it end-to-end on a real server:

1. run a tiny two-point Zipf-skew sweep serially through the harness;
2. submit the same sweep over HTTP (parallel workers + stream store +
   shm) and require an identical result body;
3. re-submit and require full dedup (the spec's canonical identity is
   stable across submissions);
4. submit a misspelled family and require HTTP 400 with a closest-match
   suggestion (the service-side error satellite).

Sits under a hard ``SIGALRM`` deadline so a wedged server fails the
gate loudly instead of hanging ``make check``.

Exit status: 0 on success, 1 on any mismatch or failure.
"""

from __future__ import annotations

import json
import signal
import sys
import tempfile
from pathlib import Path

from repro.harness.export import to_dict
from repro.harness.parallel import parallel_single_thread_comparison
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer

HARD_DEADLINE_SECONDS = 300.0
BENCHMARKS = ("zipf(a=0.8)", "zipf(a=1.2)")
TECHNIQUES = ("sampler",)
CONFIG = ExperimentConfig(scale=32, instructions=20_000, seed=1)


def _fail(message: str) -> int:
    print(f"pattern-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    if hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"pattern-smoke exceeded its {HARD_DEADLINE_SECONDS}s deadline"
            )

        signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, HARD_DEADLINE_SECONDS)

    with tempfile.TemporaryDirectory(prefix="repro-pattern-smoke-") as tmp:
        root = Path(tmp)

        # Reference: the same pattern cells exactly as `repro run` would
        # execute them, serially, no store.
        serial = parallel_single_thread_comparison(
            WorkloadCache(CONFIG), list(TECHNIQUES), BENCHMARKS, jobs=1
        )
        expected = to_dict(serial)

        scheduler = ExperimentScheduler(
            job_store=root / "service",
            stream_cache=root / "streams",
            shared_memory=True,
            jobs=2,
        )
        handle = ExperimentServer(scheduler, port=0).start_in_thread()
        try:
            client = ServiceClient(f"http://127.0.0.1:{handle.port}")
            health = client.healthz()
            if health.get("status") != "ok":
                return _fail(f"healthz: {health}")

            spec = dict(
                benchmarks=list(BENCHMARKS), techniques=list(TECHNIQUES),
                sweep=True,
                config={
                    "scale": CONFIG.scale,
                    "instructions": CONFIG.instructions,
                    "seed": CONFIG.seed,
                    "cores": CONFIG.num_cores,
                },
            )
            job = client.submit(client="pattern-smoke", **spec)
            final = client.wait(job["id"], timeout=HARD_DEADLINE_SECONDS)
            if final["state"] != "done":
                return _fail(
                    f"job finished {final['state']}: {final.get('error', '')}"
                )
            got = client.result(job["id"])
            if got != expected:
                return _fail(
                    "pattern sweep over the service is not bit-identical to "
                    "the serial sweep:\n"
                    f"service: {json.dumps(got, sort_keys=True)[:2000]}\n"
                    f"serial : {json.dumps(expected, sort_keys=True)[:2000]}"
                )

            # The canonical spec is the dedup identity: an identical
            # resubmission must execute nothing.
            repeat = client.submit(client="pattern-smoke-again", **spec)
            if repeat["state"] != "done":
                repeat = client.wait(repeat["id"], timeout=10.0)
            if repeat["state"] != "done":
                return _fail(f"dedup resubmission finished {repeat['state']}")
            if repeat["dedup_cells"] != len(repeat["cells"]):
                return _fail(
                    "dedup resubmission executed cells: "
                    f"{repeat['dedup_cells']}/{len(repeat['cells'])} deduped"
                )
            if client.result(repeat["id"]) != expected:
                return _fail("dedup result differs from the original")

            # Unknown family -> 400 with a suggestion, not a 500.
            try:
                client.submit(
                    client="pattern-smoke-bad",
                    benchmarks=["zipg(a=1.2)"], techniques=["sampler"],
                    sweep=True,
                )
            except ServiceError as error:
                if getattr(error, "status", None) != 400:
                    return _fail(f"bad spec gave status {error}")
                if "zipf" not in str(error):
                    return _fail(
                        f"400 body lacks the closest-match suggestion: {error}"
                    )
            else:
                return _fail("misspelled family was accepted")
        finally:
            handle.stop()

        print(
            "pattern-smoke: OK -- zipf sweep over the service bit-identical "
            "to serial (store + shm), dedup total, bad spec 400s with a "
            "suggestion"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
