"""Experiment service: an async job server over the sweep harness.

One-shot CLI sweeps own the terminal that launched them; the service
turns the same machinery into a long-lived, multi-tenant dispatcher:

* :mod:`repro.service.jobs` -- the job model and its atomic on-disk
  store.  Jobs decompose into (benchmark, technique) *cells*
  content-addressed by the exact :mod:`repro.harness.checkpoint` key
  scheme, so a cell computed by anyone -- a CLI sweep, another client's
  job, a previous server life -- satisfies every later submission
  instantly (result dedup, the service-level analogue of the compiled
  workload store).
* :mod:`repro.service.scheduler` -- the deduplicating scheduler: a
  bounded priority queue with fair-share across clients, draining into
  the supervised process pool from :mod:`repro.harness.faults`
  (``REPRO_JOBS`` workers, per-cell deadlines, retries) with the PR 4
  warm-store/shared-memory fan-out, and graceful drain on shutdown.
* :mod:`repro.service.server` -- a stdlib-only ``asyncio.start_server``
  HTTP/1.1 front end (``POST /v1/jobs``, streamed NDJSON progress,
  ``/v1/stats``, ...).
* :mod:`repro.service.client` -- the blocking client SDK behind
  ``repro submit`` / ``repro jobs`` / ``repro serve``, with bounded
  retry (exponential backoff + jitter) on transient failures.
* :mod:`repro.service.fleet` / :mod:`repro.service.worker` -- the
  fault-tolerant worker fleet (``repro serve --fleet`` + ``repro
  worker``): lease-based dispatch with heartbeats, expiry re-dispatch,
  a write-ahead lease journal, and digest-addressed blob transfer.

Results served through the service are bit-identical to ``make``-driven
sweeps; ``tests/test_service_http.py`` pins the golden equality and
``make serve-smoke`` re-checks it end-to-end on every ``make check``.
See docs/service.md.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.fleet import FleetCoordinator
from repro.service.jobs import Job, JobStore, QueueFull, cell_key
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer, serve
from repro.service.worker import FleetWorker

__all__ = [
    "ExperimentScheduler",
    "ExperimentServer",
    "FleetCoordinator",
    "FleetWorker",
    "Job",
    "JobStore",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "cell_key",
    "serve",
]
