"""The fleet worker: ``repro worker --connect URL``.

A worker is a plain process that registers with a fleet-mode server,
pulls cell batches under time-bounded leases, executes them through
:func:`repro.harness.parallel._run_cell_on` -- the *same* single code
path every CLI sweep and local service batch uses, which is what keeps
fleet results bit-identical -- and posts each result back as it
finishes.  Fleet-level parallelism comes from running many workers;
within one worker, cells run serially, so a worker is cheap, crashable,
and trivially reasoned about.

Resilience, per docs/robustness.md's fleet failure taxonomy:

* **Reconnect.**  Registration and every poll retries with exponential
  backoff plus jitter, so a restarting server gets a ragged (not
  thundering) herd of returning workers.  A server that forgot us
  (restart without our lease in the journal) answers 404; the worker
  just re-registers under a fresh id.
* **Heartbeats.**  A daemon thread renews active leases every
  ``heartbeat_seconds`` (as told by the server).  The renewal response
  lists lease ids the server no longer recognizes -- our lease expired
  and was re-dispatched while we stalled -- and the worker *abandons*
  those cells immediately rather than racing the replacement worker
  (the race would be harmless, just wasted: completions settle
  idempotently).
* **Blob acquisition.**  Each lease names the stream-blob digest per
  benchmark.  The worker tries its local store, then fetches by digest
  from the server with bounded retry -- a torn or truncated transfer
  is detected by decode + sha256 verification and retried -- and
  finally falls back to compiling the workload locally.  Every tier
  yields bit-identical replay.
* **Graceful drain.**  ``stop()`` (SIGTERM/SIGINT in the CLI) finishes
  the cell in progress, deregisters -- which requeues the rest of the
  lease server-side without waiting for the TTL -- and exits.

Chaos (``REPRO_CHAOS``, :class:`repro.harness.faults.ChaosSpec`)
deterministically injects ``kill`` (exit before a cell), ``slow``
(stall past the lease TTL, forcing split-brain re-dispatch), and
``heartbeat`` (skip renewals) at the exact points a real fleet fails.
"""

from __future__ import annotations

import base64
import os
import random
import threading
import time
from typing import Dict, Optional, Set, Union

from repro.harness.checkpoint import result_to_wire
from repro.harness.faults import ChaosSpec, cell_label
from repro.harness.parallel import _run_cell_on
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.sim.streamstore import CompiledWorkload, StreamStore
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import config_from_dict

__all__ = ["FleetWorker"]

_KILL_EXIT_CODE = 67  # distinct from REPRO_FAULT_INJECT's 66


class FleetWorker:
    """One fleet worker process (or thread, in tests).

    Args:
        url: fleet-mode service base URL.
        name: worker name for the registry (default: host+pid).
        stream_cache: local compiled-workload store directory or
            :class:`StreamStore` (None defers to ``REPRO_STREAM_CACHE``;
            without one, fetched blobs live only in memory).
        max_cells: cap on cells per lease request (None = server's).
        once: exit when the queue is empty and no leases are
            outstanding fleet-wide, instead of polling forever.
        poll_seconds: idle re-poll override (None = server's hint).
        client: injected :class:`ServiceClient` (tests).
    """

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        stream_cache: Union[StreamStore, str, os.PathLike, None] = None,
        max_cells: Optional[int] = None,
        once: bool = False,
        poll_seconds: Optional[float] = None,
        client: Optional[ServiceClient] = None,
        reconnect_base: float = 0.2,
        reconnect_cap: float = 10.0,
        blob_retries: int = 3,
    ) -> None:
        self.client = client if client is not None else ServiceClient(url)
        self.name = name or f"{os.uname().nodename}-{os.getpid()}"
        if isinstance(stream_cache, StreamStore):
            self.stream_store: Optional[StreamStore] = stream_cache
        else:
            self.stream_store = StreamStore.from_env(stream_cache)
        self.max_cells = max_cells
        self.once = once
        self.poll_seconds = poll_seconds
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.blob_retries = int(blob_retries)
        self.chaos = ChaosSpec.from_env()
        self.worker_id: Optional[str] = None
        self.lease_ttl = 60.0
        self.heartbeat_seconds = 5.0
        self.stats = {
            "cells_completed": 0,
            "cells_failed": 0,
            "leases_processed": 0,
            "leases_abandoned": 0,
            "blob_local_hits": 0,
            "blob_fetches": 0,
            "blob_torn_transfers": 0,
            "blob_fallback_compiles": 0,
            "heartbeats_sent": 0,
            "heartbeats_chaos_dropped": 0,
            "reconnects": 0,
        }
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._active_leases: Set[str] = set()
        self._abandoned: Set[str] = set()
        self._reregister = threading.Event()
        self._caches: Dict[ExperimentConfig, WorkloadCache] = {}
        self._rng = random.Random()
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request a graceful drain: finish the current cell, deregister,
        exit.  Safe from signal handlers and other threads."""
        self._stop.set()

    def run(self) -> int:
        """Blocking main loop; returns a process exit code."""
        try:
            while not self._stop.is_set():
                if self.worker_id is None or self._reregister.is_set():
                    if not self._register_with_backoff():
                        break  # stop() while reconnecting
                response = self._poll_lease()
                if response is None:
                    continue  # transport trouble handled inside
                lease = response.get("lease")
                if lease is not None:
                    self._process_lease(lease)
                    continue
                if response.get("draining") and self.once:
                    break
                if (
                    self.once
                    and not response.get("draining")
                    and int(response.get("outstanding", 0)) == 0
                ):
                    break  # fleet-wide: nothing queued, nothing leased
                self._sleep(
                    self.poll_seconds
                    if self.poll_seconds is not None
                    else float(response.get("retry_seconds", 1.0))
                )
        finally:
            self._shutdown()
        return 0

    def _shutdown(self) -> None:
        self._stop.set()
        if self._hb_thread is not None and self._hb_thread.is_alive():
            self._hb_thread.join(timeout=self.heartbeat_seconds + 5.0)
        if self.worker_id is not None:
            try:
                self.client.fleet_deregister(self.worker_id)
            except (ServiceError, OSError):
                pass  # server gone or already forgot us; leases expire
            self.worker_id = None

    # ------------------------------------------------------------------
    # registration + transport resilience
    # ------------------------------------------------------------------
    def _backoff(self, failures: int) -> float:
        """Exponential backoff with jitter: full delay in
        ``[0.5, 1.0] * base * 2**failures``, capped."""
        delay = min(self.reconnect_cap, self.reconnect_base * (2.0 ** failures))
        return delay * (0.5 + self._rng.random() / 2.0)

    def _register_with_backoff(self) -> bool:
        failures = 0
        while not self._stop.is_set():
            try:
                grant = self.client.fleet_register(
                    name=self.name, pid=os.getpid()
                )
            except (ServiceError, OSError) as exc:
                self.stats["reconnects"] += 1
                self._sleep(self._backoff(failures))
                failures = min(failures + 1, 16)
                if failures == 1:
                    print(
                        f"[worker {self.name}] cannot reach server "
                        f"({exc}); retrying with backoff",
                        flush=True,
                    )
                continue
            self.worker_id = grant["worker_id"]
            self.lease_ttl = float(grant.get("lease_ttl", self.lease_ttl))
            self.heartbeat_seconds = float(
                grant.get("heartbeat_seconds", self.heartbeat_seconds)
            )
            self._reregister.clear()
            if self._hb_thread is None:
                self._hb_thread = threading.Thread(
                    target=self._heartbeat_loop,
                    name=f"repro-worker-hb-{self.name}",
                    daemon=True,
                )
                self._hb_thread.start()
            return True
        return False

    def _poll_lease(self) -> Optional[Dict]:
        try:
            return self.client.fleet_lease(
                self.worker_id, max_cells=self.max_cells
            )
        except ServiceError as exc:
            if exc.status == 404:
                # Server restarted and does not know us: re-register.
                self.worker_id = None
                return None
            self._sleep(self._backoff(0))
            return None
        except OSError:
            self.stats["reconnects"] += 1
            self._sleep(self._backoff(1))
            return None

    def _sleep(self, seconds: float) -> None:
        self._stop.wait(timeout=max(0.0, seconds))

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(timeout=self.heartbeat_seconds):
            worker_id = self.worker_id
            if worker_id is None:
                continue
            self._hb_seq += 1
            if self.chaos.fires("heartbeat", self.name, self._hb_seq):
                self.stats["heartbeats_chaos_dropped"] += 1
                continue
            with self._state_lock:
                lease_ids = sorted(self._active_leases)
            try:
                response = self.client.fleet_heartbeat(worker_id, lease_ids)
            except ServiceError as exc:
                if exc.status == 404:
                    self._reregister.set()
                continue
            except OSError:
                continue  # main loop owns reconnect policy
            self.stats["heartbeats_sent"] += 1
            unknown = response.get("unknown_leases") or ()
            if unknown:
                # Split-brain: those leases expired and re-dispatched.
                # Abandon their remaining cells -- the replacement
                # worker owns them now.
                with self._state_lock:
                    self._abandoned.update(unknown)

    # ------------------------------------------------------------------
    # lease execution
    # ------------------------------------------------------------------
    def _process_lease(self, lease: Dict) -> None:
        lease_id = lease["id"]
        with self._state_lock:
            self._active_leases.add(lease_id)
        try:
            config = config_from_dict(lease.get("config"))
            cache = self._cache_for(config, lease.get("blobs") or {})
            for cell in lease.get("cells", ()):
                with self._state_lock:
                    if lease_id in self._abandoned:
                        self.stats["leases_abandoned"] += 1
                        break
                if self._stop.is_set():
                    break  # graceful drain: deregister requeues the rest
                self._execute_cell(lease_id, config, cache, cell)
            self.stats["leases_processed"] += 1
        finally:
            with self._state_lock:
                self._active_leases.discard(lease_id)
                self._abandoned.discard(lease_id)

    def _execute_cell(
        self,
        lease_id: str,
        config: ExperimentConfig,
        cache: WorkloadCache,
        cell: Dict,
    ) -> None:
        benchmark = cell["benchmark"]
        technique = cell.get("technique")
        attempt = int(cell.get("attempt", 1))
        label = cell_label((benchmark, technique))
        if self.chaos.fires("slow", label, attempt):
            # Stall past the lease TTL *before* computing: the lease
            # expires and re-dispatches while we are still alive --
            # the split-brain case -- then we finish anyway and our
            # completion lands late or duplicate.
            self._sleep(self.lease_ttl * 1.5)
        if self.chaos.fires("kill", label, attempt):
            os._exit(_KILL_EXIT_CODE)  # simulated OOM kill: no cleanup
        wall = time.perf_counter()
        cpu = time.process_time()
        try:
            result = _run_cell_on(cache, (benchmark, technique))
        except Exception as exc:
            self.stats["cells_failed"] += 1
            self._post_completion(
                lease_id, cell, status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        timing = {
            "wall_seconds": time.perf_counter() - wall,
            "cpu_seconds": time.process_time() - cpu,
        }
        payload = base64.b64encode(result_to_wire(result)).decode("ascii")
        self.stats["cells_completed"] += 1
        self._post_completion(
            lease_id, cell, status="ok", result=payload, timing=timing
        )

    def _post_completion(
        self,
        lease_id: str,
        cell: Dict,
        status: str,
        result: Optional[str] = None,
        error: str = "",
        timing: Optional[Dict[str, float]] = None,
    ) -> None:
        try:
            self.client.fleet_complete(
                self.worker_id, lease_id, cell["key"], status,
                result=result, error=error, timing=timing,
            )
        except (ServiceError, OSError) as exc:
            # The result is lost only to *this* lease: the lease will
            # expire and the cell re-dispatches (or, if the checkpoint
            # write landed, dedups).  Nothing to retry beyond what the
            # client's own backoff already did.
            print(
                f"[worker {self.name}] completion for "
                f"{cell_label((cell['benchmark'], cell.get('technique')))} "
                f"not delivered ({exc}); lease expiry will re-dispatch",
                flush=True,
            )

    # ------------------------------------------------------------------
    # blob acquisition
    # ------------------------------------------------------------------
    def _cache_for(
        self, config: ExperimentConfig, blobs: Dict[str, str]
    ) -> WorkloadCache:
        cache = self._caches.get(config)
        if cache is None:
            cache = WorkloadCache(config, stream_store=self.stream_store)
            self._caches[config] = cache
        for benchmark, digest in blobs.items():
            if benchmark in cache.compiled_streams:
                continue
            # Derive the key exactly as the coordinator did (v2 format,
            # canonical-spec digest folded in).  A spec that cannot
            # resolve on this machine (e.g. a trace(...) workload with
            # no local trace library) still fetches by digest below --
            # store_raw verifies content against the digest itself.
            try:
                local_key = cache.workload_key(benchmark, config.instructions)
            except Exception:
                local_key = None
            if (
                local_key is not None
                and StreamStore.digest_for_key(local_key) != digest
            ):
                continue  # geometry/format/content skew: compile locally
            if self.stream_store is not None and local_key is not None:
                local = self.stream_store.load(local_key)
                if local is not None:
                    self.stats["blob_local_hits"] += 1
                    cache.compiled_streams[benchmark] = local
                    continue
            fetched = self._fetch_blob(digest, benchmark)
            if fetched is not None:
                cache.compiled_streams[benchmark] = fetched
            else:
                self.stats["blob_fallback_compiles"] += 1
        return cache

    def _fetch_blob(
        self, digest: str, benchmark: str
    ) -> Optional[CompiledWorkload]:
        """Fetch one blob by digest with bounded retry and torn-transfer
        detection; None means every attempt failed (caller falls back to
        a local compile)."""
        for attempt in range(1, self.blob_retries + 1):
            try:
                raw = self.client.fetch_blob(digest, attempt=attempt)
            except (ServiceError, OSError) as exc:
                if isinstance(exc, ServiceError) and exc.status == 404:
                    return None  # server does not have it; do not hammer
                self._sleep(self._backoff(attempt - 1))
                continue
            try:
                self.stats["blob_fetches"] += 1
                if self.stream_store is not None:
                    # Verifies decode + digest, persists for next time.
                    return self.stream_store.store_raw(raw, digest)
                compiled = CompiledWorkload.from_buffer(raw)
                if StreamStore.digest_for_key(compiled.key) != digest:
                    raise ValueError("blob key does not hash to its digest")
                return compiled
            except ValueError as exc:
                self.stats["blob_torn_transfers"] += 1
                print(
                    f"[worker {self.name}] torn blob transfer for "
                    f"{benchmark} (attempt {attempt}/{self.blob_retries}): "
                    f"{exc}",
                    flush=True,
                )
                self._sleep(self._backoff(attempt - 1))
        return None
