"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info`` -- package, machine, suite, and technique summary.
* ``run BENCHMARK [TECHNIQUE ...]`` -- quick single-benchmark comparison.
* ``suite [TECHNIQUE ...]`` -- the full 19-benchmark Figure 4/5 run.
* ``telemetry BENCHMARK [TECHNIQUE]`` -- per-epoch time series of one
  run, dumped as NDJSON/CSV (``--ndjson`` / ``--csv``) or rendered as a
  sparkline table.
* ``loadsim`` -- service-level latency under open-loop tenant load on
  the shared LLC: p50/p95/p99 request latency, per-tenant MPKI,
  throughput, and fairness for each technique, fully deterministic
  under a fixed seed (docs/loadsim.md).
* ``report --timeseries [BENCHMARK ...]`` -- sparkline phase report
  across benchmarks (docs/observability.md).
* ``report --bench`` -- tabulate the committed BENCH_PR*.json
  performance baselines (replay substrate, workload store, array
  kernel).
* ``profile BENCHMARK`` -- reuse-distance profile of a workload.
* ``cache`` -- inspect or prune the compiled workload store
  (``--footprint`` / ``--evict`` / ``--clear``).
* ``storage`` / ``power`` -- print Tables I and II.
* ``serve`` -- run the experiment job service (docs/service.md); with
  ``--fleet``, dispatch cells to remote ``repro worker`` processes under
  time-bounded leases instead of a local process pool.
* ``worker`` -- join a fleet-mode service: pull leased cell batches,
  execute them, post results; survives server restarts and its own
  crashes (the lease re-dispatches).
* ``submit`` -- submit a cell or sweep to a running service and
  optionally wait for / stream / export its result.
* ``jobs`` -- list, inspect, or cancel service jobs; show ``/v1/stats``.

All commands respect the ``REPRO_SCALE`` / ``REPRO_INSTRUCTIONS`` /
``REPRO_SEED`` / ``REPRO_CORES`` environment variables.  ``run`` and
``suite`` additionally honor ``REPRO_JOBS`` (or ``--jobs N``) to fan the
(benchmark, technique) cells over worker processes; results are
bit-identical to a serial run (see docs/performance.md).

Long sweeps are fault-tolerant (see docs/robustness.md):
``--checkpoint-dir DIR`` (or ``REPRO_CHECKPOINT_DIR``) persists each
completed cell, ``--resume`` restarts an interrupted sweep from its last
completed cell, and ``--allow-partial`` renders whatever completed plus
a failure report instead of aborting when cells fail unrecoverably.
Per-cell timeouts and retries come from ``REPRO_CELL_TIMEOUT`` /
``REPRO_CELL_RETRIES`` / ``REPRO_RETRY_BACKOFF``.

Sweep observability (docs/observability.md): ``--events-file FILE`` (or
``REPRO_EVENTS_FILE``) streams NDJSON progress events, ``--progress``
(or ``REPRO_PROGRESS``) renders them live on stderr, and ``--manifest
FILE`` (or ``REPRO_MANIFEST``; defaults next to the checkpoint store)
records the run's config/seed/git/env provenance with per-cell timings.

Sweep throughput (docs/performance.md): ``--stream-cache DIR`` (or
``REPRO_STREAM_CACHE``) persists compiled workloads in a
content-addressed store so repeated runs and worker processes skip
trace generation and L1/L2 filtering; ``--shm`` (or ``REPRO_SHM``)
additionally fans the compiled workloads out to workers zero-copy via
shared memory.  Both are pure performance levers -- results stay
bit-identical.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.cache import CacheGeometry
from repro.harness import (
    ExperimentConfig,
    SINGLE_THREAD_TECHNIQUES,
    TECHNIQUES,
    WorkloadCache,
    format_table,
    parallel_single_thread_comparison,
)
from repro.power import predictor_power_table, storage_table
from repro.workloads import ALL_BENCHMARKS, MIXES, SINGLE_THREAD_SUBSET


def _cmd_info(args) -> int:
    config = ExperimentConfig.from_env()
    print(f"repro {__version__} -- Sampling Dead Block Prediction for "
          f"Last-Level Caches (MICRO-43, 2010)")
    print(f"configuration: {config.describe()}")
    print()
    from repro.workloads import PATTERN_FAMILIES

    print(f"benchmarks ({len(ALL_BENCHMARKS)}): {', '.join(ALL_BENCHMARKS)}")
    print(f"single-thread subset ({len(SINGLE_THREAD_SUBSET)}): "
          f"{', '.join(SINGLE_THREAD_SUBSET)}")
    print(f"pattern families ({len(PATTERN_FAMILIES)}): "
          f"{', '.join(sorted(PATTERN_FAMILIES))} "
          "-- parameterized specs like 'zipf(a=1.2,seed=7)' work "
          "anywhere a benchmark name does (docs/workloads.md)")
    print(f"multicore mixes: {', '.join(MIXES)} "
          "(or ad-hoc: 'mcf+hmmer+zipf(a=1.4)+seq')")
    print()
    print("techniques (Table V):")
    for technique in TECHNIQUES.values():
        print(f"  {technique.key:16s} {technique.description}")
    return 0


def _comparison(config, technique_keys, benchmarks, jobs=None,
                checkpoint_dir=None, resume=False, allow_partial=False,
                events_file=None, progress=None, manifest=None,
                command="run", stream_cache=None, shm=None):
    cache = WorkloadCache(config)
    comparison = parallel_single_thread_comparison(
        cache, technique_keys, benchmarks, jobs=jobs,
        checkpoint=checkpoint_dir, resume=resume,
        allow_partial=allow_partial or None,
        events_file=events_file, progress=progress,
        manifest_path=manifest, command=command,
        stream_cache=stream_cache, shared_memory=shm,
    )
    if comparison.is_partial:
        print(comparison.failure_report())
        print()
        done = [b for b in comparison.benchmarks if b in comparison.baseline
                and set(technique_keys) <= set(comparison.results[b])]
        comparison = _restrict(comparison, done)
        if not comparison.benchmarks:
            print("no benchmark completed every technique; nothing to render")
            return 1
    labels = [TECHNIQUES[key].label for key in technique_keys]
    print(format_table(
        ["benchmark"] + labels,
        comparison.mpki_rows(),
        title="LLC misses normalized to LRU",
    ))
    speed_keys = [k for k in technique_keys if TECHNIQUES[k].timing_meaningful]
    if speed_keys:
        print()
        print(format_table(
            ["benchmark"] + [TECHNIQUES[k].label for k in speed_keys],
            comparison.speedup_rows(technique_keys=speed_keys),
            title="Speedup over LRU",
        ))
    return 0


def _restrict(comparison, benchmarks):
    """A comparison narrowed to fully-completed benchmarks (partial
    sweeps render the cells they have rather than crashing)."""
    from repro.harness import SingleThreadComparison

    return SingleThreadComparison(
        benchmarks=tuple(benchmarks),
        technique_keys=comparison.technique_keys,
        baseline={b: comparison.baseline[b] for b in benchmarks},
        results={b: comparison.results[b] for b in benchmarks},
        failures=comparison.failures,
    )


def _parse_techniques(names) -> list:
    from repro.harness.techniques import validate_techniques

    keys = list(names) or list(SINGLE_THREAD_TECHNIQUES)
    bad = validate_techniques(keys)
    if bad:
        raise SystemExit("; ".join(bad))
    return keys


def _check_workload(name: str) -> str:
    """Validate a workload name / pattern spec, exiting with the
    registry and a closest-match suggestion when it does not resolve."""
    from repro.workloads import validate_workloads

    bad = validate_workloads([name])
    if bad:
        raise SystemExit("; ".join(bad))
    return name


def _cmd_run(args) -> int:
    _check_workload(args.benchmark)
    return _comparison(
        ExperimentConfig.from_env(),
        _parse_techniques(args.techniques),
        (args.benchmark,),
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        allow_partial=args.allow_partial,
        events_file=args.events_file,
        progress=args.progress or None,
        manifest=args.manifest,
        command="run",
        stream_cache=args.stream_cache,
        shm=args.shm or None,
    )


def _cmd_suite(args) -> int:
    config = ExperimentConfig.from_env()
    print(f"running the {len(SINGLE_THREAD_SUBSET)}-benchmark subset on "
          f"{config.describe()}; expect a few minutes...\n")
    return _comparison(config, _parse_techniques(args.techniques),
                       SINGLE_THREAD_SUBSET, jobs=args.jobs,
                       checkpoint_dir=args.checkpoint_dir,
                       resume=args.resume,
                       allow_partial=args.allow_partial,
                       events_file=args.events_file,
                       progress=args.progress or None,
                       manifest=args.manifest,
                       command="suite",
                       stream_cache=args.stream_cache,
                       shm=args.shm or None)


def _timeseries(config, benchmark, technique_key, epochs, accuracy=True):
    from repro.harness import timeseries_experiment

    _check_workload(benchmark)
    _parse_techniques([technique_key])
    cache = WorkloadCache(config)
    return timeseries_experiment(
        cache, benchmark, technique_key, epochs=epochs, accuracy=accuracy
    )


def _cmd_telemetry(args) -> int:
    from repro.telemetry import render_report, write_csv, write_ndjson

    result = _timeseries(
        ExperimentConfig.from_env(), args.benchmark, args.technique,
        args.epochs, accuracy=not args.no_accuracy,
    )
    recorder = result.recorder
    if args.ndjson:
        write_ndjson(recorder, args.ndjson)
        print(f"wrote {len(recorder.samples)} epochs to {args.ndjson} (NDJSON)")
    if args.csv:
        write_csv(recorder, args.csv)
        print(f"wrote {len(recorder.samples)} epochs to {args.csv} (CSV)")
    if not args.ndjson and not args.csv:
        print(render_report(recorder))
    return 0


def _render_substrate(s) -> str:
    return (
        "    replay substrate: "
        f"{s['before_acc_per_sec'] / 1e6:.2f}M/s -> "
        f"{s['after_acc_per_sec'] / 1e6:.2f}M/s "
        f"({s['speedup']:.2f}x over the pre-PR1 engine, "
        f"{s['accesses']} accesses)"
    )


def _render_store(s) -> str:
    return (
        "    workload store:   "
        f"cold {s['cold_seconds']:.2f}s, "
        f"warm {s['warm_speedup']:.1f}x, "
        f"shm {s['shm_speedup']:.1f}x "
        f"({s['store_bytes'] / 1e6:.1f} MB on disk)"
    )


def _render_array_kernel(s) -> str:
    speedup = s.get("speedup")
    shown = "n/a" if speedup is None else f"{speedup:.2f}x"
    return (
        "    array kernel:     "
        f"{s['object_acc_per_sec'] / 1e6:.2f}M/s -> "
        f"{s['array_acc_per_sec'] / 1e6:.2f}M/s "
        f"({shown} over the object kernel on eligible cells, "
        f"{s['accesses']} accesses)"
    )


def _render_sampler_kernel(s) -> str:
    speedup = s.get("speedup")
    shown = "n/a" if speedup is None else f"{speedup:.2f}x"
    return (
        "    sampler kernel:   "
        f"{s['object_acc_per_sec'] / 1e6:.2f}M/s -> "
        f"{s['array_acc_per_sec'] / 1e6:.2f}M/s "
        f"({shown} over the object kernel on the DBRB cells, "
        f"{s['accesses']} accesses)"
    )


def _render_patterns(s) -> str:
    return (
        "    pattern workloads: "
        f"generate {s['generate_rec_per_sec'] / 1e6:.2f}M rec/s, "
        f"trace import {s['import_rec_per_sec'] / 1e6:.2f}M rec/s, "
        f"replay {s['replay_rec_per_sec'] / 1e6:.2f}M rec/s "
        f"({s['records']} records)"
    )


def _render_loadsim_bench(s) -> str:
    return (
        "    load simulator:   "
        f"{s['events_per_sec'] / 1e3:.1f}k events/s "
        f"({s['events']} events, {s['requests']} requests; "
        f"p99 {s['p99_latency']:.0f}cy, "
        f"digest {str(s['event_log_digest'])[:12]})"
    )


#: BENCH_PR*.json section -> renderer for ``report --bench``.
_BENCH_SECTIONS = (
    ("substrate", _render_substrate),
    ("store", _render_store),
    ("array_kernel", _render_array_kernel),
    ("sampler_kernel", _render_sampler_kernel),
    ("patterns", _render_patterns),
    ("loadsim", _render_loadsim_bench),
)


def _render_bench_baselines() -> int:
    """Tabulate the committed BENCH_PR*.json baselines (repo root).

    Baselines accrue one file per PR and old files never grow new
    sections, so missing sections are normal; a *partial* section
    (present but lacking expected fields -- e.g. a baseline written by
    an older bench harness) is skipped with a note instead of crashing
    the whole report.
    """
    import json
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    paths = sorted(root.glob("BENCH_PR*.json"))
    if not paths:
        print(f"no BENCH_PR*.json baselines under {root}")
        return 1
    print(f"bench baselines ({root}):")
    for path in paths:
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"  {path.name:16s} unreadable: {exc}")
            continue
        if not isinstance(report, dict):
            print(f"  {path.name:16s} not a bench report object; skipped")
            continue
        config = report.get("config") or {}
        if not isinstance(config, dict):
            config = {}
        print(
            f"  {path.name:16s} {report.get('schema', '?'):22s} "
            f"scale=1/{config.get('scale', '?')} "
            f"instructions={config.get('instructions', '?')}"
        )
        for key, render in _BENCH_SECTIONS:
            section = report.get(key)
            total = section.get("total") if isinstance(section, dict) else None
            if not isinstance(total, dict):
                continue
            try:
                print(render(total))
            except (KeyError, TypeError, ValueError) as exc:
                print(
                    f"    {key}: partial section in {path.name} "
                    f"({exc.__class__.__name__}: {exc}); skipped"
                )
    return 0


def _cmd_loadsim(args) -> int:
    """``loadsim``: service-level latency under open-loop tenant load."""
    from repro.harness import loadsim_experiment
    from repro.loadsim import (
        LoadScenario,
        resolve_tenant_specs,
        write_csv,
        write_ndjson,
    )
    from repro.harness.techniques import validate_techniques

    try:
        tenants = resolve_tenant_specs(args.tenants, args.arrival)
    except ValueError as exc:
        raise SystemExit(f"loadsim: {exc}")
    for spec in tenants:
        _check_workload(spec.workload)
    keys = list(args.technique) or ["sampler", "lru"]
    bad = validate_techniques(keys)
    if bad:
        raise SystemExit("; ".join(bad))
    if "optimal" in keys:
        raise SystemExit(
            "loadsim: the optimal policy needs the full future access "
            "stream; a live load simulation cannot provide one"
        )
    config = ExperimentConfig.from_env()
    try:
        scenario = LoadScenario(
            tenants=tenants,
            duration=args.duration,
            seed=args.seed,
            ops=args.ops,
            epochs=args.epochs,
        )
    except ValueError as exc:
        raise SystemExit(f"loadsim: {exc}")
    print(f"load simulation on {config.describe()}")
    print(f"scenario: {scenario.describe()}\n")
    comparison = loadsim_experiment(WorkloadCache(config), scenario, keys)
    rows = comparison.rows()
    print(format_table(
        rows[0], rows[1:],
        title="Request latency under load (cycles)",
    ))
    print()
    tenant_rows = comparison.tenant_rows()
    print(format_table(
        tenant_rows[0], tenant_rows[1:], title="Per-tenant behaviour",
    ))
    for key in keys:
        digest = comparison.results[key].event_log_digest()
        print(f"{key}: event log digest {digest}")

    def _outputs(base: str):
        """One output path per technique (suffix the key when several)."""
        if len(keys) == 1:
            return [(keys[0], base)]
        stem, dot, ext = base.rpartition(".")
        if not dot:
            return [(key, f"{base}.{key}") for key in keys]
        return [(key, f"{stem}.{key}.{ext}") for key in keys]

    if args.ndjson:
        for key, path in _outputs(args.ndjson):
            write_ndjson(comparison.results[key], path)
            print(f"wrote {key} run to {path} (NDJSON)")
    if args.csv:
        for key, path in _outputs(args.csv):
            write_csv(comparison.results[key], path)
            print(f"wrote {key} tenant table to {path} (CSV)")
    return 0


def _cmd_pattern_sweep(args) -> int:
    """``report --pattern-sweep``: DBRB on/off along a workload axis."""
    from repro.harness import pattern_axis, pattern_sweep_experiment, zipf_skew_axis

    if args.benchmarks:
        specs = [_check_workload(name) for name in args.benchmarks]
    elif args.param or args.family != "zipf":
        values = []
        for raw in (args.values or "0.6,0.9,1.2,1.5").split(","):
            raw = raw.strip()
            try:
                values.append(int(raw) if "." not in raw else float(raw))
            except ValueError:
                raise SystemExit(f"--values: not a number: {raw!r}")
        specs = pattern_axis(args.family, args.param or "a", values)
        for spec in specs:
            _check_workload(spec)
    else:
        raw_values = args.values
        if raw_values:
            values = [float(v) for v in raw_values.split(",")]
            specs = zipf_skew_axis(values)
        else:
            specs = zipf_skew_axis()
    config = ExperimentConfig.from_env()
    print(f"pattern sweep on {config.describe()}")
    result = pattern_sweep_experiment(WorkloadCache(config), specs)
    rows = result.rows()
    print(format_table(
        rows[0], rows[1:],
        title="DBRB (sampler) vs LRU along the workload axis",
    ))
    return 0


def _cmd_report(args) -> int:
    from repro.telemetry import render_report

    if args.bench:
        return _render_bench_baselines()
    if args.pattern_sweep:
        return _cmd_pattern_sweep(args)
    if not args.timeseries:
        raise SystemExit(
            "report: pass --timeseries, --bench, or --pattern-sweep"
        )
    config = ExperimentConfig.from_env()
    benchmarks = args.benchmarks or list(SINGLE_THREAD_SUBSET[:3])
    first = True
    for benchmark in benchmarks:
        result = _timeseries(config, benchmark, args.technique, args.epochs)
        if not first:
            print()
        first = False
        print(render_report(result.recorder))
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis import profile_trace
    from repro.workloads import build_trace

    _check_workload(args.benchmark)
    config = ExperimentConfig.from_env()
    machine = config.machine()
    trace = build_trace(
        args.benchmark, config.instructions, machine.llc.size_bytes,
        seed=config.seed,
    )
    profile = profile_trace(
        trace, llc_reach=machine.llc.num_blocks, block_bits=6
    )
    print(profile.summary())
    print()
    llc_blocks = machine.llc.num_blocks
    print(f"est. fully-assoc. LRU hit fraction @ LLC capacity "
          f"({llc_blocks:,} blocks): {profile.hit_fraction(llc_blocks):.1%}")
    return 0


def _cmd_trace(args) -> int:
    """``trace import FILE`` / ``trace list``: the external trace library."""
    from repro.workloads import TraceLibrary

    library = TraceLibrary(args.lib)
    if args.trace_command == "import":
        try:
            entry = library.import_file(args.file, name=args.name)
        except (OSError, ValueError) as error:
            raise SystemExit(f"trace import: {error}")
        name = args.name
        if name is None:
            # import_file keyed the entry by the trace's embedded name.
            name = next(
                n for n, e in library.entries().items()
                if e["digest"] == entry["digest"] and e["source"] == entry["source"]
            )
        print(f"imported {args.file} into {library.root}")
        print(f"  name:         {name}")
        print(f"  digest:       {entry['digest']}")
        print(f"  records:      {entry['records']}")
        print(f"  instructions: {entry['instructions']}")
        print(f"  replay spec:  trace({name})   "
              f"(loops: trace({name},loop=true))")
        return 0
    try:
        entries = library.entries()
    except ValueError as error:
        raise SystemExit(f"trace list: {error}")
    if not entries:
        print(f"trace library {library.root} is empty "
              "(populate it with `repro trace import FILE`)")
        return 0
    print(f"trace library {library.root} ({len(entries)} traces):")
    for name in sorted(entries):
        entry = entries[name]
        print(f"  {name:24s} {str(entry['digest'])[:16]}  "
              f"{entry['records']:>9} records  "
              f"{entry['instructions']:>10} instr  <- {entry['source']}")
        print(f"    replay spec: trace({name})")
    return 0


def _human_bytes(count: int) -> str:
    """``16.3 MiB``-style rendering of a byte count."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{int(count)} B"  # pragma: no cover - unreachable


def _cmd_cache(args) -> int:
    from repro.sim.streamstore import StreamStore, resolve_stream_cache_dir

    root = resolve_stream_cache_dir(args.dir)
    if root is None:
        raise SystemExit(
            "cache: no store configured -- pass --dir DIR or set "
            "REPRO_STREAM_CACHE"
        )
    try:
        store = StreamStore(root)
        if args.footprint:
            entries = store.entries()
            total = store.footprint()
            print(
                f"{len(entries)} blob{'' if len(entries) == 1 else 's'}, "
                f"{_human_bytes(total)} ({total} bytes) at {store.root}"
            )
            return 0
    except OSError as exc:
        # An unreadable store directory (permissions, dangling mount,
        # path that is actually a file) is an operator problem worth a
        # clear one-line diagnosis, not a traceback.
        raise SystemExit(
            f"cache: cannot read store at {root}: "
            f"{type(exc).__name__}: {exc}"
        ) from None
    try:
        if args.clear:
            removed = store.clear()
            print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
                  f"from {store.root}")
            return 0
        if args.evict:
            removed = store.evict(args.evict)
            print(f"evicted {removed} entr{'y' if removed == 1 else 'ies'} "
                  f"matching {args.evict!r} from {store.root}")
            return 0
        entries = store.entries()
    except OSError as exc:
        raise SystemExit(
            f"cache: cannot read store at {root}: "
            f"{type(exc).__name__}: {exc}"
        ) from None
    if not entries:
        print(f"store at {store.root} is empty")
        return 0
    rows = [
        [e.name, e.instructions, e.records, e.llc, e.nbytes / 1024.0,
         e.digest[:12]]
        for e in entries
    ]
    print(format_table(
        ["workload", "instructions", "records", "LLC refs", "KiB", "key"],
        rows, precision=1,
        title=f"Compiled workload store at {store.root}",
    ))
    print(f"\n{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
          f"{store.footprint() / (1024.0 * 1024.0):.2f} MiB total")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        job_store=args.job_store,
        checkpoint=args.checkpoint_dir,
        stream_cache=args.stream_cache,
        shared_memory=args.shm or None,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        fleet=args.fleet,
        lease_ttl=args.lease_ttl,
        heartbeat_seconds=args.heartbeat_sec,
        lease_cells=args.lease_cells,
    )


def _cmd_worker(args) -> int:
    import signal as _signal

    from repro.service.worker import FleetWorker

    worker = FleetWorker(
        args.connect,
        name=args.name or None,
        stream_cache=args.stream_cache,
        max_cells=args.max_cells,
        once=args.once,
        poll_seconds=args.poll,
    )
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        _signal.signal(signum, lambda *_: worker.stop())
    code = worker.run()
    print(
        f"worker {worker.name} exiting: "
        f"{worker.stats['cells_completed']} cells completed, "
        f"{worker.stats['cells_failed']} failed, "
        f"{worker.stats['leases_processed']} leases",
        flush=True,
    )
    return code


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.url)


def _cmd_submit(args) -> int:
    import json as _json

    from repro.service import ServiceError

    client = _service_client(args)
    config = {}
    for name, value in (
        ("scale", args.scale), ("instructions", args.instructions),
        ("seed", args.seed), ("cores", args.cores),
    ):
        if value is not None:
            config[name] = value
    try:
        job = client.submit(
            benchmarks=[args.benchmark] if args.benchmark else None,
            techniques=args.techniques or None,
            sweep=args.sweep or not args.benchmark,
            config=config or None,
            client=args.client,
            priority=args.priority,
        )
    except ServiceError as exc:
        raise SystemExit(f"submit: {exc}")
    print(f"submitted {job['id']} ({job['kind']}, {len(job['cells'])} cells, "
          f"{job['dedup_cells']} dedup hits) state={job['state']}")
    if args.stream:
        for event in client.stream_events(job["id"]):
            print(_json.dumps(event, sort_keys=True))
    if args.wait or args.stream or args.json:
        final = client.wait(job["id"], timeout=args.timeout)
        print(f"job {final['id']} finished: {final['state']}"
              + (f" ({final['error']})" if final.get("error") else ""))
        if final["state"] != "done":
            return 1
        if args.json:
            result = client.result(job["id"])
            with open(args.json, "w", encoding="utf-8") as handle:
                _json.dump(result, handle, indent=2, sort_keys=True)
            print(f"wrote result to {args.json}")
    return 0


def _cmd_jobs(args) -> int:
    import json as _json

    from repro.service import ServiceError

    client = _service_client(args)
    try:
        if args.stats:
            print(_json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.cancel:
            job = client.cancel(args.cancel)
            print(f"job {job['id']}: {job['state']}")
            return 0
        if args.job_id:
            print(_json.dumps(client.get(args.job_id), indent=2, sort_keys=True))
            return 0
        jobs = client.list_jobs()
    except ServiceError as exc:
        raise SystemExit(f"jobs: {exc}")
    if not jobs:
        print("no jobs")
        return 0
    rows = [
        [job["id"], job["kind"], job["client"], job["state"],
         f"{job['progress']['done']}/{job['progress']['total']}",
         job["dedup_cells"]]
        for job in jobs
    ]
    print(format_table(
        ["job", "kind", "client", "state", "done", "dedup"], rows,
        title=f"jobs at {args.url}",
    ))
    return 0


def _cmd_storage(args) -> int:
    geometry = CacheGeometry(2 * 1024 * 1024, 16, 64)
    rows = [
        [b.predictor, b.structure_bits / 8192, b.metadata_bits / 8192,
         b.total_kbytes, 100 * b.fraction_of_cache(geometry)]
        for b in storage_table(geometry)
    ]
    print(format_table(
        ["predictor", "structures KB", "metadata KB", "total KB", "% of LLC"],
        rows, precision=2, title="Table I: predictor storage (2MB LLC)",
    ))
    return 0


def _cmd_power(args) -> int:
    rows = [
        [r.predictor, r.total_leakage, r.total_dynamic,
         r.llc_leakage_percent, r.llc_dynamic_percent]
        for r in predictor_power_table()
    ]
    print(format_table(
        ["predictor", "leakage W", "dynamic W", "leak % LLC", "dyn % LLC"],
        rows, precision=3, title="Table II: predictor power (CACTI-lite)",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("info", help="package and suite summary")
    run_parser = subparsers.add_parser("run", help="compare techniques on one benchmark")
    run_parser.add_argument("benchmark")
    run_parser.add_argument("techniques", nargs="*")
    suite_parser = subparsers.add_parser("suite", help="the full Figure 4/5 run")
    suite_parser.add_argument("techniques", nargs="*")
    for sweep_parser in (run_parser, suite_parser):
        sweep_parser.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes (default: REPRO_JOBS or 1)",
        )
        sweep_parser.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="persist each completed cell here "
                 "(default: REPRO_CHECKPOINT_DIR or off)",
        )
        sweep_parser.add_argument(
            "--resume", action="store_true",
            help="reload completed cells from the checkpoint dir "
                 "instead of re-running them",
        )
        sweep_parser.add_argument(
            "--allow-partial", action="store_true",
            help="on unrecoverable cell failures, render completed "
                 "cells plus a failure report instead of aborting",
        )
        sweep_parser.add_argument(
            "--events-file", default=None, metavar="FILE",
            help="append NDJSON progress events here "
                 "(default: REPRO_EVENTS_FILE or off)",
        )
        sweep_parser.add_argument(
            "--progress", action="store_true",
            help="render live progress lines on stderr "
                 "(default: REPRO_PROGRESS or off)",
        )
        sweep_parser.add_argument(
            "--manifest", default=None, metavar="FILE",
            help="write the run manifest here (default: REPRO_MANIFEST, "
                 "else next to the checkpoint store)",
        )
        sweep_parser.add_argument(
            "--stream-cache", default=None, metavar="DIR",
            help="compiled workload store directory "
                 "(default: REPRO_STREAM_CACHE or off)",
        )
        sweep_parser.add_argument(
            "--shm", action="store_true",
            help="fan compiled workloads out to workers via shared "
                 "memory (default: REPRO_SHM or off)",
        )
    loadsim_parser = subparsers.add_parser(
        "loadsim",
        help="service-level latency under open-loop tenant load "
             "(docs/loadsim.md)",
    )
    loadsim_parser.add_argument(
        "--tenants", default="4", metavar="N|SPEC,...",
        help="tenant count (rotates zipf/bursty/hotspot/seq) or a "
             "comma-separated workload spec list; commas inside parens "
             "are safe (default: 4)",
    )
    loadsim_parser.add_argument(
        "--arrival", default=None, metavar="SPEC[,...]",
        help="arrival process: poisson(rate=R), bursty(rate=,burst=,"
             "on=,off=), uniform(rate=R); rates in requests/kilocycle; "
             "one spec for all tenants or one per tenant "
             "(default: poisson(rate=0.05))",
    )
    loadsim_parser.add_argument(
        "--duration", type=float, default=2_000_000.0, metavar="CYCLES",
        help="arrival window in simulated cycles; in-flight requests "
             "drain afterwards (default: 2000000)",
    )
    loadsim_parser.add_argument(
        "--technique", action="append", default=[], metavar="KEY",
        help="technique to simulate; repeatable "
             "(default: sampler and lru)",
    )
    loadsim_parser.add_argument(
        "--seed", type=int, default=1,
        help="scenario seed for all arrival draws (default: 1)",
    )
    loadsim_parser.add_argument(
        "--ops", type=int, default=32,
        help="memory references per request (default: 32)",
    )
    loadsim_parser.add_argument(
        "--epochs", type=int, default=16,
        help="telemetry epochs across the arrival window (default: 16)",
    )
    loadsim_parser.add_argument(
        "--ndjson", default=None, metavar="FILE",
        help="dump each technique's run as NDJSON (summary + tenants + "
             "epoch series; multi-technique runs suffix the key)",
    )
    loadsim_parser.add_argument(
        "--csv", default=None, metavar="FILE",
        help="dump each technique's per-tenant table as CSV",
    )
    telemetry_parser = subparsers.add_parser(
        "telemetry",
        help="per-epoch time series of one (benchmark, technique) run",
    )
    telemetry_parser.add_argument("benchmark")
    telemetry_parser.add_argument("technique", nargs="?", default="sampler")
    telemetry_parser.add_argument(
        "--epochs", type=int, default=32,
        help="target epochs across the LLC stream (default: 32)",
    )
    telemetry_parser.add_argument(
        "--ndjson", default=None, metavar="FILE",
        help="dump the series as NDJSON (context header + one row/epoch)",
    )
    telemetry_parser.add_argument(
        "--csv", default=None, metavar="FILE",
        help="dump the series as CSV",
    )
    telemetry_parser.add_argument(
        "--no-accuracy", action="store_true",
        help="skip the accuracy observer (faster; drops the coverage / "
             "false-positive columns)",
    )
    report_parser = subparsers.add_parser(
        "report", help="rendered telemetry reports (sparkline tables)"
    )
    report_parser.add_argument("benchmarks", nargs="*")
    report_parser.add_argument(
        "--timeseries", action="store_true",
        help="per-benchmark phase plot: miss rate, coverage, false "
             "positives, bypass, sampler/table gauges over epochs",
    )
    report_parser.add_argument(
        "--bench", action="store_true",
        help="tabulate the committed BENCH_PR*.json performance baselines",
    )
    report_parser.add_argument(
        "--pattern-sweep", action="store_true",
        help="miss rate / coverage / false positives with DBRB on vs off "
             "along a pattern-parameter axis (default: Zipf skew "
             "a=0.6,0.9,1.2,1.5); positional args override the axis with "
             "explicit workload specs",
    )
    report_parser.add_argument(
        "--family", default="zipf",
        help="pattern family to sweep (default: zipf)",
    )
    report_parser.add_argument(
        "--param", default=None,
        help="family parameter to sweep (default: the Zipf skew 'a')",
    )
    report_parser.add_argument(
        "--values", default=None, metavar="V1,V2,...",
        help="comma-separated axis values (default: 0.6,0.9,1.2,1.5)",
    )
    report_parser.add_argument(
        "--technique", default="sampler",
        help="technique to replay (default: sampler)",
    )
    report_parser.add_argument(
        "--epochs", type=int, default=32,
        help="target epochs across the LLC stream (default: 32)",
    )
    profile_parser = subparsers.add_parser(
        "profile", help="reuse-distance profile of one benchmark"
    )
    profile_parser.add_argument("benchmark")
    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune the compiled workload store"
    )
    cache_parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="store directory (default: REPRO_STREAM_CACHE)",
    )
    cache_parser.add_argument(
        "--footprint", action="store_true",
        help="print blob count and total size (human-readable + bytes)",
    )
    cache_parser.add_argument(
        "--evict", default=None, metavar="SELECTOR",
        help="delete entries whose workload name or key-digest prefix "
             "matches SELECTOR",
    )
    cache_parser.add_argument(
        "--clear", action="store_true",
        help="delete every entry (and stray temp files)",
    )
    serve_parser = subparsers.add_parser(
        "serve", help="run the experiment job service (docs/service.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8035)
    serve_parser.add_argument(
        "--job-store", default=".repro-service", metavar="DIR",
        help="job records + checkpoints root (default: .repro-service)",
    )
    serve_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="result checkpoint store (default: <job-store>/checkpoints; "
             "point it at a sweep's store to share results with the CLI)",
    )
    serve_parser.add_argument(
        "--stream-cache", default=None, metavar="DIR",
        help="compiled workload store (default: REPRO_STREAM_CACHE or off)",
    )
    serve_parser.add_argument(
        "--shm", action="store_true",
        help="shared-memory workload fan-out to batch workers "
             "(default: REPRO_SHM or off)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per batch (default: REPRO_JOBS or 1)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=256,
        help="max queued cells before submissions get 429 (default: 256)",
    )
    serve_parser.add_argument(
        "--fleet", action="store_true",
        help="dispatch cells to remote `repro worker` processes under "
             "time-bounded leases instead of a local process pool",
    )
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease time-to-live before re-dispatch "
             "(default: REPRO_LEASE_TTL or 60)",
    )
    serve_parser.add_argument(
        "--heartbeat-sec", type=float, default=None, metavar="SECONDS",
        help="worker heartbeat interval "
             "(default: REPRO_HEARTBEAT_SEC or 5)",
    )
    serve_parser.add_argument(
        "--lease-cells", type=int, default=None,
        help="max cells per lease (default: 4)",
    )
    worker_parser = subparsers.add_parser(
        "worker", help="join a fleet-mode service as a worker"
    )
    worker_parser.add_argument(
        "--connect", "--url", dest="connect", required=True,
        metavar="URL", help="fleet-mode service base URL",
    )
    worker_parser.add_argument(
        "--name", default=None, help="worker name (default: host-pid)"
    )
    worker_parser.add_argument(
        "--stream-cache", default=None, metavar="DIR",
        help="local compiled workload store "
             "(default: REPRO_STREAM_CACHE or in-memory only)",
    )
    worker_parser.add_argument(
        "--max-cells", type=int, default=None,
        help="cap cells per lease (default: server's lease size)",
    )
    worker_parser.add_argument(
        "--once", action="store_true",
        help="exit when the fleet has no queued or leased cells left",
    )
    worker_parser.add_argument(
        "--poll", type=float, default=None, metavar="SECONDS",
        help="idle re-poll interval (default: server's hint)",
    )
    submit_parser = subparsers.add_parser(
        "submit", help="submit a cell or sweep to a running service"
    )
    submit_parser.add_argument("benchmark", nargs="?", default=None)
    submit_parser.add_argument("techniques", nargs="*")
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8035", help="service base URL"
    )
    submit_parser.add_argument(
        "--sweep", action="store_true",
        help="expand into the full grid (baseline + every technique); "
             "with no benchmark, the single-thread subset",
    )
    submit_parser.add_argument("--client", default="cli", help="client id for fair-share")
    submit_parser.add_argument("--priority", type=int, default=0,
                               help="lower runs sooner (default: 0)")
    submit_parser.add_argument("--scale", type=int, default=None)
    submit_parser.add_argument("--instructions", type=int, default=None)
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument("--cores", type=int, default=None)
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job finishes")
    submit_parser.add_argument("--stream", action="store_true",
                               help="stream NDJSON progress events to stdout")
    submit_parser.add_argument("--timeout", type=float, default=None,
                               help="give up waiting after this many seconds")
    submit_parser.add_argument("--json", default=None, metavar="FILE",
                               help="write the result JSON here (implies --wait)")
    jobs_parser = subparsers.add_parser(
        "jobs", help="list, inspect, or cancel service jobs"
    )
    jobs_parser.add_argument("job_id", nargs="?", default=None)
    jobs_parser.add_argument(
        "--url", default="http://127.0.0.1:8035", help="service base URL"
    )
    jobs_parser.add_argument("--cancel", default=None, metavar="JOB_ID")
    jobs_parser.add_argument("--stats", action="store_true",
                             help="print GET /v1/stats")
    trace_parser = subparsers.add_parser(
        "trace", help="manage the content-addressed external trace library"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_import = trace_sub.add_parser(
        "import", help="bring an external trace file under the library"
    )
    trace_import.add_argument("file", help="trace file (text or .gz)")
    trace_import.add_argument(
        "--name", default=None,
        help="library name (default: the trace's embedded name)",
    )
    trace_import.add_argument(
        "--lib", default=None, metavar="DIR",
        help="library root (default: REPRO_TRACE_LIB or .repro-traces)",
    )
    trace_list = trace_sub.add_parser(
        "list", help="list imported traces and their replay specs"
    )
    trace_list.add_argument(
        "--lib", default=None, metavar="DIR",
        help="library root (default: REPRO_TRACE_LIB or .repro-traces)",
    )
    subparsers.add_parser("storage", help="print Table I")
    subparsers.add_parser("power", help="print Table II")

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "run": _cmd_run,
        "suite": _cmd_suite,
        "telemetry": _cmd_telemetry,
        "loadsim": _cmd_loadsim,
        "report": _cmd_report,
        "profile": _cmd_profile,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "trace": _cmd_trace,
        "storage": _cmd_storage,
        "power": _cmd_power,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
