"""Trace-driven simulation infrastructure (the CMP$im analogue).

The paper's experimental methodology (Section VI) simulates an
out-of-order 4-wide core with a three-level cache hierarchy and measures
misses per kilo-instruction and instructions per cycle.  This package
rebuilds that pipeline for synthetic traces:

1. :mod:`repro.sim.trace` -- the memory reference trace format emitted by
   the workload generators.
2. :mod:`repro.sim.hierarchy` -- L1D and L2 simulation that *filters* the
   trace down to the LLC access stream.  The filtering is what defeats
   trace-based predictors at the LLC (paper Section VII-A.3), so modeling
   it faithfully is essential.
3. :mod:`repro.sim.cpu` -- a window-based out-of-order timing model that
   converts per-access hit levels into cycles (and therefore IPC).
4. :mod:`repro.sim.system` -- the single-core runner tying it together.
5. :mod:`repro.sim.multicore` -- quad-core shared-LLC runs and the
   weighted speedup metric of Section VI-A.2.
6. :mod:`repro.sim.replay` -- the fast LLC replay kernel driving a policy
   over a precomputed stream (see docs/performance.md).
"""

from repro.sim.cpu import CoreModel, CoreTiming
from repro.sim.hierarchy import (
    FilteredTrace,
    HierarchyFilter,
    MachineConfig,
    PreparedStream,
)
from repro.sim.metrics import geometric_mean, normalized_value, weighted_speedup
from repro.sim.multicore import MulticoreResult, MulticoreSystem
from repro.sim.replay import replay
from repro.sim.system import RunResult, SingleCoreSystem
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "CoreModel",
    "CoreTiming",
    "FilteredTrace",
    "HierarchyFilter",
    "MachineConfig",
    "MulticoreResult",
    "MulticoreSystem",
    "PreparedStream",
    "RunResult",
    "SingleCoreSystem",
    "Trace",
    "TraceRecord",
    "geometric_mean",
    "normalized_value",
    "replay",
    "weighted_speedup",
]
