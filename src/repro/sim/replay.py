"""The fast LLC replay kernel.

The paper's evaluation replays one L1/L2-filtered LLC stream once per
technique (Section VI-B); in a pure-Python model the replay loop is the
hot path of every figure.  :func:`replay` drives a
:class:`~repro.cache.cache.Cache` over a stream whose ``(set_index, tag)``
decomposition was precomputed once per workload
(:meth:`~repro.sim.hierarchy.FilteredTrace.llc_stream`), with the access
path inlined into one loop: per-set dict lookup for the tag probe, policy
callbacks bound to locals, statistics accumulated in local counters and
committed once at the end.

Correctness contract: ``replay(cache, accesses, ...)`` produces the same
hit vector and leaves the cache in the same state -- bit-identical
:class:`~repro.cache.stats.CacheStats`, block contents, and policy state --
as the reference loop ``[cache.access(a) for a in accesses]``.  The
golden-equivalence tests (``tests/test_replay_equivalence.py``) pin this
for every replacement policy.

The kernel only takes the inlined fast path when it can prove it is
semantically equivalent to the reference loop:

* the cache is exactly :class:`~repro.cache.cache.Cache` (subclasses such
  as the victim-relocation cache override ``access`` and must keep their
  virtual dispatch), and
* no observer is attached (Figures 4-8 replay with zero observers; the
  efficiency/accuracy analyses attach observers and take the reference
  path).

If a policy raises mid-replay, the locally accumulated counters for the
partial replay are not committed to ``cache.stats``.

Array path: when the policy registered a batched array kernel and the
replay is eligible (exact :class:`~repro.cache.cache.Cache`, cold, no
observers/probe/paranoid, precomputed decomposition), the stream is
replayed on the structure-of-arrays substrate instead
(:mod:`repro.sim.replay_array`) under the same transparency contract;
``REPRO_ARRAY_KERNEL=0`` forces the object kernel.  The kernel actually
used and any fallback reason are recorded on the cache as
``last_replay_kernel`` / ``last_replay_fallback``.

Telemetry: when the cache carries an enabled probe
(:mod:`repro.telemetry.probe`), the stream is replayed in epoch-sized
slices through the *same* inlined kernel, with the probe notified at
every slice boundary.  Statistics commits are additive, so committing
per slice is arithmetically identical to one final commit, and the cache
state simply carries across slices -- the transparency tests pin
bit-identical results probe-on vs probe-off.  With the default
:data:`~repro.telemetry.probe.NULL_PROBE` the only cost over the
original kernel is one attribute check per replayed stream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.cache import Cache, CacheAccess
from repro.replacement.base import ReplacementPolicy
from repro.sim.replay_array import maybe_replay_array

__all__ = ["replay"]


def replay(
    cache: Cache,
    accesses: Sequence[CacheAccess],
    set_indices: Optional[Sequence[int]] = None,
    tags: Optional[Sequence[int]] = None,
    stream=None,
) -> List[bool]:
    """Replay an LLC access stream; returns the per-access hit vector.

    Args:
        cache: the LLC under test (policy already bound).
        accesses: the stream, in order; ``seq`` must be the stream
            position when the policy is position-indexed (optimal).
        set_indices / tags: precomputed address decomposition for
            ``cache.geometry`` (both or neither).  When omitted they are
            derived inline -- still faster than per-access method calls,
            but sharing one precomputed decomposition across techniques is
            the point of :class:`~repro.sim.hierarchy.PreparedStream`.
        stream: the owning :class:`~repro.sim.hierarchy.PreparedStream`,
            when the caller has one.  Lets the array kernels reuse the
            stream's cached per-geometry :class:`~repro.cache.soa.ReplayIndex`
            instead of rebuilding it per technique.
    """
    if (set_indices is None) != (tags is None):
        raise ValueError("set_indices and tags must be provided together")
    if set_indices is not None and (
        len(set_indices) != len(accesses) or len(tags) != len(accesses)
    ):
        raise ValueError(
            f"decomposition arrays ({len(set_indices)}/{len(tags)}) do not "
            f"match the stream length ({len(accesses)})"
        )

    probe = cache.probe
    if type(cache) is not Cache or cache.has_observers:
        # Reference path: subclass access overrides and observer
        # notifications must keep their exact semantics.
        cache.last_replay_kernel = "object"
        cache.last_replay_fallback = (
            "cache-subclass" if type(cache) is not Cache else "observers"
        )
        cache_access = cache.access
        if not probe.enabled:
            return [cache_access(access) for access in accesses]
        total = len(accesses)
        epoch = probe.resolve_epoch(total)
        probe.begin_run(cache, total)
        hits: List[bool] = []
        hits_append = hits.append
        for position, access in enumerate(accesses, start=1):
            hits_append(cache_access(access))
            if position % epoch == 0:
                probe.on_epoch(cache, position)
        probe.end_run(cache, total)
        return hits

    if not probe.enabled:
        array_hits = maybe_replay_array(cache, accesses, set_indices, tags, stream)
        if array_hits is not None:
            return array_hits
        return _replay_fast(cache, accesses, set_indices, tags)

    # Probe path over the fast kernel: replay epoch-sized slices through
    # the unchanged inlined loop.  Stats commits are additive, so the
    # per-slice commits sum to exactly the single-commit totals.  The
    # array kernels commit statistics (and policy/block state) only once
    # at the end of a whole-stream run, so epoch boundaries would observe
    # nothing; probe replays stay on the object kernel.
    cache.last_replay_kernel = "object"
    cache.last_replay_fallback = "probe"
    total = len(accesses)
    epoch = probe.resolve_epoch(total)
    probe.begin_run(cache, total)
    hits = []
    start = 0
    # The binding (geometry constants, elided policy callbacks, paranoid
    # hooks) is loop-invariant across epoch slices; compute it once here
    # instead of once per slice.
    binding = _bind(cache)
    while start < total:
        stop = min(start + epoch, total)
        hits.extend(
            _replay_fast(
                cache,
                accesses[start:stop],
                None if set_indices is None else set_indices[start:stop],
                None if tags is None else tags[start:stop],
                binding,
            )
        )
        probe.on_epoch(cache, stop)
        start = stop
    probe.end_run(cache, total)
    return hits


def _bind(cache: Cache):
    """Snapshot the loop-invariant kernel inputs for ``_replay_fast``.

    Geometry constants, the per-set containers, the policy callbacks
    with base-class no-ops elided, and the paranoid hooks.  Computed
    once per replay; the probe path reuses one binding across all of its
    epoch slices.
    """
    geometry = cache.geometry
    policy = cache.policy
    policy_type = type(policy)
    # Callbacks a policy left as the base-class no-op are skipped outright;
    # the base ``should_bypass`` always answers False, so skipping it is
    # equivalent to never bypassing.
    return (
        geometry.offset_bits,
        geometry.index_bits,
        geometry.num_sets - 1,
        geometry.associativity,
        cache.sets,
        cache._tag_index,
        policy.choose_victim,
        policy.on_hit if policy_type.on_hit is not ReplacementPolicy.on_hit else None,
        policy.on_fill
        if policy_type.on_fill is not ReplacementPolicy.on_fill
        else None,
        policy.on_miss
        if policy_type.on_miss is not ReplacementPolicy.on_miss
        else None,
        policy.should_bypass
        if policy_type.should_bypass is not ReplacementPolicy.should_bypass
        else None,
        policy.on_evict
        if policy_type.on_evict is not ReplacementPolicy.on_evict
        else None,
        # Paranoid mode keeps the fast path (that is the code under test)
        # but machine-checks the touched set's invariants after every
        # access and the statistics identity after the final commit.
        cache.paranoid,
        cache.check_invariants,
    )


def _replay_fast(
    cache: Cache,
    accesses: Sequence[CacheAccess],
    set_indices: Optional[Sequence[int]],
    tags: Optional[Sequence[int]],
    binding=None,
) -> List[bool]:
    """The inlined replay kernel: exactly :class:`Cache`, zero observers.

    Commits its local counters to ``cache.stats`` on return, so calling
    it over consecutive slices of a stream accumulates the same totals
    as one call over the whole stream (the probe path passes the shared
    ``binding`` so slices skip re-deriving it).
    """
    if binding is None:
        binding = _bind(cache)
    (
        offset_bits,
        index_bits,
        index_mask,
        associativity,
        sets,
        tag_index,
        choose_victim,
        on_hit,
        on_fill,
        on_miss,
        should_bypass,
        on_evict,
        paranoid,
        check_set,
    ) = binding

    hits: List[bool] = []
    hits_append = hits.append
    hit_count = 0
    miss_count = 0
    bypass_count = 0
    fill_count = 0
    evict_count = 0
    writeback_count = 0
    dead_victim_count = 0

    derive_inline = set_indices is None
    for position, access in enumerate(accesses):
        if derive_inline:
            block_address = access.address >> offset_bits
            set_index = block_address & index_mask
            tag = block_address >> index_bits
        else:
            set_index = set_indices[position]
            tag = tags[position]

        index = tag_index[set_index]
        way = index.get(tag)
        if way is not None:
            hit_count += 1
            # Inlined CacheBlock.touch.
            block = sets[set_index][way]
            block.last_access_seq = access.seq
            block.access_count += 1
            if access.is_write:
                block.dirty = True
            if on_hit is not None:
                on_hit(set_index, way, access)
            if paranoid:
                check_set(set_index)
            hits_append(True)
            continue

        miss_count += 1
        if on_miss is not None:
            on_miss(set_index, access)
        if should_bypass is not None and should_bypass(set_index, access):
            bypass_count += 1
            if paranoid:
                check_set(set_index)
            hits_append(False)
            continue

        blocks = sets[set_index]
        way = -1
        if len(index) < associativity:
            for candidate, block in enumerate(blocks):
                if not block.valid:
                    way = candidate
                    break
        if way < 0:
            way = choose_victim(set_index, access)
            if not 0 <= way < associativity:
                raise ValueError(
                    f"policy {cache.policy!r} chose invalid victim way {way}"
                )
        block = blocks[way]
        if block.valid:
            # Inlined Cache._evict; the fill below overwrites every field
            # CacheBlock.invalidate would reset, so the victim frame is
            # never explicitly invalidated.
            evict_count += 1
            if block.dirty:
                writeback_count += 1
            if block.predicted_dead:
                dead_victim_count += 1
            if on_evict is not None:
                on_evict(set_index, way, access)
            old_tag = block.tag
            if index.get(old_tag) == way:
                del index[old_tag]
        # Inlined CacheBlock.fill.
        seq = access.seq
        block.valid = True
        block.tag = tag
        block.dirty = access.is_write
        block.predicted_dead = False
        block.fill_seq = seq
        block.last_access_seq = seq
        block.access_count = 1
        if block.meta:
            block.meta.clear()
        index[tag] = way
        fill_count += 1
        if on_fill is not None:
            on_fill(set_index, way, access)
        if paranoid:
            check_set(set_index)
        hits_append(False)

    stats = cache.stats
    stats.accesses += len(accesses)
    stats.hits += hit_count
    stats.misses += miss_count
    stats.bypasses += bypass_count
    stats.fills += fill_count
    stats.evictions += evict_count
    stats.writebacks += writeback_count
    stats.dead_block_victims += dead_victim_count
    if paranoid:
        cache.check_invariants()
    return hits
