"""Single-core system runs (paper Section VI-A.1).

A run has three phases:

1. **filter** the workload trace through L1D and L2 once (shared by every
   technique evaluated on that workload);
2. **replay** the LLC access stream against a cache built with the policy
   under test, collecting hit/miss outcomes and cache statistics;
3. **time** the full trace with the out-of-order core model to get IPC.

The phases are separable because the LLC policy cannot influence L1/L2
behaviour (no inclusion enforcement, as in the paper's infrastructure), so
one expensive filter pass serves all six techniques of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cache.cache import Cache, CacheAccess, CacheObserver
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.replacement.base import ReplacementPolicy
from repro.sim.cpu import CoreModel, CoreTiming
from repro.sim.hierarchy import FilteredTrace, HierarchyFilter, MachineConfig
from repro.sim.replay import replay
from repro.sim.trace import Trace

__all__ = ["PolicyFactory", "RunResult", "SingleCoreSystem"]

#: A technique is a callable building the LLC policy for a run.  It gets
#: the LLC geometry and the full access stream (so the optimal policy can
#: precompute next-use distances).
PolicyFactory = Callable[[CacheGeometry, Sequence[CacheAccess]], ReplacementPolicy]


@dataclass
class RunResult:
    """Outcome of one (workload, technique) run.

    The LLC itself and any attached observers are kept so analyses
    (efficiency matrices, accuracy counters) can be read out afterwards.
    """

    workload: str
    technique: str
    instructions: int
    llc_stats: CacheStats
    timing: Optional[CoreTiming]
    llc_hits: List[bool]
    cache: Optional[Cache] = None
    observers: Sequence[CacheObserver] = ()
    #: Replay kernel used for the LLC stream ("array" or "object") and,
    #: for the object kernel, why the array path was not taken.  Strictly
    #: observational (manifests, /stats) -- never part of exported figure
    #: data, which stays bit-identical across kernels.
    kernel: Optional[str] = None
    kernel_fallback: Optional[str] = None

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        return self.llc_stats.mpki(self.instructions)

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0.0 when timing was skipped)."""
        return self.timing.ipc if self.timing is not None else 0.0

    def __repr__(self) -> str:
        return (
            f"RunResult({self.workload}/{self.technique}: "
            f"MPKI={self.mpki:.2f}, IPC={self.ipc:.3f})"
        )


def build_llc_accesses(
    filtered: FilteredTrace, core: int = 0, address_offset: int = 0
) -> List[CacheAccess]:
    """Materialize the LLC access stream with stream-position sequence
    numbers (the contract :class:`~repro.replacement.OptimalPolicy` needs).

    Returns a fresh list of fresh objects; callers that can share one
    prepared stream across techniques should prefer
    :meth:`~repro.sim.hierarchy.FilteredTrace.llc_stream`.
    """
    pcs, addresses, writes = filtered.llc_arrays()
    return [
        CacheAccess(
            address=addresses[seq] + address_offset,
            pc=pcs[seq],
            is_write=writes[seq],
            seq=seq,
            core=core,
        )
        for seq in range(len(addresses))
    ]


class SingleCoreSystem:
    """Runs workloads on the single-core machine."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._filter = HierarchyFilter(config)
        self._core = CoreModel(config)

    # ------------------------------------------------------------------
    def prepare(self, trace: Trace) -> FilteredTrace:
        """Phase 1: one-time L1/L2 filtering of a workload trace."""
        return self._filter.filter(trace)

    # ------------------------------------------------------------------
    def run(
        self,
        filtered: FilteredTrace,
        policy_factory: PolicyFactory,
        technique_name: str = "unnamed",
        observer_factories: Sequence[Callable[[Cache], CacheObserver]] = (),
        compute_timing: bool = True,
        llc_geometry: Optional[CacheGeometry] = None,
        probe=None,
    ) -> RunResult:
        """Phases 2 and 3: replay the LLC stream and time the trace.

        Args:
            filtered: the prepared workload.
            policy_factory: builds the LLC replacement policy under test.
            technique_name: label for reports.
            observer_factories: callables building observers for the run's
                cache (efficiency/accuracy analyses); the constructed
                observers are returned on the result.
            compute_timing: set False to skip the core model (the paper
                reports the optimal policy for misses only).
            llc_geometry: override the LLC geometry (multicore sizing).
            probe: optional telemetry probe attached to the LLC (see
                :mod:`repro.telemetry.probe`); strictly observational.
        """
        geometry = llc_geometry or self.config.llc
        stream = filtered.llc_stream(geometry)
        policy = policy_factory(geometry, stream.accesses)
        cache = Cache(geometry, policy, name="LLC", probe=probe)
        observers = [factory(cache) for factory in observer_factories]
        for observer in observers:
            cache.add_observer(observer)
        if probe is not None and probe.enabled:
            probe.set_context(
                workload=filtered.name,
                technique=technique_name,
                instructions=filtered.instructions,
                llc_accesses=len(stream.accesses),
            )
        llc_hits = replay(
            cache, stream.accesses, stream.set_indices, stream.tags, stream=stream
        )
        timing = self._core.run(filtered, llc_hits) if compute_timing else None
        return RunResult(
            workload=filtered.name,
            technique=technique_name,
            instructions=filtered.instructions,
            llc_stats=cache.stats,
            timing=timing,
            llc_hits=llc_hits,
            cache=cache,
            observers=observers,
            kernel=cache.last_replay_kernel,
            kernel_fallback=cache.last_replay_fallback,
        )
