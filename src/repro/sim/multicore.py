"""Quad-core shared-LLC simulation (paper Sections VI-A.2 and VII-D).

Methodology mirrored from the paper:

* each core runs one benchmark with private L1D and L2;
* the LLC is shared (2MB per core -- 8MB for the quad-core machine);
* the reported metric is the **normalized weighted speedup**: per thread,
  IPC in the shared run divided by that program's IPC running alone with
  the full shared-size LLC under LRU; summed over threads; normalized to
  the same sum for the shared-LRU run.

Interleaving substitution: the paper's CMP$im executes the four programs
cycle-by-cycle.  A trace-driven reproduction cannot feed back contention
into the interleaving, so we approximate simultaneity by timestamping each
core's LLC accesses with an *estimated* cycle (instruction position
divided by the core's solo IPC) and merging the four streams in timestamp
order.  Cores therefore progress at realistic relative rates, which is
what matters for shared-cache contention; the residual error is
second-order (contention-induced slowdown changing the interleaving
itself).  DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as heap_merge
from typing import Callable, List, Sequence, Tuple

from repro.cache.cache import Cache, CacheAccess
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.replacement.base import ReplacementPolicy
from repro.replacement.lru import LRUPolicy
from repro.sim.cpu import CoreModel
from repro.sim.hierarchy import FilteredTrace, HierarchyFilter, MachineConfig
from repro.sim.metrics import weighted_speedup
from repro.sim.replay import replay
from repro.sim.trace import Trace

__all__ = ["MulticoreResult", "MulticoreSystem", "PreparedMix"]

#: Builds the shared-LLC policy.  Receives the geometry, the merged access
#: stream, and the core count (thread-aware policies need it).
SharedPolicyFactory = Callable[
    [CacheGeometry, Sequence[CacheAccess], int], ReplacementPolicy
]

#: Address bits reserved to keep per-core address spaces disjoint in the
#: shared LLC (the mixes are multiprogrammed, not shared-memory).
_CORE_ADDRESS_SHIFT = 44


@dataclass
class PreparedMix:
    """Filtered traces and solo baselines for one multi-core mix."""

    name: str
    filtered: List[FilteredTrace]
    single_ipcs: List[float]          # solo IPC, full LLC, LRU (paper's SingleIPC_i)
    merged: List[CacheAccess]         # timestamp-merged shared-LLC stream
    per_core_positions: List[List[int]]  # per core: positions into `merged`


@dataclass
class MulticoreResult:
    """Outcome of one (mix, technique) shared-cache run."""

    mix: str
    technique: str
    ipcs: List[float]
    single_ipcs: List[float]
    llc_stats: CacheStats
    instructions: int

    @property
    def weighted_ipc(self) -> float:
        """Sum of per-thread IPC ratios (before LRU normalization)."""
        return weighted_speedup(self.ipcs, self.single_ipcs)

    @property
    def mpki(self) -> float:
        """Shared-LLC misses per kilo-instruction (all cores)."""
        return self.llc_stats.mpki(self.instructions)


class MulticoreSystem:
    """Runs mixes of workloads on the shared-LLC machine."""

    def __init__(self, config: MachineConfig, num_cores: int = 4) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.config = config
        self.num_cores = num_cores
        self._filter = HierarchyFilter(config)
        self._core = CoreModel(config)

    # ------------------------------------------------------------------
    @property
    def shared_geometry(self) -> CacheGeometry:
        return self.config.shared_llc(self.num_cores)

    def prepare(self, name: str, traces: Sequence[Trace]) -> PreparedMix:
        """Filter each core's trace, compute solo baselines, merge streams."""
        if len(traces) != self.num_cores:
            raise ValueError(
                f"mix has {len(traces)} traces for {self.num_cores} cores"
            )
        filtered = [self._filter.filter(trace) for trace in traces]
        single_ipcs = [self._solo_ipc(ft) for ft in filtered]
        merged, positions = self._merge(filtered, single_ipcs)
        return PreparedMix(
            name=name,
            filtered=filtered,
            single_ipcs=single_ipcs,
            merged=merged,
            per_core_positions=positions,
        )

    def _solo_ipc(self, filtered: FilteredTrace) -> float:
        """IPC of one program alone with the full shared LLC under LRU."""
        geometry = self.shared_geometry
        stream = filtered.llc_stream(geometry)
        cache = Cache(geometry, LRUPolicy(), name="LLC-solo")
        hits = replay(cache, stream.accesses, stream.set_indices, stream.tags)
        return self._core.run(filtered, hits).ipc

    def _merge(
        self, filtered: List[FilteredTrace], single_ipcs: List[float]
    ) -> Tuple[List[CacheAccess], List[List[int]]]:
        """Merge per-core LLC streams by estimated arrival cycle."""
        keyed_streams = []
        for core, ft in enumerate(filtered):
            ipc = max(single_ipcs[core], 1e-6)
            records = ft.trace.records
            stream = []
            inst_pos = 0
            llc_set = ft.llc_indices
            # Walk records once, tracking instruction position; emit LLC
            # accesses with their estimated cycle.
            llc_cursor = 0
            for index, record in enumerate(records):
                inst_pos += record.gap + 1
                if llc_cursor < len(llc_set) and llc_set[llc_cursor] == index:
                    estimated_cycle = inst_pos / ipc
                    access = CacheAccess(
                        address=record.address + (core << _CORE_ADDRESS_SHIFT),
                        pc=record.pc,
                        is_write=record.is_write,
                        seq=0,  # assigned after the merge
                        core=core,
                    )
                    stream.append((estimated_cycle, core, llc_cursor, access))
                    llc_cursor += 1
            keyed_streams.append(stream)

        merged_keyed = list(heap_merge(*keyed_streams, key=lambda item: item[0]))
        merged: List[CacheAccess] = []
        positions: List[List[int]] = [[] for _ in range(self.num_cores)]
        for seq, (_, core, _, access) in enumerate(merged_keyed):
            access.seq = seq
            merged.append(access)
            positions[core].append(seq)
        return merged, positions

    # ------------------------------------------------------------------
    def run(
        self,
        prepared: PreparedMix,
        policy_factory: SharedPolicyFactory,
        technique_name: str = "unnamed",
    ) -> MulticoreResult:
        """Replay the merged stream on a shared LLC; time each core."""
        geometry = self.shared_geometry
        policy = policy_factory(geometry, prepared.merged, self.num_cores)
        cache = Cache(geometry, policy, name="sharedLLC")
        hits = replay(cache, prepared.merged)
        ipcs = []
        for core, ft in enumerate(prepared.filtered):
            core_hits = [hits[position] for position in prepared.per_core_positions[core]]
            ipcs.append(self._core.run(ft, core_hits).ipc)
        return MulticoreResult(
            mix=prepared.name,
            technique=technique_name,
            ipcs=ipcs,
            single_ipcs=prepared.single_ipcs,
            llc_stats=cache.stats,
            instructions=sum(ft.instructions for ft in prepared.filtered),
        )
