"""Out-of-order core timing model.

The paper uses CMP$im, "a memory-system simulator that is accurate to
within 4% of a detailed cycle-accurate simulator", modeling a 4-wide
8-stage pipeline with a 128-entry instruction window (Section VI-A).  We
reproduce the properties of that model that the study actually depends on:

* instructions issue at up to ``width`` per cycle;
* memory operations complete after their resolved hierarchy latency;
* *independent* misses overlap freely as long as they fit inside the
  instruction window (memory-level parallelism);
* an incomplete memory operation stalls issue once it is ``window``
  instructions old (the reorder buffer fills behind it);
* *dependent* memory operations (pointer chasing, flagged in the trace)
  serialize: the dependent access cannot start before its producer's data
  returns.

The model is O(number of memory operations): non-memory instructions are
accounted in bulk through each record's ``gap``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.hierarchy import FilteredTrace, MachineConfig

__all__ = ["CoreModel", "CoreTiming"]


@dataclass
class CoreTiming:
    """Result of a timing run."""

    instructions: int
    cycles: float

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles


class CoreModel:
    """Window-based OoO timing over a filtered trace.

    One instance is reusable across runs (it keeps no state between calls
    to :meth:`run`).
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    def run(self, filtered: FilteredTrace, llc_hits: Sequence[bool]) -> CoreTiming:
        """Compute cycles for a trace given each LLC access's hit/miss.

        Args:
            filtered: the L1/L2-filtered trace.
            llc_hits: one entry per element of ``filtered.llc_indices``;
                True when that access hit in the LLC under the policy being
                evaluated.

        Returns:
            total cycle count and IPC.
        """
        if len(llc_hits) != len(filtered.llc_indices):
            raise ValueError(
                f"llc_hits has {len(llc_hits)} entries for "
                f"{len(filtered.llc_indices)} LLC accesses"
            )
        config = self.config
        width = config.width
        window = config.window
        l2_latency = config.l2_latency
        llc_latency = config.llc_latency
        memory_latency = config.memory_latency
        # Per-record resolved latency for L1/L2 hits (-1 marks LLC-bound
        # records), precomputed once per workload and shared across the
        # techniques replayed on it.
        fixed_latencies = filtered.fixed_latencies(config.l1_latency, l2_latency)

        issue = 0.0            # cycle the next instruction issues
        inst_pos = 0           # instructions issued so far
        last_completion = 0.0  # completion of the previous memory op
        final_completion = 0.0
        # In-flight long-latency ops: (instruction position, completion).
        in_flight: deque = deque()
        llc_cursor = 0

        for record_index, record in enumerate(filtered.trace.records):
            gap = record.gap
            inst_pos += gap + 1
            issue += gap / width
            # Window pressure: ops older than `window` instructions must
            # have completed before this instruction can issue.
            while in_flight and inst_pos - in_flight[0][0] > window:
                _, done = in_flight.popleft()
                if done > issue:
                    issue = done

            latency = fixed_latencies[record_index]
            if latency < 0:
                latency = llc_latency if llc_hits[llc_cursor] else memory_latency
                llc_cursor += 1

            start = issue
            if record.depends and last_completion > start:
                # Address depends on the previous load's data.
                start = last_completion
                issue = start  # issue logically stalls with it
            done = start + latency
            last_completion = done
            if done > final_completion:
                final_completion = done
            if latency > l2_latency:
                in_flight.append((inst_pos, done))
            issue += 1.0 / width

        cycles = max(issue, final_completion)
        return CoreTiming(instructions=filtered.instructions, cycles=cycles)

    def baseline_hits(self, filtered: FilteredTrace) -> List[bool]:
        """Convenience for tests: an all-hit LLC outcome vector."""
        return [True] * len(filtered.llc_indices)
