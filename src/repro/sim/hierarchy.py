"""The three-level cache hierarchy and LLC stream extraction.

The paper's machine (Section VI-A): 32KB 8-way L1D, 256KB 8-way unified L2,
2MB/core 16-way L3, modeled after an Intel Core i7 (Nehalem).  The L1 and
L2 use LRU and are identical across all evaluated techniques -- only the
LLC policy varies -- so we simulate L1+L2 **once** per workload and record
which references reach the LLC.  Every technique then replays that same
LLC stream, exactly as the paper's optimal-policy methodology does
("trace-based simulation ... using the same sequence of memory accesses
made by the out-of-order simulator", Section VI-B).

This filtering step is not an optimization detail; it is the phenomenon
behind the paper's headline negative result for reftrace: "a moderately-
sized mid-level cache filters out most of the temporal locality"
(Section I), leaving sparse, unrepeatable traces at the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import repeat
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import CacheAccess
from repro.cache.geometry import CacheGeometry
from repro.sim.trace import Trace

__all__ = [
    "FilteredTrace",
    "HierarchyFilter",
    "MachineConfig",
    "PreparedStream",
    "prepare_stream",
]

#: Hit-level codes stored per trace record.
L1_HIT, L2_HIT, LLC_LEVEL = 1, 2, 3


@dataclass(frozen=True)
class MachineConfig:
    """The simulated machine (paper Section VI-A, Nehalem-like).

    ``scale`` divides every cache capacity, keeping associativity and block
    size -- Python-speed runs use scale 8 while preserving the working-set
    to cache ratios (workloads size themselves relative to ``llc``).
    """

    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8, 64)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8, 64)
    )
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(2 * 1024 * 1024, 16, 64)
    )
    # Latencies in cycles, measured from issue (L1 hits are covered by the
    # pipeline and cost the base cycle only).
    l1_latency: int = 1
    l2_latency: int = 10
    llc_latency: int = 30
    memory_latency: int = 200
    # Core: 4-wide, 128-entry instruction window, 8-stage pipeline.
    width: int = 4
    window: int = 128

    def scaled(self, factor: int) -> "MachineConfig":
        """Shrink every cache by ``factor`` (latencies/width unchanged)."""
        return replace(
            self,
            l1=self.l1.scaled(factor),
            l2=self.l2.scaled(factor),
            llc=self.llc.scaled(factor),
        )

    def shared_llc(self, num_cores: int) -> CacheGeometry:
        """LLC geometry for ``num_cores`` sharing it (paper: 2MB/core)."""
        return CacheGeometry(
            self.llc.size_bytes * num_cores,
            self.llc.associativity,
            self.llc.block_bytes,
        )

    def latency_for_level(self, level: int, llc_hit: bool) -> int:
        """Total load-to-use latency for a record's resolved hit level."""
        if level == L1_HIT:
            return self.l1_latency
        if level == L2_HIT:
            return self.l2_latency
        return self.llc_latency if llc_hit else self.memory_latency


class _FastLRU:
    """Minimal LRU cache used for the fixed L1/L2 levels.

    Per-set MRU-ordered tag lists; an order of magnitude faster than the
    full policy-driven :class:`repro.cache.Cache`, which matters because
    the L1 sees every reference of every workload.
    """

    __slots__ = ("assoc", "index_mask", "offset_bits", "sets")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.offset_bits = geometry.offset_bits
        self.index_mask = geometry.num_sets - 1
        self.assoc = geometry.associativity
        self.sets: List[List[int]] = [[] for _ in range(geometry.num_sets)]

    def access(self, address: int) -> bool:
        """Access and update recency; True on a hit."""
        block = address >> self.offset_bits
        bucket = self.sets[block & self.index_mask]
        tag = block >> 0  # full block address as tag: exact, no aliasing
        if tag in bucket:
            if bucket[0] != tag:
                bucket.remove(tag)
                bucket.insert(0, tag)
            return True
        bucket.insert(0, tag)
        if len(bucket) > self.assoc:
            bucket.pop()
        return False


class PreparedStream:
    """The LLC access stream of one workload, decomposed for one geometry.

    Struct-of-arrays layout: position ``i`` of every array describes the
    same LLC access, so a replay kernel
    (:func:`repro.sim.replay.replay`) can walk precomputed
    ``(set_index, tag)`` pairs instead of re-deriving them from the byte
    address once per technique.  The :class:`~repro.cache.cache.CacheAccess`
    objects carry stream-position ``seq`` numbers (the contract the
    optimal policy needs) and are safe to share across techniques: no
    policy or predictor mutates them.
    """

    __slots__ = (
        "accesses",
        "set_indices",
        "tags",
        "writes",
        "_replay_index",
        "_prediction_plane",
    )

    def __init__(
        self,
        accesses: List[CacheAccess],
        set_indices: List[int],
        tags: List[int],
        writes: Optional[List[bool]] = None,
    ) -> None:
        self.accesses = accesses
        self.set_indices = set_indices
        self.tags = tags
        self.writes = writes
        self._replay_index = None
        self._prediction_plane = None

    def __len__(self) -> int:
        return len(self.accesses)

    def replay_index(self, num_sets: int):
        """The stream's :class:`~repro.cache.soa.ReplayIndex`, built on
        first use and cached.  A PreparedStream is per-geometry, so one
        cached index serves every technique of a sweep -- the same
        amortization contract as the ``(set_index, tag)`` decomposition.
        """
        index = self._replay_index
        if index is None or index.num_sets != num_sets:
            from repro.cache.soa import ReplayIndex

            index = ReplayIndex.build(
                self.accesses, self.set_indices, self.tags, self.writes, num_sets
            )
            self._replay_index = index
        return index

    def prediction_plane(self, num_sets: int):
        """The stream's :class:`~repro.cache.soa.PredictionPlane`, built
        on first use and cached -- the sampler-side analog of
        :meth:`replay_index`.  Sampler and table evolution depend only on
        the access stream and the LLC set count (the sampler interval),
        so one plane serves both ``sampler`` and ``random_sampler`` (and
        any other default-shape DBRB technique) of a sweep.  Only the
        paper-default predictor shape is precomputed; ablation shapes
        replay on the object kernel and never ask for a plane.
        """
        plane = self._prediction_plane
        if plane is None or plane.num_llc_sets != num_sets:
            from repro.cache.soa import PredictionPlane

            plane = PredictionPlane.build(
                self.accesses, self.set_indices, self.tags, num_sets
            )
            self._prediction_plane = plane
        return plane

    def __repr__(self) -> str:
        return f"PreparedStream({len(self.accesses)} LLC accesses)"


def prepare_stream(
    llc_arrays: Tuple[List[int], List[int], List[bool]],
    geometry: CacheGeometry,
    address_offset: int = 0,
    core: int = 0,
    set_indices: Optional[List[int]] = None,
    tags: Optional[List[int]] = None,
) -> PreparedStream:
    """Materialize a :class:`PreparedStream` from LLC arrays.

    ``set_indices`` / ``tags`` may be supplied when the decomposition for
    ``geometry`` was already computed elsewhere (the compiled workload
    store persists them); otherwise they are derived from the addresses.
    The :class:`~repro.cache.cache.CacheAccess` objects are always
    materialized fresh -- they are per-process Python objects and cannot
    be shared across process boundaries, unlike the flat arrays.
    """
    pcs, addresses, writes = llc_arrays
    count = len(addresses)
    if address_offset:
        addresses = [address + address_offset for address in addresses]
    # map() drives CacheAccess construction at C speed; this loop runs
    # once per (workload, geometry) over every LLC reference, so the
    # interpreted-loop overhead is measurable in warm-start preparation.
    accesses = list(
        map(CacheAccess, addresses, pcs, writes, range(count), repeat(core, count))
    )
    if set_indices is not None:
        return PreparedStream(accesses, set_indices, tags, writes)
    offset_bits = geometry.offset_bits
    index_bits = geometry.index_bits
    index_mask = geometry.num_sets - 1
    blocks = [address >> offset_bits for address in addresses]
    derived_sets = [block & index_mask for block in blocks]
    derived_tags = [block >> index_bits for block in blocks]
    return PreparedStream(accesses, derived_sets, derived_tags, writes)


class FilteredTrace:
    """A trace plus its L1/L2 filtering results.

    Attributes:
        trace: the original workload trace.
        levels: per-record hit level (1 = L1 hit, 2 = L2 hit, 3 = the
            reference reached the LLC; its final latency depends on the
            LLC policy under test).
        llc_indices: indices into ``trace.records`` of LLC-bound accesses.

    The paper's methodology simulates L1+L2 once and replays the LLC
    stream once per technique, so everything derivable from the filtering
    alone is precomputed here exactly once per workload and shared:
    struct-of-arrays views of the LLC stream (:meth:`llc_arrays`),
    per-geometry ``(set_index, tag)`` decompositions (:meth:`llc_stream`),
    and per-record resolved latencies for the L1/L2 hits
    (:meth:`fixed_latencies`).
    """

    __slots__ = ("_latencies", "_llc_arrays", "_streams", "levels", "llc_indices", "trace")

    def __init__(self, trace: Trace, levels: List[int], llc_indices: List[int]) -> None:
        self.trace = trace
        self.levels = levels
        self.llc_indices = llc_indices
        self._llc_arrays: Optional[Tuple[List[int], List[int], List[bool]]] = None
        self._streams: Dict[Tuple[int, int, int, int], PreparedStream] = {}
        self._latencies: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    # precomputed views (built once per workload, shared by techniques)
    # ------------------------------------------------------------------
    def llc_arrays(self) -> Tuple[List[int], List[int], List[bool]]:
        """The LLC stream as parallel ``(pcs, addresses, writes)`` arrays.

        Geometry-independent; computed on first use and cached.
        """
        if self._llc_arrays is None:
            records = self.trace.records
            pcs: List[int] = []
            addresses: List[int] = []
            writes: List[bool] = []
            for index in self.llc_indices:
                record = records[index]
                pcs.append(record.pc)
                addresses.append(record.address)
                writes.append(record.is_write)
            self._llc_arrays = (pcs, addresses, writes)
        return self._llc_arrays

    def llc_stream(
        self,
        geometry: CacheGeometry,
        address_offset: int = 0,
        core: int = 0,
    ) -> PreparedStream:
        """The LLC stream prepared for ``geometry`` (cached per geometry).

        ``address_offset`` and ``core`` support multicore runs, where each
        core's stream is relocated into a disjoint address range.
        """
        key = (geometry.offset_bits, geometry.index_bits, address_offset, core)
        stream = self._streams.get(key)
        if stream is None:
            stream = prepare_stream(
                self.llc_arrays(), geometry, address_offset, core
            )
            self._streams[key] = stream
        return stream

    def fixed_latencies(self, l1_latency: int, l2_latency: int) -> List[int]:
        """Per-record resolved latency for L1/L2 hits; ``-1`` marks records
        that reach the LLC (their latency depends on the policy under
        test).  Cached, so the timing model's per-record level branching is
        paid once per workload rather than once per technique."""
        key = (l1_latency, l2_latency)
        latencies = self._latencies.get(key)
        if latencies is None:
            lookup = {L1_HIT: l1_latency, L2_HIT: l2_latency, LLC_LEVEL: -1}
            latencies = [lookup[level] for level in self.levels]
            self._latencies[key] = latencies
        return latencies

    @property
    def name(self) -> str:
        return self.trace.name

    @property
    def instructions(self) -> int:
        return self.trace.instructions

    def llc_records(self) -> List[Tuple[int, int, bool]]:
        """The LLC access stream as (pc, address, is_write) tuples."""
        records = self.trace.records
        return [
            (records[i].pc, records[i].address, records[i].is_write)
            for i in self.llc_indices
        ]

    def filter_ratio(self) -> float:
        """Fraction of memory references the L1/L2 absorbed."""
        if not self.levels:
            return 0.0
        return 1.0 - len(self.llc_indices) / len(self.levels)

    def __repr__(self) -> str:
        return (
            f"FilteredTrace({self.name!r}, {len(self.levels)} refs, "
            f"{len(self.llc_indices)} reach the LLC)"
        )


class HierarchyFilter:
    """Runs a trace through L1D and L2, recording what reaches the LLC."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    def filter(self, trace: Trace) -> FilteredTrace:
        """Simulate L1 and L2 once; return the annotated trace.

        Both levels allocate on miss (write-allocate); writeback traffic is
        not modeled, matching the paper's demand-miss accounting.
        """
        l1 = _FastLRU(self.config.l1)
        l2 = _FastLRU(self.config.l2)
        levels: List[int] = []
        llc_indices: List[int] = []
        append_level = levels.append
        append_llc = llc_indices.append
        l1_access = l1.access
        l2_access = l2.access
        for index, record in enumerate(trace.records):
            address = record.address
            if l1_access(address):
                append_level(L1_HIT)
            elif l2_access(address):
                append_level(L2_HIT)
            else:
                append_level(LLC_LEVEL)
                append_llc(index)
        return FilteredTrace(trace, levels, llc_indices)
