"""The compiled workload store: persistent, shareable LLC streams.

The paper's methodology simulates L1+L2 once per workload and replays
only the LLC stream per technique (Section VI-B).  PR 1 made the replay
cheap; what remained expensive was *producing* the stream: every sweep
invocation -- and every worker process of :mod:`repro.harness.parallel`
-- regenerated the trace and re-ran the L1/L2 filtering pass from
scratch, because the :class:`~repro.harness.runner.WorkloadCache` was
private to its process.  This module makes the compiled form of a
workload a first-class, persistent artifact:

* :func:`compile_filtered` serializes a prepared
  :class:`~repro.sim.hierarchy.FilteredTrace` -- full trace records,
  per-record hit levels, the LLC arrays, per-geometry ``(set index,
  tag)`` decompositions, and the timing model's fixed latencies -- into
  one flat binary blob of typed buffers (:class:`CompiledWorkload`);
* :class:`StreamStore` is a content-addressed on-disk store of those
  blobs, keyed by everything that determines a workload's compiled form
  (benchmark, instruction budget, seed, machine geometry, format
  version), with the same atomic temp-then-rename write discipline as
  :class:`repro.harness.checkpoint.CheckpointStore`;
* :class:`SharedStreamExport` / :func:`attach_shared_streams` fan a set
  of compiled blobs out to worker processes zero-copy through
  :mod:`multiprocessing.shared_memory`: the parent compiles (or loads)
  each workload once, workers attach to the segment and materialize
  Python objects lazily from the shared buffers.

Result transparency is the contract everything here honors: a
reconstructed workload replays **bit-identically** to a freshly prepared
one -- same stats, same hit vectors, same IPC -- whether it came off
disk or out of a shared-memory segment, serially or in a worker
(``tests/test_streamstore.py`` pins this).

Blob format (version 1)::

    8 bytes   magic  b"RPSTRM01"
    8 bytes   header length (little-endian)
    header    JSON (padded to an 8-byte boundary): name, instruction
              count, record/LLC counts, the store key, the latency pair
              of the serialized ``fixed_lat`` section, and a section
              table {id: {fmt, offset, count}}
    payload   the raw little-endian buffers, 8-byte aligned

Sections: ``pc``/``addr``/``gap`` (one ``q``/``Q`` per trace record),
``flags`` (bit 0 = write, bit 1 = depends), ``level`` (1/2/3 per
record), ``llc_index``, ``llc_pc``/``llc_addr``/``llc_write`` (the LLC
stream), ``fixed_lat`` (per-record resolved latency, -1 for LLC-bound),
and ``set@O:I`` / ``tag@O:I`` pairs for each compiled geometry
(``O``/``I`` = offset/index bits).

Replay-side derived structures -- the per-geometry
:class:`~repro.cache.soa.ReplayIndex` and the DBRB kernel's
:class:`~repro.cache.soa.PredictionPlane` -- are deliberately NOT
persisted in the blob: both are recomputed lazily per process and
cached on the reconstructed
:class:`~repro.sim.hierarchy.PreparedStream`, so they cost one pass per
(workload, geometry) regardless of how many techniques replay, while
the on-disk format stays a pure function of the workload (no format
rev, nothing stale to invalidate when a kernel's precompute changes).  Decoding never copies the payload:
:meth:`CompiledWorkload.from_buffer` keeps :class:`memoryview` casts
into the underlying buffer, and :meth:`CompiledWorkload.filtered_trace`
materializes :class:`~repro.sim.trace.TraceRecord` /
:class:`~repro.cache.cache.CacheAccess` objects lazily, on first use.

Environment knobs:

========================  =============================================
``REPRO_STREAM_CACHE``    store root directory (unset = store disabled)
``REPRO_SHM``             truthy = shared-memory fan-out in parallel
                          sweeps
``REPRO_STREAM_REQUIRE``  truthy = raise instead of compiling a
                          workload from scratch (test/CI guard proving
                          the warm path is actually taken)
========================  =============================================
"""

from __future__ import annotations

import hashlib
import json
import os
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cache.geometry import CacheGeometry
from repro.sim.hierarchy import (
    FilteredTrace,
    MachineConfig,
    prepare_stream,
)
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "CompiledWorkload",
    "CompiledFilteredTrace",
    "SharedStreamExport",
    "StoreEntry",
    "StreamManifest",
    "StreamStore",
    "attach_shared_streams",
    "compile_filtered",
    "resolve_stream_cache_dir",
    "shared_memory_enabled",
    "stream_compile_required",
]

_MAGIC = b"RPSTRM01"
_FORMAT = 1
# The *key* format is versioned separately from the blob layout: v2 added
# the workload-spec digest token (parameterized pattern workloads), which
# invalidates every v1 key without touching how blobs decode.
_KEY_FORMAT = 2
_ALIGN = 8
_TRUTHY = ("1", "true", "yes", "on")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def shared_memory_enabled(explicit: Optional[bool] = None) -> bool:
    """Shared-memory fan-out: explicit argument, else ``REPRO_SHM``."""
    if explicit is not None:
        return bool(explicit)
    return _env_flag("REPRO_SHM")


def stream_compile_required() -> bool:
    """True when ``REPRO_STREAM_REQUIRE`` forbids cold compiles."""
    return _env_flag("REPRO_STREAM_REQUIRE")


def resolve_stream_cache_dir(
    explicit: Union[str, Path, None] = None
) -> Optional[Path]:
    """The store root: explicit argument, else ``REPRO_STREAM_CACHE``,
    else None (store disabled)."""
    if explicit is not None:
        return Path(explicit)
    raw = os.environ.get("REPRO_STREAM_CACHE")
    if raw is None or not raw.strip():
        return None
    return Path(raw)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _pad(length: int) -> int:
    return (_ALIGN - length % _ALIGN) % _ALIGN


def _geometry_token(geometry: CacheGeometry) -> str:
    return f"{geometry.size_bytes}:{geometry.associativity}:{geometry.block_bytes}"


def _stream_section_ids(geometry: CacheGeometry) -> Tuple[str, str]:
    suffix = f"{geometry.offset_bits}:{geometry.index_bits}"
    return f"set@{suffix}", f"tag@{suffix}"


def encode_filtered(
    filtered: FilteredTrace,
    machine: MachineConfig,
    key: str,
    geometries: Sequence[CacheGeometry] = (),
) -> bytes:
    """Serialize a prepared workload into one self-describing blob.

    ``geometries`` lists the cache shapes whose ``(set index, tag)``
    decomposition is baked in; the machine's LLC is always included.
    """
    records = filtered.trace.records
    pcs, addresses, writes = filtered.llc_arrays()

    shapes: List[CacheGeometry] = [machine.llc]
    for geometry in geometries:
        if (geometry.offset_bits, geometry.index_bits) not in [
            (g.offset_bits, g.index_bits) for g in shapes
        ]:
            shapes.append(geometry)

    sections: List[Tuple[str, str, bytes]] = [
        ("pc", "Q", array("Q", (r.pc for r in records)).tobytes()),
        ("addr", "Q", array("Q", (r.address for r in records)).tobytes()),
        ("gap", "q", array("q", (r.gap for r in records)).tobytes()),
        (
            "flags",
            "B",
            bytes((r.is_write | (r.depends << 1)) for r in records),
        ),
        ("level", "B", bytes(filtered.levels)),
        ("llc_index", "Q", array("Q", filtered.llc_indices).tobytes()),
        ("llc_pc", "Q", array("Q", pcs).tobytes()),
        ("llc_addr", "Q", array("Q", addresses).tobytes()),
        ("llc_write", "B", bytes(map(int, writes))),
        (
            "fixed_lat",
            "q",
            array(
                "q",
                filtered.fixed_latencies(machine.l1_latency, machine.l2_latency),
            ).tobytes(),
        ),
    ]
    for geometry in shapes:
        stream = filtered.llc_stream(geometry)
        set_id, tag_id = _stream_section_ids(geometry)
        sections.append(("" + set_id, "Q", array("Q", stream.set_indices).tobytes()))
        sections.append(("" + tag_id, "Q", array("Q", stream.tags).tobytes()))

    itemsize = {"Q": 8, "q": 8, "B": 1}
    table: Dict[str, Dict[str, int]] = {}
    # Offsets are relative to the payload start, which is itself 8-byte
    # aligned, so every 8-byte section below stays aligned too.
    cursor = 0
    for section_id, fmt, payload in sections:
        cursor += _pad(cursor)
        table[section_id] = {
            "fmt": fmt,
            "offset": cursor,
            "count": len(payload) // itemsize[fmt],
        }
        cursor += len(payload)

    header = {
        "format": _FORMAT,
        "key": key,
        "name": filtered.name,
        "instructions": filtered.instructions,
        "records": len(records),
        "llc": len(filtered.llc_indices),
        "l1_latency": machine.l1_latency,
        "l2_latency": machine.l2_latency,
        "sections": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("ascii")
    header_bytes += b" " * _pad(len(header_bytes))

    blob = bytearray()
    blob += _MAGIC
    blob += len(header_bytes).to_bytes(8, "little")
    blob += header_bytes
    payload_start = len(blob)
    for section_id, fmt, payload in sections:
        meta = table[section_id]
        target = payload_start + meta["offset"]
        blob += b"\x00" * (target - len(blob))
        blob += payload
    return bytes(blob)


class _LazyRecords:
    """A records sequence that materializes :class:`TraceRecord` objects
    from the flat buffers on first real use.

    Cells that skip the timing model (``compute_timing=False``) never
    touch the full record list, so attaching to a compiled workload
    costs nothing for them beyond the buffer views.
    """

    __slots__ = ("_addr", "_flags", "_gap", "_list", "_pc")

    def __init__(self, pcs, addresses, gaps, flags) -> None:
        self._pc = pcs
        self._addr = addresses
        self._gap = gaps
        self._flags = flags
        self._list: Optional[List[TraceRecord]] = None

    def _materialize(self) -> List[TraceRecord]:
        if self._list is None:
            record = TraceRecord
            self._list = [
                record(pc, addr, bool(flag & 1), gap, bool(flag & 2))
                for pc, addr, gap, flag in zip(
                    self._pc, self._addr, self._gap, self._flags
                )
            ]
        return self._list

    def __len__(self) -> int:
        return len(self._pc)

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]


class CompiledFilteredTrace(FilteredTrace):
    """A :class:`FilteredTrace` reconstructed from a compiled blob.

    Behaviorally identical to a freshly prepared trace; the difference is
    purely where its precomputed views come from: the LLC arrays, stored
    stream decompositions, and fixed latencies are served from the
    blob's buffers (zero-copy until an object view is actually needed)
    instead of being re-derived from the records.
    """

    __slots__ = ("_compiled",)

    def __init__(self, trace, levels, llc_indices, compiled: "CompiledWorkload") -> None:
        super().__init__(trace, levels, llc_indices)
        self._compiled = compiled

    def llc_arrays(self):
        if self._llc_arrays is None:
            compiled = self._compiled
            self._llc_arrays = (
                list(compiled.view("llc_pc")),
                list(compiled.view("llc_addr")),
                [bool(flag) for flag in compiled.view("llc_write")],
            )
        return self._llc_arrays

    def llc_stream(self, geometry, address_offset: int = 0, core: int = 0):
        key = (geometry.offset_bits, geometry.index_bits, address_offset, core)
        if key not in self._streams and address_offset == 0 and core == 0:
            views = self._compiled.stream_views(
                geometry.offset_bits, geometry.index_bits
            )
            if views is not None:
                # The replay kernel indexes set_indices/tags millions of
                # times; one bulk list() conversion keeps its per-access
                # cost identical to the freshly prepared path.
                self._streams[key] = prepare_stream(
                    self.llc_arrays(),
                    geometry,
                    set_indices=list(views[0]),
                    tags=list(views[1]),
                )
        return super().llc_stream(geometry, address_offset, core)

    def fixed_latencies(self, l1_latency: int, l2_latency: int):
        key = (l1_latency, l2_latency)
        if key not in self._latencies and key == self._compiled.latency_pair:
            self._latencies[key] = list(self._compiled.view("fixed_lat"))
        return super().fixed_latencies(l1_latency, l2_latency)


class CompiledWorkload:
    """One workload's compiled form, backed by a flat binary buffer.

    Instances are created by :func:`compile_filtered` (freshly encoded),
    :meth:`StreamStore.load` (read off disk), or
    :func:`attach_shared_streams` (views into a shared-memory segment).
    All three are interchangeable: :meth:`filtered_trace` reconstructs a
    bit-identical :class:`~repro.sim.hierarchy.FilteredTrace` from any
    of them.
    """

    __slots__ = (
        "_retained",
        "_sections",
        "_views",
        "instructions",
        "key",
        "latency_pair",
        "llc",
        "name",
        "nbytes",
        "raw",
        "records",
    )

    def __init__(self) -> None:  # populated by from_buffer
        self.raw = None
        self._retained = None
        self._views: List[memoryview] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_buffer(cls, buffer) -> "CompiledWorkload":
        """Decode a blob (bytes or a shared-memory view) without copying.

        Raises ValueError on a torn, truncated, or foreign buffer; the
        store converts that into a cache miss.
        """
        base = memoryview(buffer)
        if len(base) < len(_MAGIC) + 8:
            raise ValueError("compiled workload: buffer too short")
        if bytes(base[: len(_MAGIC)]) != _MAGIC:
            raise ValueError("compiled workload: bad magic")
        header_len = int.from_bytes(base[len(_MAGIC) : len(_MAGIC) + 8], "little")
        header_start = len(_MAGIC) + 8
        payload_start = header_start + header_len
        if header_len <= 0 or payload_start > len(base):
            raise ValueError("compiled workload: truncated header")
        try:
            header = json.loads(bytes(base[header_start:payload_start]).decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"compiled workload: garbled header ({exc})") from None
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            raise ValueError(
                f"compiled workload: unsupported format {header.get('format')!r}"
            )

        self = cls()
        self.raw = buffer
        self.key = header["key"]
        self.name = header["name"]
        self.instructions = header["instructions"]
        self.records = header["records"]
        self.llc = header["llc"]
        self.latency_pair = (header["l1_latency"], header["l2_latency"])
        self.nbytes = len(base)
        itemsize = {"Q": 8, "q": 8, "B": 1}
        sections: Dict[str, memoryview] = {}
        for section_id, meta in header["sections"].items():
            fmt = meta["fmt"]
            if fmt not in itemsize:
                raise ValueError(f"compiled workload: unknown section format {fmt!r}")
            start = payload_start + meta["offset"]
            stop = start + meta["count"] * itemsize[fmt]
            if stop > len(base):
                raise ValueError(
                    f"compiled workload: section {section_id!r} exceeds the buffer"
                )
            view = base[start:stop].cast(fmt)
            sections[section_id] = view
            self._views.append(view)
        self._views.append(base)
        for required in (
            "pc", "addr", "gap", "flags", "level",
            "llc_index", "llc_pc", "llc_addr", "llc_write", "fixed_lat",
        ):
            if required not in sections:
                raise ValueError(f"compiled workload: missing section {required!r}")
        if len(sections["pc"]) != self.records or len(sections["llc_pc"]) != self.llc:
            raise ValueError("compiled workload: section counts disagree with header")
        self._sections = sections
        return self

    # ------------------------------------------------------------------
    def view(self, section_id: str) -> memoryview:
        """The raw typed view of one section."""
        return self._sections[section_id]

    def stream_views(
        self, offset_bits: int, index_bits: int
    ) -> Optional[Tuple[memoryview, memoryview]]:
        """The stored ``(set index, tag)`` views for a geometry, if baked in."""
        suffix = f"{offset_bits}:{index_bits}"
        set_view = self._sections.get(f"set@{suffix}")
        tag_view = self._sections.get(f"tag@{suffix}")
        if set_view is None or tag_view is None:
            return None
        return set_view, tag_view

    def filtered_trace(self) -> CompiledFilteredTrace:
        """Reconstruct the workload (records and streams materialize lazily)."""
        records = _LazyRecords(
            self.view("pc"), self.view("addr"), self.view("gap"), self.view("flags")
        )
        trace = Trace(self.name, records, instructions=self.instructions)
        return CompiledFilteredTrace(
            trace, self.view("level"), self.view("llc_index"), self
        )

    def to_bytes(self) -> bytes:
        """The encoded blob (copies only when backed by shared memory)."""
        if isinstance(self.raw, bytes):
            return self.raw
        return bytes(self.raw)

    def retain(self, resource) -> None:
        """Tie an external resource's lifetime (e.g. a SharedMemory
        handle) to this workload, keeping the mapping alive while views
        into it exist."""
        self._retained = resource

    def release(self) -> None:
        """Drop every buffer view and close a retained shared-memory
        segment.  After this the workload (and any FilteredTrace built
        from it) must not be used; tests and benchmarks call it to shut
        segments down deterministically."""
        self._sections = {}
        for view in reversed(self._views):
            view.release()
        self._views = []
        self.raw = None
        retained = self._retained
        self._retained = None
        if retained is not None:
            retained.close()

    def __repr__(self) -> str:
        return (
            f"CompiledWorkload({self.name!r}, {self.records} records, "
            f"{self.llc} LLC accesses, {self.nbytes} bytes)"
        )


def compile_filtered(
    filtered: FilteredTrace,
    machine: MachineConfig,
    key: str,
    geometries: Sequence[CacheGeometry] = (),
) -> CompiledWorkload:
    """Compile a prepared workload into its flat, shareable form."""
    return CompiledWorkload.from_buffer(
        encode_filtered(filtered, machine, key, geometries)
    )


# ----------------------------------------------------------------------
# the on-disk store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntry:
    """One stored blob, as listed by :meth:`StreamStore.entries`."""

    path: Path
    digest: str
    name: str
    key: str
    nbytes: int
    records: int
    llc: int
    instructions: int


class StreamStore:
    """Content-addressed on-disk store of compiled workloads.

    A blob's file name is the SHA-256 of its key string, so entries
    written under one configuration can never be mistaken for another's;
    the key is also embedded in the blob header and verified on load,
    turning collisions and misplaced files into misses rather than
    silent corruption -- the same discipline as the checkpoint store.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._dir = self.root / "streams"
        self._dir.mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_env(
        cls, explicit: Union[str, Path, None] = None
    ) -> Optional["StreamStore"]:
        """A store rooted per :func:`resolve_stream_cache_dir`, or None."""
        root = resolve_stream_cache_dir(explicit)
        return cls(root) if root is not None else None

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    @staticmethod
    def workload_key(
        benchmark: str,
        instructions: int,
        seed: int,
        machine: MachineConfig,
        spec_digest: str = "",
    ) -> str:
        """Canonical key over everything that determines a compiled blob.

        Trace generation depends on (benchmark, budget, LLC capacity,
        seed); filtering on the L1/L2 geometries; the baked-in stream on
        the LLC geometry.  ``spec_digest`` is the workload's canonical
        spec digest (:func:`repro.workloads.suite.workload_spec_digest`),
        which distinguishes parameterized patterns whose *name* text may
        vary (or collide) while their content differs -- e.g. a
        re-imported ``trace(...)`` workload.  The leading format token
        versions the key schema; bumping ``_KEY_FORMAT`` invalidates
        every entry (blob layout is versioned separately by ``_FORMAT``).
        """
        return (
            f"rstream-v{_KEY_FORMAT}|benchmark={benchmark}"
            f"|instructions={instructions}|seed={seed}"
            f"|l1={_geometry_token(machine.l1)}"
            f"|l2={_geometry_token(machine.l2)}"
            f"|llc={_geometry_token(machine.llc)}"
            f"|spec={spec_digest}"
        )

    @staticmethod
    def digest_for_key(key: str) -> str:
        """The sha256 content address of a key -- the blob's on-disk
        name and the identity the fleet protocol ships blobs under."""
        return hashlib.sha256(key.encode("ascii")).hexdigest()

    def path_for_key(self, key: str) -> Path:
        return self._dir / f"{self.digest_for_key(key)}.rsc"

    def path_for_digest(self, digest: str) -> Optional[Path]:
        """The blob path for a digest, or None for a malformed digest.

        The digest doubles as a file name, so anything but 64 hex
        characters is rejected here -- the HTTP blob route must never
        turn a request path into directory traversal.
        """
        digest = digest.strip().lower()
        if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
            return None
        return self._dir / f"{digest}.rsc"

    def load_raw(self, digest: str) -> Optional[bytes]:
        """Raw blob bytes by digest (the fleet blob-serving path);
        missing or malformed digests read as None."""
        path = self.path_for_digest(digest)
        if path is None:
            return None
        try:
            return path.read_bytes()
        except OSError:
            return None

    def store_raw(self, blob: bytes, digest: str) -> CompiledWorkload:
        """Verify and persist a transferred blob under its digest.

        The blob must decode (:meth:`CompiledWorkload.from_buffer`
        raises ValueError on torn or truncated bytes) and its embedded
        key must hash to ``digest`` -- only then is it written, so a
        fetched blob in the local store is exactly as trustworthy as a
        locally compiled one.  Returns the decoded workload.
        """
        compiled = CompiledWorkload.from_buffer(blob)
        if self.digest_for_key(compiled.key) != digest:
            raise ValueError(
                f"blob key digest mismatch: decoded key {compiled.key!r} "
                f"does not hash to {digest!r} (torn or mislabeled transfer)"
            )
        path = self.path_for_key(compiled.key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_bytes(bytes(blob))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return compiled

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def store(self, compiled: CompiledWorkload) -> Path:
        """Persist one compiled workload (atomic temp-then-rename).

        A failure mid-write -- ENOSPC, a kill signal that still unwinds,
        a crashed serializer -- unlinks the temporary file, so the store
        never accumulates half-written blobs.
        """
        path = self.path_for_key(compiled.key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_bytes(compiled.to_bytes())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    def load(self, key: str) -> Optional[CompiledWorkload]:
        """The stored blob for a key, or None.

        Missing, torn, or key-mismatched files all read as None: a bad
        entry costs one recompile, never a wrong result.
        """
        path = self.path_for_key(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            compiled = CompiledWorkload.from_buffer(blob)
        except ValueError:
            return None
        if compiled.key != key:
            return None
        return compiled

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> List[StoreEntry]:
        """Every readable blob in the store, sorted by workload name."""
        found: List[StoreEntry] = []
        for path in sorted(self._dir.glob("*.rsc")):
            try:
                compiled = CompiledWorkload.from_buffer(path.read_bytes())
            except (OSError, ValueError):
                continue
            found.append(
                StoreEntry(
                    path=path,
                    digest=path.stem,
                    name=compiled.name,
                    key=compiled.key,
                    nbytes=path.stat().st_size,
                    records=compiled.records,
                    llc=compiled.llc,
                    instructions=compiled.instructions,
                )
            )
        return sorted(found, key=lambda e: (e.name, e.digest))

    def footprint(self) -> int:
        """Total bytes of stored blobs (unreadable files included)."""
        return sum(path.stat().st_size for path in self._dir.glob("*.rsc"))

    def evict(self, selector: str) -> int:
        """Delete entries whose workload name or digest prefix matches
        ``selector``; returns the count removed."""
        removed = 0
        for entry in self.entries():
            if entry.name == selector or entry.digest.startswith(selector):
                entry.path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Delete every blob (and stray temp files); returns the count."""
        removed = 0
        for path in self._dir.glob("*.rsc"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self._dir.glob("*.tmp.*"):
            path.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._dir.glob("*.rsc"))

    def __repr__(self) -> str:
        return f"StreamStore({str(self.root)!r}, {len(self)} blobs)"


# ----------------------------------------------------------------------
# shared-memory fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamManifest:
    """Picklable description of a :class:`SharedStreamExport`.

    ``pid`` records the creating (owning) process for provenance; the
    owner is the one that unlinks the segments.

    A note on the resource tracker: on CPython 3.8-3.12, *attaching* to
    a segment registers it for cleanup just like creating one does.
    That is harmless here -- spawn children inherit the parent's
    tracker process (the tracker fd travels in the spawn preparation
    data), where registration is a set-add and therefore idempotent;
    the parent's single unlink unregisters the name exactly once.  Do
    NOT "fix" the double registration by unregistering after attach:
    with a shared tracker that cancels the parent's registration and
    the eventual unlink trips a KeyError in the tracker process.
    """

    pid: int
    segments: Tuple[Tuple[str, str, int], ...]

    def __len__(self) -> int:
        return len(self.segments)


class SharedStreamExport:
    """Parent-side shared-memory segments, one per compiled workload.

    The parent copies each blob into a segment once;
    :meth:`manifest` is the picklable description workers turn back into
    :class:`CompiledWorkload` views via :func:`attach_shared_streams`.
    :meth:`close` is idempotent and runs in the sweep's cleanup path
    whatever happens -- crash, timeout, abort -- so a failed sweep never
    leaks segments.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, Tuple[object, int]] = {}
        self._closed = False

    @classmethod
    def create(cls, compiled: Mapping[str, CompiledWorkload]) -> "SharedStreamExport":
        from multiprocessing import shared_memory

        export = cls()
        try:
            for benchmark, workload in compiled.items():
                blob = workload.to_bytes()
                segment = shared_memory.SharedMemory(create=True, size=len(blob))
                segment.buf[: len(blob)] = blob
                export._segments[benchmark] = (segment, len(blob))
        except BaseException:
            export.close()
            raise
        return export

    def manifest(self) -> StreamManifest:
        """The picklable description workers attach from."""
        return StreamManifest(
            pid=os.getpid(),
            segments=tuple(
                (benchmark, segment.name, nbytes)
                for benchmark, (segment, nbytes) in self._segments.items()
            ),
        )

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment, _ in self._segments.values():
            try:
                segment.close()
            except BufferError:
                pass  # a live in-process view keeps the mapping; unlink still works
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments = {}

    def __len__(self) -> int:
        return len(self._segments)


def attach_shared_streams(
    manifest: Optional[StreamManifest],
) -> Dict[str, CompiledWorkload]:
    """Worker-side attach: map each exported segment, zero-copy.

    Returns ``{benchmark: CompiledWorkload}``; each workload retains its
    segment handle so the mapping stays alive for the worker's lifetime.
    Returns an empty dict for a None/empty manifest.
    """
    if manifest is None or not manifest.segments:
        return {}
    from multiprocessing import shared_memory

    attached: Dict[str, CompiledWorkload] = {}
    for benchmark, segment_name, nbytes in manifest.segments:
        segment = shared_memory.SharedMemory(name=segment_name)
        workload = CompiledWorkload.from_buffer(memoryview(segment.buf)[:nbytes])
        workload.retain(segment)
        attached[benchmark] = workload
    return attached
