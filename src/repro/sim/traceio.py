"""Trace persistence.

Workload generation is deterministic, but regenerating a multi-hundred-
thousand-instruction trace still costs seconds; saving traces also lets
users bring *their own* traces (e.g. converted from Pin/DynamoRIO tools)
to the simulator.  The format is a line-oriented text file:

    # repro-trace v1 name=<name>
    <pc> <address> <W|R> <gap> <D|->

Fields are hexadecimal for pc/address, decimal for gap.  Lines starting
with ``#`` are comments.  Gzip is applied transparently for paths ending
in ``.gz``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Union

from repro.sim.trace import Trace, TraceRecord

__all__ = ["load_trace", "save_trace", "trace_lines"]

_MAGIC = "# repro-trace v1"

#: PCs and addresses are 64-bit; anything outside [0, 2^64) is a
#: corrupted or hand-mangled file, not a usable reference.
_FIELD_LIMIT = 1 << 64


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def trace_lines(trace: Trace):
    """Yield the canonical serialized lines of ``trace`` (with newlines).

    This is *the* byte representation of a trace: :func:`save_trace`
    writes exactly these lines, and the trace library's content digests
    hash them -- so a plain-text file and its gzip variant share one
    digest.
    """
    yield f"{_MAGIC} name={trace.name}\n"
    for record in trace.records:
        yield (
            f"{record.pc:x} {record.address:x} "
            f"{'W' if record.is_write else 'R'} {record.gap} "
            f"{'D' if record.depends else '-'}\n"
        )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip if the name ends in .gz)."""
    path = Path(path)
    with _open(path, "w") as stream:
        for line in trace_lines(trace):
            stream.write(line)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Every malformed record -- wrong field count, unparsable or
    out-of-range numbers, negative gaps, bad flags -- is rejected with
    the offending line number, and a final line cut off mid-record
    (e.g. a copy interrupted before the last newline) is reported as
    truncation rather than as a generic parse failure.

    Raises:
        ValueError: on a missing/garbled header, malformed or
            out-of-range record line (with the offending line number),
            a truncated final record, or a truncated gzip stream.
    """
    path = Path(path)
    records: List[TraceRecord] = []
    name = path.stem
    with _open(path, "r") as stream:
        try:
            header = stream.readline().rstrip("\n")
            if not header.startswith(_MAGIC):
                raise ValueError(f"{path}: not a repro trace file (bad header)")
            if "name=" in header:
                name = header.split("name=", 1)[1].strip()
            for line_number, raw_line in enumerate(stream, start=2):
                # A data line without its newline is the file's last line;
                # if it then fails to parse, say "truncated", not "garbage".
                truncated = "" if raw_line.endswith("\n") else " (truncated final record?)"
                line = raw_line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 5:
                    raise ValueError(
                        f"{path}:{line_number}: expected 5 fields, "
                        f"got {len(parts)}{truncated}"
                    )
                pc_text, address_text, kind, gap_text, depends_text = parts
                try:
                    pc = int(pc_text, 16)
                    address = int(address_text, 16)
                    gap = int(gap_text)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: malformed numeric field{truncated}"
                    ) from None
                if not 0 <= pc < _FIELD_LIMIT:
                    raise ValueError(
                        f"{path}:{line_number}: pc {pc_text} out of 64-bit range"
                    )
                if not 0 <= address < _FIELD_LIMIT:
                    raise ValueError(
                        f"{path}:{line_number}: address {address_text} "
                        f"out of 64-bit range"
                    )
                if gap < 0:
                    raise ValueError(
                        f"{path}:{line_number}: negative instruction gap {gap}"
                    )
                if kind not in ("R", "W"):
                    raise ValueError(f"{path}:{line_number}: bad access kind {kind!r}")
                if depends_text not in ("D", "-"):
                    raise ValueError(
                        f"{path}:{line_number}: bad dependence flag {depends_text!r}"
                    )
                records.append(
                    TraceRecord(pc, address, kind == "W", gap, depends_text == "D")
                )
        except EOFError:
            # gzip raises EOFError when the stream ends before the
            # end-of-stream marker (an interrupted write or copy).
            raise ValueError(f"{path}: truncated gzip stream") from None
    return Trace(name, records)
