"""Trace persistence.

Workload generation is deterministic, but regenerating a multi-hundred-
thousand-instruction trace still costs seconds; saving traces also lets
users bring *their own* traces (e.g. converted from Pin/DynamoRIO tools)
to the simulator.  The format is a line-oriented text file:

    # repro-trace v1 name=<name>
    <pc> <address> <W|R> <gap> <D|->

Fields are hexadecimal for pc/address, decimal for gap.  Lines starting
with ``#`` are comments.  Gzip is applied transparently for paths ending
in ``.gz``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Union

from repro.sim.trace import Trace, TraceRecord

__all__ = ["load_trace", "save_trace"]

_MAGIC = "# repro-trace v1"


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip if the name ends in .gz)."""
    path = Path(path)
    with _open(path, "w") as stream:
        stream.write(f"{_MAGIC} name={trace.name}\n")
        for record in trace.records:
            stream.write(
                f"{record.pc:x} {record.address:x} "
                f"{'W' if record.is_write else 'R'} {record.gap} "
                f"{'D' if record.depends else '-'}\n"
            )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ValueError: on a missing/garbled header or malformed record line
            (with the offending line number).
    """
    path = Path(path)
    records: List[TraceRecord] = []
    name = path.stem
    with _open(path, "r") as stream:
        header = stream.readline().rstrip("\n")
        if not header.startswith(_MAGIC):
            raise ValueError(f"{path}: not a repro trace file (bad header)")
        if "name=" in header:
            name = header.split("name=", 1)[1].strip()
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise ValueError(
                    f"{path}:{line_number}: expected 5 fields, got {len(parts)}"
                )
            pc_text, address_text, kind, gap_text, depends_text = parts
            try:
                pc = int(pc_text, 16)
                address = int(address_text, 16)
                gap = int(gap_text)
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: malformed numeric field"
                ) from None
            if kind not in ("R", "W"):
                raise ValueError(f"{path}:{line_number}: bad access kind {kind!r}")
            if depends_text not in ("D", "-"):
                raise ValueError(
                    f"{path}:{line_number}: bad dependence flag {depends_text!r}"
                )
            records.append(
                TraceRecord(pc, address, kind == "W", gap, depends_text == "D")
            )
    return Trace(name, records)
