"""Performance metrics used in the paper's figures.

* MPKI normalized to the LRU baseline (Figures 4 and 7);
* speedup: new IPC / baseline IPC, summarized by the geometric mean
  (Figures 5, 6, 8);
* normalized weighted speedup for multi-core workloads (Figure 10,
  methodology in Section VI-A.2): per thread, IPC in the shared cache is
  divided by that program's IPC running *alone* with the whole LLC under
  LRU; the sum is then normalized to the same sum under shared-LRU.

Service-level helpers (beyond the paper; shared with
:mod:`repro.loadsim`):

* nearest-rank percentiles (:func:`percentiles`) -- deterministic, no
  interpolation, so latency distributions pin byte-identically across
  runs;
* Jain's fairness index (:func:`jain_fairness_index`) over any
  per-tenant metric.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

__all__ = [
    "geometric_mean",
    "jain_fairness_index",
    "normalized_value",
    "percentiles",
    "weighted_speedup",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; raises on empty input or non-positive entries."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def normalized_value(value: float, baseline: float) -> float:
    """``value / baseline`` with a zero-baseline guard."""
    if baseline == 0:
        raise ValueError("cannot normalize to a zero baseline")
    return value / baseline


def percentiles(
    values: Sequence[float], points: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[float, float]:
    """Nearest-rank percentiles of ``values``.

    The nearest-rank definition (rank ``ceil(p/100 * n)``, 1-based) always
    returns an element *of the sample* -- no interpolation -- so repeated
    runs over identical samples produce byte-identical results, which the
    load-simulator determinism tests rely on.  ``p = 0`` maps to the
    minimum by convention.

    Raises:
        ValueError: on an empty sample or a point outside ``[0, 100]``.
    """
    if not values:
        raise ValueError("percentiles of an empty sample")
    ordered = sorted(values)
    count = len(ordered)
    result: Dict[float, float] = {}
    for point in points:
        if not 0.0 <= point <= 100.0:
            raise ValueError(f"percentile point must be in [0, 100], got {point}")
        rank = math.ceil(point / 100.0 * count)
        result[point] = ordered[max(rank, 1) - 1]
    return result


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal allocations; ``1/n`` means one tenant gets
    everything.  Values must be non-negative; an all-zero sample is
    defined as perfectly fair (every tenant got the same nothing).

    Raises:
        ValueError: on an empty sample or a negative entry.
    """
    if not values:
        raise ValueError("fairness index of an empty sample")
    total = 0.0
    squares = 0.0
    for value in values:
        if value < 0:
            raise ValueError(f"fairness index requires non-negative values, got {value}")
        total += value
        squares += value * value
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def weighted_speedup(
    ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> float:
    """Weighted IPC of a multiprogrammed run (paper Section VI-A.2).

    Args:
        ipcs: per-thread IPC in the shared-cache run under the evaluated
            policy.
        single_ipcs: per-thread IPC of the same program running alone with
            the full LLC under LRU.

    Returns:
        ``sum_i ipcs[i] / single_ipcs[i]``.  Callers normalize this against
        the same quantity for the shared-LRU run to get the paper's
        "normalized weighted speedup".
    """
    if len(ipcs) != len(single_ipcs):
        raise ValueError(
            f"{len(ipcs)} shared IPCs vs {len(single_ipcs)} single-run IPCs"
        )
    if not ipcs:
        raise ValueError("weighted speedup of an empty workload")
    total = 0.0
    for ipc, single in zip(ipcs, single_ipcs):
        if single <= 0:
            raise ValueError(f"single-run IPC must be positive, got {single}")
        total += ipc / single
    return total
