"""Performance metrics used in the paper's figures.

* MPKI normalized to the LRU baseline (Figures 4 and 7);
* speedup: new IPC / baseline IPC, summarized by the geometric mean
  (Figures 5, 6, 8);
* normalized weighted speedup for multi-core workloads (Figure 10,
  methodology in Section VI-A.2): per thread, IPC in the shared cache is
  divided by that program's IPC running *alone* with the whole LLC under
  LRU; the sum is then normalized to the same sum under shared-LRU.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["geometric_mean", "normalized_value", "weighted_speedup"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; raises on empty input or non-positive entries."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def normalized_value(value: float, baseline: float) -> float:
    """``value / baseline`` with a zero-baseline guard."""
    if baseline == 0:
        raise ValueError("cannot normalize to a zero baseline")
    return value / baseline


def weighted_speedup(
    ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> float:
    """Weighted IPC of a multiprogrammed run (paper Section VI-A.2).

    Args:
        ipcs: per-thread IPC in the shared-cache run under the evaluated
            policy.
        single_ipcs: per-thread IPC of the same program running alone with
            the full LLC under LRU.

    Returns:
        ``sum_i ipcs[i] / single_ipcs[i]``.  Callers normalize this against
        the same quantity for the shared-LRU run to get the paper's
        "normalized weighted speedup".
    """
    if len(ipcs) != len(single_ipcs):
        raise ValueError(
            f"{len(ipcs)} shared IPCs vs {len(single_ipcs)} single-run IPCs"
        )
    if not ipcs:
        raise ValueError("weighted speedup of an empty workload")
    total = 0.0
    for ipc, single in zip(ipcs, single_ipcs):
        if single <= 0:
            raise ValueError(f"single-run IPC must be positive, got {single}")
        total += ipc / single
    return total
