"""Array-native batched replay kernels.

The inlined object kernel (:func:`repro.sim.replay._replay_fast`) still
pays ~15 interpreted operations and up to three bound-method calls per
access: per-hit :class:`~repro.cache.block.CacheBlock` attribute writes,
per-fill seven-field block updates, and policy callbacks.  The kernels
here simulate on the structure-of-arrays substrate
(:mod:`repro.cache.soa`) instead: residency dicts over precomputed
block keys, compact recency encodings, and flat frame planes, with
every policy decision inlined into the loop.  Per-block bookkeeping the
figures never read during the replay -- ``access_count``,
``last_access_seq``, and the dirty bit -- is dropped from the hot loop
entirely and recovered at eviction/commit time from the shared
:class:`~repro.cache.soa.ReplayIndex` (see that module's docstring for
why the recovery is exact).

Result transparency is the same contract the object kernel pins: the
same hit vector, the same :class:`~repro.cache.stats.CacheStats`, the
same final block contents and policy state as the reference loop
``[cache.access(a) for a in accesses]``.
``tests/test_replay_array.py`` holds the golden and property tests.

Loop shape notes (all measured on real filtered LLC streams):

* **Miss marking.**  The hit vector is prefilled ``True`` and flipped
  at misses, so the hit path -- the common case -- writes nothing.
* **Per-set batched** (LRU, tree PLRU, SRRIP): these policies keep no
  cross-set state, so the stream is replayed one set at a time with the
  set's recency state bound to locals -- the grouping comes precomputed
  from the :class:`~repro.cache.soa.ReplayIndex`.  LRU recency is the
  iteration order of an :class:`~collections.OrderedDict` (``tag ->
  way``), so a promote is one C ``move_to_end`` and a victim is one C
  ``popitem``; the policy's recency stacks are reconstructed from the
  dict order at the end of each set.  PLRU trees are packed into a
  single int so a touch is two precomputed bit masks.
* **Stream-order** (random, BIP, DIP, BRRIP, DRRIP): a global RNG
  stream, fill throttle, or PSEL counter makes cross-set access order
  semantically relevant, so these walk the stream in order -- but over
  ONE global residency dict keyed by the precomputed block key
  (``tag << index_bits | set_index``), which is cheaper than a per-set
  dict-of-dicts lookup, plus flat frame-indexed planes
  (``frame = set_index * associativity + way``).
* **RRIP victims.**  RRPVs never exceed the maximum, so the object
  path's scan-and-age loop reduces to: if a max-RRPV way exists (the
  common case under mostly-distant insertion), take the first by C
  ``list.index``; otherwise age by the deficit in one slice-assign.

* **Dead-block batched** (the paper's headline ``sampler`` /
  ``random_sampler`` techniques): with the default sampling predictor,
  all training flows through the sampler, which observes every access
  to a sampled set regardless of LLC hit/miss -- so the per-access
  prediction bits and the final sampler/table state are a pure function
  of the stream, precomputed once per workload as a
  :class:`~repro.cache.soa.PredictionPlane` (cached on the
  :class:`~repro.sim.hierarchy.PreparedStream`, shared by every
  default-shape DBRB technique).  The LLC-side replay then reduces to
  the default policy's kernel shape plus three sparse twists: a dead
  prediction on a miss bypasses, a predicted-dead way (LRU-first for an
  LRU default, way-order for random) overrides the victim, and hits
  refresh the per-way dead bit.

Eligibility and fallback: a policy opts in by registering a kernel on
its *exact* class
(:meth:`repro.replacement.base.ReplacementPolicy.register_array_kernel`);
everything else -- CDBP/TDBP, SHiP, TADIP, optimal, the VVC cache
subclass, observer-attached or probe-enabled or paranoid replays --
falls through to the object kernel, which stays the bit-identity
oracle.  The DBRB kernel additionally declines every Figure 6 ablation
shape (``use_sampler=False``, single-table, non-default sampler or
table geometry, bypass/replacement knobs off, non-LRU/random defaults,
pre-trained predictors) with a ``dbrb-*`` fallback reason; multicore
merged replays already fall back via ``no-decomposition``.
``REPRO_ARRAY_KERNEL=0`` disables the array path globally.  The chosen
kernel and any fallback reason are recorded on the cache
(``last_replay_kernel`` / ``last_replay_fallback``) for run manifests
and the service's ``/stats``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.cache.soa import PredictionPlane, ReplayIndex, SoACache
from repro.core.policy import DBRBPolicy
from repro.core.predictor import SamplingDeadBlockPredictor
from repro.replacement.dip import BIPPolicy, DIPPolicy
from repro.replacement.lru import LRUPolicy
from repro.replacement.plru import TreePLRUPolicy
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy

__all__ = ["array_kernel_enabled", "maybe_replay_array", "select_kernel"]

_FALSY = ("0", "false", "no", "off")

_MASK64 = (1 << 64) - 1
_XORSHIFT_MULT = 0x2545F4914F6CDD1D


def array_kernel_enabled() -> bool:
    """``REPRO_ARRAY_KERNEL`` knob; unset defaults to enabled."""
    return os.environ.get("REPRO_ARRAY_KERNEL", "1").strip().lower() not in _FALSY


def select_kernel(cache, set_indices) -> Tuple[Optional[object], Optional[str]]:
    """Pick the array kernel for a replay, or the fallback reason.

    The caller (:func:`repro.sim.replay.replay`) has already routed
    subclassed caches, observers, and enabled probes to the reference /
    object paths; this checks everything else the array path requires.
    """
    if not array_kernel_enabled():
        return None, "disabled"
    if cache.paranoid:
        return None, "paranoid"
    if set_indices is None:
        return None, "no-decomposition"
    if any(cache._tag_index):
        # Kernels assume a cold frame array (fills allocate ways densely
        # from zero); a warm cache replays on the object substrate.
        return None, "warm-cache"
    geometry = cache.geometry
    if len(set_indices) < geometry.num_sets * geometry.associativity:
        # The array path pays O(frames) for plane setup and commit-time
        # materialization; a stream shorter than the frame count cannot
        # amortize it (measured slower than the object kernel).
        return None, "small-stream"
    policy = cache.policy
    kernel = policy.array_kernel()
    if kernel is None:
        return None, f"policy:{type(policy).__name__}"
    reason = kernel.supports(cache, policy)
    if reason is not None:
        return None, reason
    return kernel, None


def maybe_replay_array(
    cache, accesses, set_indices, tags, stream=None
) -> Optional[List[bool]]:
    """Replay on the array substrate when eligible; else return None.

    On success the cache is left bit-identical to an object-kernel
    replay (blocks, tag index, statistics, policy state) and
    ``cache.last_replay_kernel`` is ``"array"``; on decline the fallback
    reason is recorded and the caller runs the object kernel.
    """
    kernel, reason = select_kernel(cache, set_indices)
    if kernel is None:
        cache.last_replay_kernel = "object"
        cache.last_replay_fallback = reason
        return None
    num_sets = cache.geometry.num_sets
    if stream is not None and hasattr(stream, "replay_index"):
        index = stream.replay_index(num_sets)
    else:
        index = ReplayIndex.build(accesses, set_indices, tags, None, num_sets)
    soa = SoACache.for_run(cache, index)
    hits, counters = kernel.run(
        cache, cache.policy, accesses, set_indices, tags, index, soa, stream
    )
    soa.to_cache(cache, accesses, index)
    (
        hit_count,
        miss_count,
        bypass_count,
        fill_count,
        evict_count,
        writeback_count,
        dead_victim_count,
    ) = counters
    stats = cache.stats
    stats.accesses += len(accesses)
    stats.hits += hit_count
    stats.misses += miss_count
    stats.bypasses += bypass_count
    stats.fills += fill_count
    stats.evictions += evict_count
    stats.writebacks += writeback_count
    stats.dead_block_victims += dead_victim_count
    cache.last_replay_kernel = "array"
    cache.last_replay_fallback = None
    return hits


def _finish(hits, filled_total, writeback_total, bypass_total=0, dead_victim_total=0):
    """Derive the replay counters from the hit vector and final
    occupancy: fills are the misses that were not bypassed (the simple
    policies never bypass, so there fills == misses) and evictions are
    the fills that displaced a resident block."""
    hit_total = hits.count(True)
    misses = len(hits) - hit_total
    fills = misses - bypass_total
    return hits, (
        hit_total,
        misses,
        bypass_total,
        fills,
        fills - filled_total,
        writeback_total,
        dead_victim_total,
    )


# ----------------------------------------------------------------------
# per-set batched kernels
# ----------------------------------------------------------------------
class _LRUKernel:
    """True LRU, one set at a time.  The per-set OrderedDict is both the
    residency lookup and the recency order (front = LRU, back = MRU), so
    a hit is a containment check plus ``move_to_end`` and an eviction is
    ``popitem(last=False)``.  The policy's recency stack is rebuilt from
    the dict order afterwards; LRU always inserts/promotes to MRU, so
    never-filled ways stay at the stack tail in their original order --
    exactly the object path's final state."""

    name = "lru"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        stacks = policy._stacks
        set_tags = index.set_tags
        next_write = index.next_write
        commit_set = soa.commit_set
        hits = [True] * len(accesses)
        filled_total = 0
        writeback_total = 0
        for set_index, positions in enumerate(index.set_positions):
            if not positions:
                continue
            od: "OrderedDict[int, int]" = OrderedDict()
            od_move = od.move_to_end
            od_pop = od.popitem
            way_fill = [0] * associativity
            filled = 0
            for position, tag in zip(positions, set_tags[set_index]):
                if tag in od:
                    od_move(tag)
                    continue
                hits[position] = False
                if filled < associativity:
                    way = filled
                    filled += 1
                else:
                    way = od_pop(False)[1]
                    if next_write[way_fill[way]] < position:
                        writeback_total += 1
                od[tag] = way
                way_fill[way] = position
            filled_total += filled
            stack = list(od.values())
            stack.reverse()
            if filled < associativity:
                stack.extend(range(filled, associativity))
            stacks[set_index] = stack
            commit_set(set_index, od, way_fill, filled)
        return _finish(hits, filled_total, writeback_total)


class _PLRUKernel:
    """Tree PLRU, one set at a time, with the tree packed into one int:
    touching a way is ``tree & and_mask | or_mask`` with masks
    precomputed per way, and only a victim walk reads the tree bit by
    bit."""

    name = "plru"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        levels = policy._levels
        tree_bits = associativity - 1
        trees = policy._trees
        and_masks = []
        or_masks = []
        for way in range(associativity):
            node = 0
            and_mask = -1
            or_mask = 0
            for level in range(levels - 1, -1, -1):
                went_right = (way >> level) & 1
                if went_right:
                    and_mask &= ~(1 << node)
                else:
                    or_mask |= 1 << node
                node = 2 * node + 1 + went_right
            and_masks.append(and_mask)
            or_masks.append(or_mask)
        set_tags = index.set_tags
        next_write = index.next_write
        commit_set = soa.commit_set
        hits = [True] * len(accesses)
        filled_total = 0
        writeback_total = 0
        for set_index, positions in enumerate(index.set_positions):
            if not positions:
                continue
            tree_list = trees[set_index]
            tree = 0
            for node, bit in enumerate(tree_list):
                if bit:
                    tree |= 1 << node
            lookup = {}
            lookup_get = lookup.get
            way_tags = [0] * associativity
            way_fill = [0] * associativity
            filled = 0
            for position, tag in zip(positions, set_tags[set_index]):
                way = lookup_get(tag)
                if way is not None:
                    tree = tree & and_masks[way] | or_masks[way]
                    continue
                hits[position] = False
                if filled < associativity:
                    way = filled
                    filled += 1
                else:
                    node = 0
                    way = 0
                    for _ in range(levels):
                        bit = (tree >> node) & 1
                        way = (way << 1) | bit
                        node = 2 * node + 1 + bit
                    if next_write[way_fill[way]] < position:
                        writeback_total += 1
                    del lookup[way_tags[way]]
                lookup[tag] = way
                way_tags[way] = tag
                way_fill[way] = position
                tree = tree & and_masks[way] | or_masks[way]
            filled_total += filled
            tree_list[:] = [(tree >> node) & 1 for node in range(tree_bits)]
            commit_set(set_index, lookup, way_fill, filled)
        return _finish(hits, filled_total, writeback_total)


class _SRRIPKernel:
    """Static RRIP (hit-priority), one set at a time, mutating the
    policy's live per-set RRPV lists with the guarded C-op victim."""

    name = "srrip"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        rrpv_max = policy.rrpv_max
        long_insert = rrpv_max - 1
        all_rrpv = policy._rrpv
        set_tags = index.set_tags
        next_write = index.next_write
        commit_set = soa.commit_set
        hits = [True] * len(accesses)
        filled_total = 0
        writeback_total = 0
        for set_index, positions in enumerate(index.set_positions):
            if not positions:
                continue
            rrpv = all_rrpv[set_index]
            rrpv_index = rrpv.index
            lookup = {}
            lookup_get = lookup.get
            way_tags = [0] * associativity
            way_fill = [0] * associativity
            filled = 0
            for position, tag in zip(positions, set_tags[set_index]):
                way = lookup_get(tag)
                if way is not None:
                    rrpv[way] = 0
                    continue
                hits[position] = False
                if filled < associativity:
                    way = filled
                    filled += 1
                else:
                    # RRPVs never exceed rrpv_max, so scan-and-age is
                    # index-if-present, else age by the deficit; the
                    # except arm only fires when aging is needed.
                    try:
                        way = rrpv_index(rrpv_max)
                    except ValueError:
                        deficit = rrpv_max - max(rrpv)
                        rrpv[:] = [value + deficit for value in rrpv]
                        way = rrpv_index(rrpv_max)
                    if next_write[way_fill[way]] < position:
                        writeback_total += 1
                    del lookup[way_tags[way]]
                lookup[tag] = way
                way_tags[way] = tag
                way_fill[way] = position
                rrpv[way] = long_insert
            filled_total += filled
            commit_set(set_index, lookup, way_fill, filled)
        return _finish(hits, filled_total, writeback_total)


# ----------------------------------------------------------------------
# stream-order kernels (global policy state)
# ----------------------------------------------------------------------
def _commit_flat(soa, index, way_keys, way_fill, filled_by_set, associativity,
                 pred=None):
    """Commit the flat frame planes of a stream-order kernel: rebuild
    each touched set's ``tag -> way`` dict from the stored block keys
    (``tag = key >> index_bits``) and hand it to the substrate.  ``pred``
    is the DBRB kernel's frame-indexed predicted-dead plane; sliced
    per set on the way through."""
    index_bits = index.index_bits
    commit_set = soa.commit_set
    filled_total = 0
    for set_index, filled in enumerate(filled_by_set):
        if not filled:
            continue
        filled_total += filled
        base = set_index * associativity
        tag_to_way = {
            way_keys[base + way] >> index_bits: way for way in range(filled)
        }
        commit_set(
            set_index,
            tag_to_way,
            way_fill[base : base + associativity],
            filled,
            None if pred is None else pred[base : base + associativity],
        )
    return filled_total


class _RandomKernel:
    """Random replacement in stream order (the victim RNG draw sequence
    is global), with the xorshift64* step inlined and the generator
    state written back at the end."""

    name = "random"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        next_write = index.next_write
        way_keys = [0] * (index.num_sets * associativity)
        way_fill = [0] * (index.num_sets * associativity)
        filled_by_set = [0] * index.num_sets
        lookup = {}
        rng_state = policy._rng._state
        hits = [True] * len(accesses)
        writeback_total = 0
        for position, key in enumerate(index.block_keys):
            if key in lookup:
                continue
            hits[position] = False
            set_index = set_indices[position]
            base = set_index * associativity
            filled = filled_by_set[set_index]
            if filled < associativity:
                frame = base + filled
                filled_by_set[set_index] = filled + 1
            else:
                x = rng_state
                x ^= (x << 13) & _MASK64
                x ^= x >> 7
                x ^= (x << 17) & _MASK64
                rng_state = x
                frame = base + (((x * _XORSHIFT_MULT) & _MASK64) >> 11) % associativity
                if next_write[way_fill[frame]] < position:
                    writeback_total += 1
                del lookup[way_keys[frame]]
            lookup[key] = frame
            way_keys[frame] = key
            way_fill[frame] = position
        policy._rng._state = rng_state
        filled_total = _commit_flat(
            soa, index, way_keys, way_fill, filled_by_set, associativity
        )
        return _finish(hits, filled_total, writeback_total)


class _BIPKernel:
    """Bimodal insertion in stream order (the 1/epsilon fill throttle is
    a global counter).

    Recency runs on per-set OrderedDicts over *all* ways (front = LRU,
    back = MRU), seeded lazily from the live stack on a set's first
    touch: a recency move is then one O(1) relink instead of the
    stack's O(associativity) ``list.remove``.  Because every way is in
    the dict -- including never-filled ones -- the order maps exactly
    onto the object stack (reversed), so BIP's LRU-position inserts
    stay faithful and the final stacks are rebuilt per touched set.
    """

    name = "bip"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        epsilon = policy.epsilon_inverse
        fill_count = policy._fill_count
        stacks = policy._stacks
        next_write = index.next_write
        num_sets = index.num_sets
        way_keys = [0] * (num_sets * associativity)
        way_fill = [0] * (num_sets * associativity)
        filled_by_set = [0] * num_sets
        ods: List[Optional["OrderedDict[int, None]"]] = [None] * num_sets
        movers: List = [None] * num_sets
        lookup = {}
        lookup_get = lookup.get
        hits = [True] * len(accesses)
        writeback_total = 0
        for position, key in enumerate(index.block_keys):
            way = lookup_get(key)
            if way is not None:
                # Promote to MRU (object: remove + insert at stack head).
                movers[set_indices[position]](way)
                continue
            hits[position] = False
            set_index = set_indices[position]
            od = ods[set_index]
            if od is None:
                od = OrderedDict()
                for entry in reversed(stacks[set_index]):
                    od[entry] = None
                ods[set_index] = od
                movers[set_index] = od.move_to_end
            base = set_index * associativity
            filled = filled_by_set[set_index]
            if filled < associativity:
                way = filled
                filled_by_set[set_index] = filled + 1
            else:
                way = next(iter(od))  # front = LRU = object stack[-1]
                frame = base + way
                if next_write[way_fill[frame]] < position:
                    writeback_total += 1
                del lookup[way_keys[frame]]
            frame = base + way
            lookup[key] = way
            way_keys[frame] = key
            way_fill[frame] = position
            fill_count += 1
            if fill_count % epsilon == 0:
                movers[set_index](way)  # MRU insert
            else:
                movers[set_index](way, False)  # LRU-position insert
        policy._fill_count = fill_count
        for set_index, od in enumerate(ods):
            if od is not None:
                stack = list(od)
                stack.reverse()
                stacks[set_index][:] = stack
        filled_total = _commit_flat(
            soa, index, way_keys, way_fill, filled_by_set, associativity
        )
        return _finish(hits, filled_total, writeback_total)


class _DIPKernel:
    """DIP set dueling in stream order (the PSEL counter and the BIP
    fill throttle are global), on the same per-set OrderedDict recency
    structure as :class:`_BIPKernel`."""

    name = "dip"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        lru_leader = policy._LRU_LEADER
        bip_leader = policy._BIP_LEADER
        roles = policy._set_role
        psel = policy.psel
        psel_max = policy.psel_max
        psel_half = psel_max // 2
        epsilon = policy.epsilon_inverse
        fill_count = policy._fill_count
        stacks = policy._stacks
        next_write = index.next_write
        num_sets = index.num_sets
        way_keys = [0] * (num_sets * associativity)
        way_fill = [0] * (num_sets * associativity)
        filled_by_set = [0] * num_sets
        ods: List[Optional["OrderedDict[int, None]"]] = [None] * num_sets
        movers: List = [None] * num_sets
        lookup = {}
        lookup_get = lookup.get
        hits = [True] * len(accesses)
        writeback_total = 0
        for position, key in enumerate(index.block_keys):
            way = lookup_get(key)
            if way is not None:
                movers[set_indices[position]](way)
                continue
            hits[position] = False
            set_index = set_indices[position]
            od = ods[set_index]
            if od is None:
                od = OrderedDict()
                for entry in reversed(stacks[set_index]):
                    od[entry] = None
                ods[set_index] = od
                movers[set_index] = od.move_to_end
            role = roles[set_index]
            if role == lru_leader:
                if psel < psel_max:
                    psel += 1
            elif role == bip_leader:
                if psel > 0:
                    psel -= 1
            base = set_index * associativity
            filled = filled_by_set[set_index]
            if filled < associativity:
                way = filled
                filled_by_set[set_index] = filled + 1
            else:
                way = next(iter(od))  # front = LRU = object stack[-1]
                frame = base + way
                if next_write[way_fill[frame]] < position:
                    writeback_total += 1
                del lookup[way_keys[frame]]
            frame = base + way
            lookup[key] = way
            way_keys[frame] = key
            way_fill[frame] = position
            if role == lru_leader:
                insert_mru = True
            elif role == bip_leader or psel > psel_half:
                fill_count += 1
                insert_mru = fill_count % epsilon == 0
            else:
                insert_mru = True
            if insert_mru:
                movers[set_index](way)
            else:
                movers[set_index](way, False)
        policy.psel = psel
        policy._fill_count = fill_count
        for set_index, od in enumerate(ods):
            if od is not None:
                stack = list(od)
                stack.reverse()
                stacks[set_index][:] = stack
        filled_total = _commit_flat(
            soa, index, way_keys, way_fill, filled_by_set, associativity
        )
        return _finish(hits, filled_total, writeback_total)


class _BRRIPKernel:
    """Bimodal RRIP in stream order (global fill throttle) over a flat
    RRPV plane; the policy's live per-set lists are refreshed from the
    plane at the end."""

    name = "brrip"

    def supports(self, cache, policy) -> Optional[str]:
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        rrpv_max = policy.rrpv_max
        long_insert = rrpv_max - 1
        epsilon = policy.epsilon_inverse
        fill_count = policy._fill_count
        all_rrpv = policy._rrpv
        flat_rrpv: List[int] = []
        for values in all_rrpv:
            flat_rrpv.extend(values)
        flat_index = flat_rrpv.index
        next_write = index.next_write
        way_keys = [0] * (index.num_sets * associativity)
        way_fill = [0] * (index.num_sets * associativity)
        filled_by_set = [0] * index.num_sets
        lookup = {}
        lookup_get = lookup.get
        hits = [True] * len(accesses)
        writeback_total = 0
        for position, key in enumerate(index.block_keys):
            frame = lookup_get(key)
            if frame is not None:
                flat_rrpv[frame] = 0
                continue
            hits[position] = False
            set_index = set_indices[position]
            base = set_index * associativity
            filled = filled_by_set[set_index]
            if filled < associativity:
                frame = base + filled
                filled_by_set[set_index] = filled + 1
            else:
                # Bounded index over the flat plane -- no slice copy on
                # the common path; the except arm only fires when the
                # whole set needs aging (no RRPV at the maximum).
                try:
                    frame = flat_index(rrpv_max, base, base + associativity)
                except ValueError:
                    hi = base + associativity
                    segment = flat_rrpv[base:hi]
                    deficit = rrpv_max - max(segment)
                    segment = [value + deficit for value in segment]
                    flat_rrpv[base:hi] = segment
                    frame = base + segment.index(rrpv_max)
                if next_write[way_fill[frame]] < position:
                    writeback_total += 1
                del lookup[way_keys[frame]]
            lookup[key] = frame
            way_keys[frame] = key
            way_fill[frame] = position
            fill_count += 1
            flat_rrpv[frame] = (
                long_insert if fill_count % epsilon == 0 else rrpv_max
            )
        policy._fill_count = fill_count
        for set_index, filled in enumerate(filled_by_set):
            if filled:
                base = set_index * associativity
                all_rrpv[set_index][:] = flat_rrpv[base : base + associativity]
        filled_total = _commit_flat(
            soa, index, way_keys, way_fill, filled_by_set, associativity
        )
        return _finish(hits, filled_total, writeback_total)


class _DRRIPKernel:
    """Single-core DRRIP set dueling in stream order over a flat RRPV
    plane.  The thread-aware variant consults per-access core ids
    against per-core PSELs; ``supports`` declines it so multicore runs
    keep the object kernel."""

    name = "drrip"

    def supports(self, cache, policy) -> Optional[str]:
        if policy.num_cores > 1:
            return "thread-aware-drrip"
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        associativity = cache.geometry.associativity
        rrpv_max = policy.rrpv_max
        long_insert = rrpv_max - 1
        epsilon = policy.epsilon_inverse
        fill_count = policy._fill_count
        psel = policy.psels[0]
        psel_max = policy.psel_max
        psel_half = psel_max // 2
        follower = policy._FOLLOWER
        leader_owner = policy._leader_owner
        leader_is_brrip = policy._leader_is_brrip
        all_rrpv = policy._rrpv
        flat_rrpv: List[int] = []
        for values in all_rrpv:
            flat_rrpv.extend(values)
        flat_index = flat_rrpv.index
        next_write = index.next_write
        way_keys = [0] * (index.num_sets * associativity)
        way_fill = [0] * (index.num_sets * associativity)
        filled_by_set = [0] * index.num_sets
        lookup = {}
        lookup_get = lookup.get
        hits = [True] * len(accesses)
        writeback_total = 0
        for position, key in enumerate(index.block_keys):
            frame = lookup_get(key)
            if frame is not None:
                flat_rrpv[frame] = 0
                continue
            hits[position] = False
            set_index = set_indices[position]
            owner = leader_owner[set_index]
            is_brrip_leader = owner != follower and leader_is_brrip[set_index]
            if owner != follower:
                if is_brrip_leader:
                    if psel > 0:
                        psel -= 1
                elif psel < psel_max:
                    psel += 1
            base = set_index * associativity
            filled = filled_by_set[set_index]
            if filled < associativity:
                frame = base + filled
                filled_by_set[set_index] = filled + 1
            else:
                # Bounded index over the flat plane -- no slice copy on
                # the common path; the except arm only fires when the
                # whole set needs aging (no RRPV at the maximum).
                try:
                    frame = flat_index(rrpv_max, base, base + associativity)
                except ValueError:
                    hi = base + associativity
                    segment = flat_rrpv[base:hi]
                    deficit = rrpv_max - max(segment)
                    segment = [value + deficit for value in segment]
                    flat_rrpv[base:hi] = segment
                    frame = base + segment.index(rrpv_max)
                if next_write[way_fill[frame]] < position:
                    writeback_total += 1
                del lookup[way_keys[frame]]
            lookup[key] = frame
            way_keys[frame] = key
            way_fill[frame] = position
            if is_brrip_leader or (owner == follower and psel > psel_half):
                fill_count += 1
                value = long_insert if fill_count % epsilon == 0 else rrpv_max
            else:
                value = long_insert
            flat_rrpv[frame] = value
        policy.psels[0] = psel
        policy._fill_count = fill_count
        for set_index, filled in enumerate(filled_by_set):
            if filled:
                base = set_index * associativity
                all_rrpv[set_index][:] = flat_rrpv[base : base + associativity]
        filled_total = _commit_flat(
            soa, index, way_keys, way_fill, filled_by_set, associativity
        )
        return _finish(hits, filled_total, writeback_total)


# ----------------------------------------------------------------------
# dead-block replacement and bypass (the paper's headline technique)
# ----------------------------------------------------------------------
class _DBRBKernel:
    """DBRB over the default sampling predictor, in two variants keyed
    off the default policy's exact type.

    The predictor side is entirely precomputed: the shared
    :class:`~repro.cache.soa.PredictionPlane` carries ``dead[p]`` -- the
    prediction the object path would assign on a hit (``touch``) and
    consult on a miss (``predict_fill`` / ``install``, identical within
    one access since no training separates them) -- plus the final
    sampler/table state, installed into this replay's fresh predictor
    at the end.  The LLC side then follows the object semantics of
    :class:`~repro.core.policy.DBRBPolicy` exactly:

    * hit: default recency update, then the way's dead bit becomes
      ``dead[p]``;
    * miss with ``dead[p]``: bypass (``enable_bypass`` is required by
      ``supports``), nothing else changes;
    * fill into a full set: the predicted-dead victim closest to LRU
      (LRU default: walk the recency order from the LRU end; random
      default: lowest way) wins, else the default victim -- the random
      default's RNG is drawn *only* when no dead way exists;
    * fill: the new block's dead bit is ``dead[p]``, necessarily False
      here because a True prediction bypassed.

    Writebacks, ``access_count`` / ``last_access_seq``, and the dirty
    bit keep the shared :class:`~repro.cache.soa.ReplayIndex` recovery:
    the residency argument survives bypass because a bypassed access is
    by definition a miss, and a miss on a tag filled at ``f`` and still
    resident would contradict ``f`` being the final fill.
    """

    name = "dbrb"

    def supports(self, cache, policy) -> Optional[str]:
        predictor = policy.predictor
        if type(predictor) is not SamplingDeadBlockPredictor:
            return f"dbrb-predictor:{type(predictor).__name__}"
        default = policy.default
        if type(default) is not LRUPolicy and type(default) is not RandomPolicy:
            return f"dbrb-default:{type(default).__name__}"
        if not policy.enable_bypass:
            return "dbrb-no-bypass"
        if not policy.enable_replacement:
            return "dbrb-no-replacement"
        if not predictor.use_sampler:
            return "dbrb-no-sampler"
        if not predictor.skewed:
            return "dbrb-single-table"
        if (
            predictor._sampler_sets != 32
            or predictor._sampler_assoc != 12
            or predictor._tag_bits != 15
            or predictor._pc_bits != 15
        ):
            return "dbrb-sampler-geometry"
        tables = predictor.tables
        if (
            tables.num_tables != 3
            or len(tables.tables[0]) != 4096
            or tables.threshold != 8
            or tables.counter_max != 3
        ):
            return "dbrb-table-geometry"
        sampler = predictor.sampler
        if (
            sampler is None
            or sampler.accesses
            or any(entry.valid for entries in sampler.sets for entry in entries)
            or any(map(any, tables.tables))
        ):
            # The plane simulates from a cold predictor; a pre-trained
            # one (warmup experiments) replays on the object kernel.
            return "dbrb-warm-predictor"
        return None

    def run(self, cache, policy, accesses, set_indices, tags, index, soa, stream=None):
        num_sets = cache.geometry.num_sets
        if stream is not None and hasattr(stream, "prediction_plane"):
            plane = stream.prediction_plane(num_sets)
        else:
            plane = PredictionPlane.build(accesses, set_indices, tags, num_sets)
        if type(policy.default) is LRUPolicy:
            result = self._run_lru(cache, policy, accesses, index, soa, plane)
        else:
            result = self._run_random(
                cache, policy, accesses, set_indices, index, soa, plane
            )
        plane.install(policy.predictor)
        return result

    def _run_lru(self, cache, policy, accesses, index, soa, plane):
        """Per-set batched, like :class:`_LRUKernel`: the OrderedDict is
        residency and recency at once (front = LRU), so the dead-victim
        walk from the LRU end is iteration from the front, and a middle
        deletion preserves the remaining order exactly as the object
        path's ``stack.remove`` does."""
        associativity = cache.geometry.associativity
        stacks = policy.default._stacks
        dead = plane.dead
        set_tags = index.set_tags
        next_write = index.next_write
        commit_set = soa.commit_set
        hits = [True] * len(accesses)
        filled_total = 0
        writeback_total = 0
        bypass_total = 0
        dead_victim_total = 0
        for set_index, positions in enumerate(index.set_positions):
            if not positions:
                continue
            od: "OrderedDict[int, int]" = OrderedDict()
            od_get = od.get
            od_move = od.move_to_end
            od_pop = od.popitem
            way_fill = [0] * associativity
            way_dead = [0] * associativity
            ndead = 0
            filled = 0
            for position, tag in zip(positions, set_tags[set_index]):
                way = od_get(tag)
                if way is not None:
                    od_move(tag)
                    prediction = dead[position]
                    if way_dead[way] != prediction:
                        way_dead[way] = prediction
                        ndead += 1 if prediction else -1
                    continue
                hits[position] = False
                if dead[position]:
                    bypass_total += 1
                    continue
                if filled < associativity:
                    way = filled
                    filled += 1
                else:
                    if ndead:
                        # First predicted-dead way from the LRU end.
                        for victim_tag, victim_way in od.items():
                            if way_dead[victim_way]:
                                break
                        way = victim_way
                        del od[victim_tag]
                        way_dead[way] = 0
                        ndead -= 1
                        dead_victim_total += 1
                    else:
                        way = od_pop(False)[1]
                    if next_write[way_fill[way]] < position:
                        writeback_total += 1
                od[tag] = way
                way_fill[way] = position
            filled_total += filled
            stack = list(od.values())
            stack.reverse()
            if filled < associativity:
                stack.extend(range(filled, associativity))
            stacks[set_index] = stack
            commit_set(set_index, od, way_fill, filled, way_dead)
        return _finish(
            hits, filled_total, writeback_total, bypass_total, dead_victim_total
        )

    def _run_random(self, cache, policy, accesses, set_indices, index, soa, plane):
        """Stream-order, like :class:`_RandomKernel` (the victim RNG draw
        sequence is global), with the dead bits on a flat frame plane so
        the way-order dead-victim scan is one C ``bytearray.find``."""
        associativity = cache.geometry.associativity
        dead = plane.dead
        next_write = index.next_write
        frames = index.num_sets * associativity
        way_keys = [0] * frames
        way_fill = [0] * frames
        pred = bytearray(frames)
        pred_find = pred.find
        filled_by_set = [0] * index.num_sets
        lookup = {}
        lookup_get = lookup.get
        rng_state = policy.default._rng._state
        hits = [True] * len(accesses)
        writeback_total = 0
        bypass_total = 0
        dead_victim_total = 0
        for position, key in enumerate(index.block_keys):
            frame = lookup_get(key)
            if frame is not None:
                pred[frame] = dead[position]
                continue
            hits[position] = False
            if dead[position]:
                bypass_total += 1
                continue
            set_index = set_indices[position]
            base = set_index * associativity
            filled = filled_by_set[set_index]
            if filled < associativity:
                frame = base + filled
                filled_by_set[set_index] = filled + 1
            else:
                frame = pred_find(1, base, base + associativity)
                if frame >= 0:
                    # Way-order dead-victim scan (non-LRU default).
                    pred[frame] = 0
                    dead_victim_total += 1
                else:
                    # No dead way: only now does the default draw.
                    x = rng_state
                    x ^= (x << 13) & _MASK64
                    x ^= x >> 7
                    x ^= (x << 17) & _MASK64
                    rng_state = x
                    frame = base + (
                        ((x * _XORSHIFT_MULT) & _MASK64) >> 11
                    ) % associativity
                if next_write[way_fill[frame]] < position:
                    writeback_total += 1
                del lookup[way_keys[frame]]
            lookup[key] = frame
            way_keys[frame] = key
            way_fill[frame] = position
        policy.default._rng._state = rng_state
        filled_total = _commit_flat(
            soa, index, way_keys, way_fill, filled_by_set, associativity, pred
        )
        return _finish(
            hits, filled_total, writeback_total, bypass_total, dead_victim_total
        )


# The Figure 4-8 baseline families opt in here; everything else falls
# back to the object kernel.  Registration is exact-type (see
# ReplacementPolicy.register_array_kernel), so e.g. TADIPPolicy (an
# LRUPolicy subclass) and SHiPPolicy (an SRRIP derivative) are NOT
# covered by their parents' kernels.  DBRBPolicy registers the sampler
# kernel; its ``supports`` narrows eligibility to the paper-default
# predictor shape over an LRU or random default.
LRUPolicy.register_array_kernel(_LRUKernel())
TreePLRUPolicy.register_array_kernel(_PLRUKernel())
SRRIPPolicy.register_array_kernel(_SRRIPKernel())
RandomPolicy.register_array_kernel(_RandomKernel())
BIPPolicy.register_array_kernel(_BIPKernel())
DIPPolicy.register_array_kernel(_DIPKernel())
BRRIPPolicy.register_array_kernel(_BRRIPKernel())
DRRIPPolicy.register_array_kernel(_DRRIPKernel())
DBRBPolicy.register_array_kernel(_DBRBKernel())
