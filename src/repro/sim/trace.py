"""Memory reference traces.

A trace is the interface between the workload generators and the machine
model: a sequence of memory operations, each annotated with the issuing
PC, the number of non-memory instructions preceding it, and whether it
depends on the previous memory operation (pointer chasing), which the
timing model uses to serialize miss latencies.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

__all__ = ["Trace", "TraceRecord"]


class TraceRecord(NamedTuple):
    """One memory operation.

    Attributes:
        pc: address of the memory instruction.
        address: byte address referenced.
        is_write: store (True) or load (False).
        gap: count of non-memory instructions executed since the previous
            memory operation; lets the trace carry full instruction counts
            without storing non-memory instructions.
        depends: True when the operation's address depends on the value
            loaded by the *previous* memory operation (pointer chasing);
            the timing model serializes such pairs.
    """

    pc: int
    address: int
    is_write: bool
    gap: int
    depends: bool


class Trace:
    """A named sequence of :class:`TraceRecord` plus instruction accounting.

    Attributes:
        name: workload name ("mcf_like", ...).
        records: the memory operations, in program order.
        instructions: total instruction count (memory ops + all gaps).
    """

    __slots__ = ("instructions", "name", "records")

    def __init__(
        self,
        name: str,
        records: List[TraceRecord],
        instructions: Optional[int] = None,
    ) -> None:
        """``instructions`` may be passed when the caller already knows the
        total (e.g. :meth:`concatenate`, trace deserialization), skipping
        the O(n) summation over ``records``."""
        self.name = name
        self.records = records
        if instructions is None:
            instructions = sum(record.gap for record in records) + len(records)
        self.instructions = instructions

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that are memory operations."""
        if self.instructions == 0:
            return 0.0
        return len(self.records) / self.instructions

    @staticmethod
    def concatenate(name: str, traces: Iterable["Trace"]) -> "Trace":
        """Join several traces into one (used by phase-based workloads).

        Each piece already carries its own total, so the joined count is a
        sum over pieces rather than a second walk over every record.
        """
        records: List[TraceRecord] = []
        instructions = 0
        for trace in traces:
            records.extend(trace.records)
            instructions += trace.instructions
        return Trace(name, records, instructions=instructions)

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, {len(self.records)} memory ops, "
            f"{self.instructions} instructions)"
        )
