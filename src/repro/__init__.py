"""repro: a reproduction of *Sampling Dead Block Prediction for Last-Level
Caches* (Khan, Tian, Jimenez -- MICRO-43, 2010).

The package implements the paper's sampling dead block predictor and the
dead-block replacement-and-bypass optimization it drives, together with
every substrate the paper's evaluation needs: a three-level cache
hierarchy with trace-driven simulation, an out-of-order timing model, the
baseline predictors (reftrace, counting/LvP) and policies (DIP, TADIP,
RRIP, Belady-optimal-with-bypass), synthetic SPEC-CPU-2006-like
workloads, and CACTI-like storage/power accounting.

Quick start::

    from repro import (
        Cache, DBRBPolicy, LRUPolicy, MachineConfig,
        SamplingDeadBlockPredictor, SingleCoreSystem, build_trace,
    )

    config = MachineConfig().scaled(8)          # a 256KB-LLC machine
    system = SingleCoreSystem(config)
    trace = build_trace("hmmer", 200_000, config.llc.size_bytes)
    filtered = system.prepare(trace)

    lru = system.run(filtered, lambda g, a: LRUPolicy(), "lru")
    dbrb = system.run(
        filtered,
        lambda g, a: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
        "sampler",
    )
    print(lru.mpki, "->", dbrb.mpki)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
scripts that regenerate every table and figure of the paper.
"""

from repro.cache import Cache, CacheAccess, CacheGeometry, CacheStats
from repro.core import (
    DBRBPolicy,
    Sampler,
    SamplingDeadBlockPredictor,
    SkewedCounterTable,
)
from repro.predictors import (
    AIPPredictor,
    BurstFilter,
    CountingPredictor,
    DeadBlockPredictor,
    RefTracePredictor,
    TimeBasedPredictor,
)
from repro.replacement import (
    BIPPolicy,
    DIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    OptimalPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    TADIPPolicy,
    TreePLRUPolicy,
    annotate_next_use,
)
from repro.sim import (
    CoreModel,
    MachineConfig,
    MulticoreSystem,
    RunResult,
    SingleCoreSystem,
    Trace,
    TraceRecord,
)
from repro.workloads import (
    ALL_BENCHMARKS,
    MIXES,
    SINGLE_THREAD_SUBSET,
    build_mix_traces,
    build_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AIPPredictor",
    "ALL_BENCHMARKS",
    "BIPPolicy",
    "BurstFilter",
    "Cache",
    "CacheAccess",
    "CacheGeometry",
    "CacheStats",
    "CoreModel",
    "CountingPredictor",
    "DBRBPolicy",
    "DIPPolicy",
    "DRRIPPolicy",
    "DeadBlockPredictor",
    "LRUPolicy",
    "MIXES",
    "MachineConfig",
    "MulticoreSystem",
    "OptimalPolicy",
    "RandomPolicy",
    "RefTracePredictor",
    "ReplacementPolicy",
    "RunResult",
    "SINGLE_THREAD_SUBSET",
    "SRRIPPolicy",
    "Sampler",
    "SamplingDeadBlockPredictor",
    "SingleCoreSystem",
    "SkewedCounterTable",
    "TADIPPolicy",
    "TimeBasedPredictor",
    "Trace",
    "TraceRecord",
    "TreePLRUPolicy",
    "annotate_next_use",
    "build_mix_traces",
    "build_trace",
    "__version__",
]
