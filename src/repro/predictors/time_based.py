"""Time-based dead block prediction (Hu, Kaxiras, Martonosi 2002).

Paper Section II-A.2: the timekeeping predictor "learns the number of
cycles a block is live and predicts it dead if it is not accessed for
twice that number of cycles".  Abella et al. (IATAC) proposed the same
idea counting *references* rather than cycles.

In our trace-driven setting the clock is the global access sequence
number (``access.seq``), which is proportional to cycles for a fixed
workload; set ``count_references=True`` for the Abella-style variant where
the clock is the per-set access count.

Deadness is inherently *dynamic* here -- it depends on how long the block
has sat idle -- so this predictor overrides :meth:`is_dead_now` instead of
precomputing a bit, and the DBRB policy consults it at victim-selection
time.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.predictors.base import DeadBlockPredictor
from repro.utils.hashing import fold_xor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["TimeBasedPredictor"]

_FILL_KEY = "tb_fill_time"
_LAST_KEY = "tb_last_time"
_CTX_KEY = "tb_context"


class TimeBasedPredictor(DeadBlockPredictor):
    """Live-time timeout predictor.

    Args:
        pc_bits: width of the context (fill PC hash) indexing the learned
            live-time table.
        multiplier: a block is dead after ``multiplier`` times its learned
            live time without an access (Hu et al. use 2).
        count_references: use per-set reference counts as the clock
            (Abella et al.) instead of the global sequence number.
    """

    name = "time"

    def __init__(
        self,
        pc_bits: int = 12,
        multiplier: int = 2,
        count_references: bool = False,
    ) -> None:
        super().__init__()
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.pc_bits = pc_bits
        self.multiplier = multiplier
        self.count_references = count_references
        # Learned live time per context; 0 = nothing learned yet.
        self.live_times: List[int] = [0] * (1 << pc_bits)
        self._set_clock: List[int] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        self._set_clock = [0] * cache.geometry.num_sets

    # ------------------------------------------------------------------
    def _now(self, set_index: int, access: "CacheAccess") -> int:
        if self.count_references:
            return self._set_clock[set_index]
        return access.seq

    def _advance(self, set_index: int) -> None:
        if self.count_references:
            self._set_clock[set_index] += 1

    def _context(self, pc: int) -> int:
        return fold_xor(pc, self.pc_bits)

    # ------------------------------------------------------------------
    # predictor events
    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        self._advance(set_index)
        block = self.cache.sets[set_index][way]
        block.meta[_LAST_KEY] = self._now(set_index, access)
        return False

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        self._advance(set_index)
        block = self.cache.sets[set_index][way]
        now = self._now(set_index, access)
        block.meta[_FILL_KEY] = now
        block.meta[_LAST_KEY] = now
        block.meta[_CTX_KEY] = self._context(access.pc)
        return False

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        block = self.cache.sets[set_index][way]
        meta = block.meta
        context = meta.get(_CTX_KEY)
        if context is None:
            return
        live_time = meta.get(_LAST_KEY, 0) - meta.get(_FILL_KEY, 0)
        previous = self.live_times[context]
        # Exponential smoothing keeps the learned live time stable without
        # per-context history storage.
        self.live_times[context] = (previous + live_time) // 2 if previous else live_time

    def is_dead_now(self, set_index: int, way: int, now: int) -> bool:
        block = self.cache.sets[set_index][way]
        if not block.valid:
            return False
        meta = block.meta
        context = meta.get(_CTX_KEY)
        if context is None:
            return False
        learned = self.live_times[context]
        clock = self._set_clock[set_index] if self.count_references else now
        idle = clock - meta.get(_LAST_KEY, clock)
        # A learned live time of zero means "touched only at fill"; any idle
        # period beyond the multiplier grace marks it dead.
        return idle > self.multiplier * max(learned, 1)
