"""The reference-trace dead block predictor (Lai, Fide, Falsafi 2001).

The paper's "TDBP" baseline (Sections II-A.1, IV-A, VII-A).  Each block
carries a 15-bit *signature*: the truncated sum of the addresses of the
instructions that accessed it since it was filled.  The theory: if a given
trace of instructions led to the last access of one block, the same trace
leads to the last access of other blocks.

Structure (paper Section IV-A):

* an 8KB prediction table of 2^15 two-bit saturating counters indexed by
  the signature;
* 16 bits of metadata per cache block: the 15-bit signature plus the
  one-bit dead indication.

Training:

* on an access to a resident block, the block's *previous* signature
  demonstrably did not end the trace, so the counter at that signature is
  decremented; the signature is then extended with the new PC and the new
  counter consulted for a fresh prediction;
* on an eviction, the block's final signature did end the trace, so its
  counter is incremented.

The paper finds this predictor works poorly at the LLC because a mid-level
cache filters most of the temporal locality, making full traces sparse and
unrepeatable (Section VII-A.3) -- our experiments reproduce that effect.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.predictors.base import DeadBlockPredictor
from repro.utils.bits import mask
from repro.utils.hashing import fold_xor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import CacheAccess

__all__ = ["RefTracePredictor"]

_META_KEY = "reftrace_signature"


class RefTracePredictor(DeadBlockPredictor):
    """Trace-signature dead block predictor.

    Args:
        signature_bits: width of the trace signature (paper: 15, giving a
            2^15-entry table).
        threshold: counter value at or above which a block is predicted
            dead.  With 2-bit counters the conventional threshold is 2
            (the weakly-dead state).
        counter_bits: width of the table counters (paper: 2).
    """

    name = "reftrace"

    def __init__(
        self,
        signature_bits: int = 15,
        threshold: int = 2,
        counter_bits: int = 2,
    ) -> None:
        super().__init__()
        if signature_bits <= 0:
            raise ValueError(f"signature_bits must be positive, got {signature_bits}")
        self.signature_bits = signature_bits
        self.signature_mask = mask(signature_bits)
        self.counter_max = (1 << counter_bits) - 1
        if not 0 < threshold <= self.counter_max:
            raise ValueError(
                f"threshold {threshold} out of range (0, {self.counter_max}]"
            )
        self.threshold = threshold
        self.table: List[int] = [0] * (1 << signature_bits)

    # ------------------------------------------------------------------
    # signature arithmetic
    # ------------------------------------------------------------------
    def _initial_signature(self, pc: int) -> int:
        return fold_xor(pc, self.signature_bits)

    def _extend_signature(self, signature: int, pc: int) -> int:
        """Truncated sum of instruction addresses (paper Section II-A.1)."""
        return (signature + fold_xor(pc, self.signature_bits)) & self.signature_mask

    def _predict(self, signature: int) -> bool:
        return self.table[signature] >= self.threshold

    def _train(self, signature: int, dead: bool) -> None:
        value = self.table[signature]
        if dead:
            if value < self.counter_max:
                self.table[signature] = value + 1
        else:
            if value > 0:
                self.table[signature] = value - 1

    # ------------------------------------------------------------------
    # predictor events
    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        block = self.cache.sets[set_index][way]
        old_signature = block.meta.get(_META_KEY)
        if old_signature is not None:
            # The block was re-referenced: its previous signature was not
            # the end of the trace.
            self._train(old_signature, dead=False)
            signature = self._extend_signature(old_signature, access.pc)
        else:
            signature = self._initial_signature(access.pc)
        block.meta[_META_KEY] = signature
        return self._predict(signature)

    def predict_fill(self, set_index: int, access: "CacheAccess") -> bool:
        return self._predict(self._initial_signature(access.pc))

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        block = self.cache.sets[set_index][way]
        signature = self._initial_signature(access.pc)
        block.meta[_META_KEY] = signature
        return self._predict(signature)

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        block = self.cache.sets[set_index][way]
        signature = block.meta.get(_META_KEY)
        if signature is not None:
            self._train(signature, dead=True)
