"""Cache-bursts filtering (Liu, Ferdman, Huh, Burger 2008).

A *cache burst* is the run of contiguous accesses a block receives while it
is the most recently used block of its set.  The bursts insight: predict
and train once per burst instead of once per reference, which slashes
predictor traffic for L1 caches.  The paper notes (Section II-A.3) that
bursts "offer little advantage for higher level caches, since most bursts
are filtered out by the L1" -- at the LLC nearly every burst has length 1.
We implement it anyway, both to reproduce that observation (an extension
bench) and because it composes naturally: :class:`BurstFilter` wraps any
inner :class:`DeadBlockPredictor` and forwards only burst-boundary events.

Mechanics: a burst on (set, way) ends when any *other* frame of the set is
touched or filled.  While a burst is open, repeated touches of the same
frame are absorbed (the inner predictor does not see them); when the burst
closes with the block still resident, the inner predictor sees one
``touch`` with the burst's last PC.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.predictors.base import DeadBlockPredictor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["BurstFilter"]


class BurstFilter(DeadBlockPredictor):
    """Wrap ``inner`` so it trains/predicts per cache burst, not per access.

    The filter exposes ``burst_events`` and ``raw_events`` counters so the
    extension bench can report the traffic reduction bursts buy (or fail to
    buy) at each cache level.
    """

    name = "bursts"

    def __init__(self, inner: DeadBlockPredictor) -> None:
        super().__init__()
        self.inner = inner
        self.raw_events = 0
        self.burst_events = 0
        # Per set: the way with an open burst (or None) and the access that
        # most recently touched it.
        self._open_way: List[Optional[int]] = []
        self._open_access: List[Optional["CacheAccess"]] = []
        self._open_is_fill: List[bool] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        self.inner.bind(cache)
        num_sets = cache.geometry.num_sets
        self._open_way = [None] * num_sets
        self._open_access = [None] * num_sets
        self._open_is_fill = [False] * num_sets

    # ------------------------------------------------------------------
    def _close_burst(self, set_index: int) -> bool:
        """Flush the open burst (if any) to the inner predictor.

        Returns the inner predictor's dead prediction for the bursting
        block, or False when there was nothing to flush.
        """
        way = self._open_way[set_index]
        if way is None:
            return False
        access = self._open_access[set_index]
        is_fill = self._open_is_fill[set_index]
        self._open_way[set_index] = None
        self._open_access[set_index] = None
        self._open_is_fill[set_index] = False
        block = self.cache.sets[set_index][way]
        if not block.valid:
            return False
        self.burst_events += 1
        if is_fill:
            dead = self.inner.install(set_index, way, access)
        else:
            dead = self.inner.touch(set_index, way, access)
        block.predicted_dead = dead
        return dead

    def _open_burst(
        self, set_index: int, way: int, access: "CacheAccess", is_fill: bool
    ) -> None:
        self._open_way[set_index] = way
        self._open_access[set_index] = access
        self._open_is_fill[set_index] = is_fill

    # ------------------------------------------------------------------
    # predictor events
    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        self.raw_events += 1
        block = self.cache.sets[set_index][way]
        if self._open_way[set_index] == way:
            # Same block still bursting: absorb, just remember the last PC.
            self._open_access[set_index] = access
            return block.predicted_dead
        self._close_burst(set_index)
        self._open_burst(set_index, way, access, is_fill=False)
        return block.predicted_dead

    def predict_fill(self, set_index: int, access: "CacheAccess") -> bool:
        return self.inner.predict_fill(set_index, access)

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        self.raw_events += 1
        self._close_burst(set_index)
        self._open_burst(set_index, way, access, is_fill=True)
        return False  # prediction deferred until the burst closes

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        if self._open_way[set_index] == way:
            # The bursting block itself is leaving: flush it first so the
            # inner predictor has seen its final state.
            self._close_burst(set_index)
        self.inner.evicted(set_index, way, access)

    def is_dead_now(self, set_index: int, way: int, now: int) -> bool:
        if self._open_way[set_index] == way:
            return False  # a bursting block is by definition live
        return self.inner.is_dead_now(set_index, way, now)
