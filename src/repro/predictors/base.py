"""The dead block predictor interface.

A dead block predictor answers one question -- *"will this block be
referenced again before it is evicted?"* -- and is trained by the cache's
own behaviour.  The dead-block replacement and bypass policy
(:class:`repro.core.policy.DBRBPolicy`) translates cache events into the
four calls below and stores each block's current prediction in the block's
``predicted_dead`` bit (the single bit of per-block metadata the sampling
predictor needs; baseline predictors additionally hang their larger
metadata off ``block.meta``, which the storage model charges them for).

Event mapping:

* LLC hit on (set, way)          -> :meth:`touch` (returns the fresh
  prediction for the block, given the hitting PC)
* LLC miss, before placement     -> :meth:`predict_fill` (True = the block
  is dead on arrival and should bypass)
* LLC fill into (set, way)       -> :meth:`install`
* LLC eviction of (set, way)     -> :meth:`evicted`
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["DeadBlockPredictor"]


class DeadBlockPredictor:
    """Base class; concrete predictors override the four event methods."""

    #: short name used in reports and the technique registry
    name = "none"

    def __init__(self) -> None:
        self.cache: "Cache" = None  # type: ignore[assignment]

    def bind(self, cache: "Cache") -> None:
        """Attach to the cache whose blocks are being predicted."""
        if self.cache is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound; predictors are "
                "single-cache objects"
            )
        self.cache = cache

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        """A resident block was hit.  Train, then return the new dead/live
        prediction for the block (True = predicted dead)."""
        return False

    def predict_fill(self, set_index: int, access: "CacheAccess") -> bool:
        """A block is about to be placed.  True = dead on arrival (bypass).

        Must not mutate per-way state: when it returns True no fill happens.
        """
        return False

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        """The block was placed at (set, way).  Initialize per-block
        metadata; return the block's initial dead prediction."""
        return False

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        """The block at (set, way) is being evicted; its last access really
        was its last touch, so train toward "dead" for that context."""

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> Dict[str, float]:
        """Flat metric dict for the interval recorder (``_count`` suffix =
        cumulative counter, reported as per-epoch deltas).  Must not
        mutate predictor state.  The base class has nothing to report."""
        return {}

    # ------------------------------------------------------------------
    # optional dynamic deadness (time-based predictors)
    # ------------------------------------------------------------------
    def is_dead_now(self, set_index: int, way: int, now: int) -> bool:
        """Whether the block at (set, way) is considered dead *right now*.

        Most predictors precompute this into the block's ``predicted_dead``
        bit; time-based predictors override it because their deadness is a
        function of elapsed time since the last access.
        """
        return self.cache.sets[set_index][way].predicted_dead

    def __repr__(self) -> str:
        return type(self).__name__
