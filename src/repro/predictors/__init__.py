"""Baseline dead block predictors from prior work.

These are the predictors the paper compares against (Sections II and VII):

* :class:`RefTracePredictor` -- the reference-trace predictor of Lai et al.
  (drives the paper's "TDBP" technique).
* :class:`CountingPredictor` -- the Live-time Predictor (LvP) of Kharbutli
  and Solihin (drives "CDBP"); the Access Interval Predictor (AIP) variant
  is included for completeness.
* :class:`BurstFilter` -- the cache-bursts idea of Liu et al., implemented
  as a filter that can wrap any other predictor (extension; the paper notes
  bursts offer little advantage at the LLC).
* :class:`TimeBasedPredictor` -- the live-time timeout predictor of Hu et
  al., with the reference-count variant of Abella et al. (extension).

The paper's own sampling predictor lives in :mod:`repro.core`.
All predictors implement the :class:`DeadBlockPredictor` interface, so the
dead-block replacement and bypass policy (:mod:`repro.core.policy`) can be
instantiated with any of them -- exactly how the paper drops reftrace and
counting predictors into the same optimization (Section VII).
"""

from repro.predictors.base import DeadBlockPredictor
from repro.predictors.bursts import BurstFilter
from repro.predictors.counting import AIPPredictor, CountingPredictor
from repro.predictors.reftrace import RefTracePredictor
from repro.predictors.time_based import TimeBasedPredictor

__all__ = [
    "AIPPredictor",
    "BurstFilter",
    "CountingPredictor",
    "DeadBlockPredictor",
    "RefTracePredictor",
    "TimeBasedPredictor",
]
