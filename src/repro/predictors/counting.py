"""Counting-based dead block predictors (Kharbutli & Solihin 2008).

The paper's "CDBP" baseline uses the **Live-time Predictor (LvP)**: learn
how many times a block is accessed during one generation (fill to
eviction); in the next generation, once the block has been accessed that
many times, predict it dead.  A one-bit confidence counter requires the
count to repeat across two consecutive generations before predictions are
made (paper Section II-A.4).

Structure (paper Section IV-B):

* a table of (4-bit count, 1-bit confidence) entries -- a matrix whose
  rows are indexed by a hash of the PC that *filled* the block and whose
  columns by a hash of the block address;
* 17 bits of per-block metadata: 8-bit hashed fill PC, 4-bit access count,
  4-bit learned threshold, 1-bit confidence.

The **Access Interval Predictor (AIP)** from the same paper is also
provided: it learns the maximum number of *other* accesses to the set
between consecutive touches of a block, and declares the block dead once
that interval is exceeded.  The paper focuses on LvP ("we find it delivers
superior accuracy"); we keep AIP as an extension.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.predictors.base import DeadBlockPredictor
from repro.utils.hashing import fold_xor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["AIPPredictor", "CountingPredictor"]

_COUNT_KEY = "lvp_count"
_LIMIT_KEY = "lvp_limit"
_CONF_KEY = "lvp_conf"
_ROW_KEY = "lvp_row"
_COL_KEY = "lvp_col"


class CountingPredictor(DeadBlockPredictor):
    """The Live-time Predictor (LvP).

    Args:
        pc_bits: row index width (paper: 8-bit hashed PC).
        addr_bits: column index width (hashed block address).
        count_bits: width of the access counters (paper: 4).
    """

    name = "counting"

    def __init__(self, pc_bits: int = 8, addr_bits: int = 8, count_bits: int = 4) -> None:
        super().__init__()
        if pc_bits <= 0 or addr_bits <= 0:
            raise ValueError("index widths must be positive")
        self.pc_bits = pc_bits
        self.addr_bits = addr_bits
        self.count_max = (1 << count_bits) - 1
        entries = 1 << (pc_bits + addr_bits)
        # Parallel arrays: learned count and confidence bit per entry.
        self.counts: List[int] = [0] * entries
        self.confidences: List[int] = [0] * entries

    # ------------------------------------------------------------------
    def _entry_index(self, row: int, column: int) -> int:
        return (row << self.addr_bits) | column

    def _hash_pc(self, pc: int) -> int:
        return fold_xor(pc, self.pc_bits)

    def _hash_address(self, address: int) -> int:
        return fold_xor(self.cache.geometry.block_address(address), self.addr_bits)

    @staticmethod
    def _predict(count: int, limit: int, confidence: int) -> bool:
        """Dead once the block has been accessed as often as last generation,
        provided that count repeated (confidence set)."""
        return bool(confidence) and count >= limit > 0

    # ------------------------------------------------------------------
    # predictor events
    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        block = self.cache.sets[set_index][way]
        meta = block.meta
        count = min(meta.get(_COUNT_KEY, 0) + 1, self.count_max)
        meta[_COUNT_KEY] = count
        return self._predict(count, meta.get(_LIMIT_KEY, 0), meta.get(_CONF_KEY, 0))

    def predict_fill(self, set_index: int, access: "CacheAccess") -> bool:
        index = self._entry_index(
            self._hash_pc(access.pc), self._hash_address(access.address)
        )
        # Dead on arrival: last generation the block was accessed exactly
        # once (the fill), twice in a row.
        return self.confidences[index] == 1 and self.counts[index] == 1

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        block = self.cache.sets[set_index][way]
        row = self._hash_pc(access.pc)
        column = self._hash_address(access.address)
        index = self._entry_index(row, column)
        limit = self.counts[index]
        confidence = self.confidences[index]
        block.meta[_ROW_KEY] = row
        block.meta[_COL_KEY] = column
        block.meta[_COUNT_KEY] = 1  # the fill itself counts as an access
        block.meta[_LIMIT_KEY] = limit
        block.meta[_CONF_KEY] = confidence
        return self._predict(1, limit, confidence)

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        block = self.cache.sets[set_index][way]
        meta = block.meta
        if _ROW_KEY not in meta:
            return
        index = self._entry_index(meta[_ROW_KEY], meta[_COL_KEY])
        final_count = meta.get(_COUNT_KEY, 0)
        # Confidence: did this generation repeat the last generation's count?
        self.confidences[index] = 1 if final_count == self.counts[index] else 0
        self.counts[index] = final_count


class AIPPredictor(DeadBlockPredictor):
    """The Access Interval Predictor (AIP) variant.

    Learns, per (fill PC, block address) context, the largest number of
    *set* accesses observed between consecutive touches of the block; the
    block is predicted dead when untouched for longer than that learned
    interval (checked dynamically via :meth:`is_dead_now`).
    """

    name = "aip"

    def __init__(self, pc_bits: int = 8, addr_bits: int = 8, interval_bits: int = 6) -> None:
        super().__init__()
        self.pc_bits = pc_bits
        self.addr_bits = addr_bits
        self.interval_max = (1 << interval_bits) - 1
        entries = 1 << (pc_bits + addr_bits)
        self.intervals: List[int] = [0] * entries
        self.confidences: List[int] = [0] * entries
        self._set_clock: List[int] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        self._set_clock = [0] * cache.geometry.num_sets

    # ------------------------------------------------------------------
    def _entry_index(self, pc: int, address: int) -> int:
        row = fold_xor(pc, self.pc_bits)
        column = fold_xor(self.cache.geometry.block_address(address), self.addr_bits)
        return (row << self.addr_bits) | column

    def _tick(self, set_index: int) -> int:
        self._set_clock[set_index] += 1
        return self._set_clock[set_index]

    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        now = self._tick(set_index)
        block = self.cache.sets[set_index][way]
        meta = block.meta
        last = meta.get("aip_last", now)
        gap = min(now - last, self.interval_max)
        meta["aip_max_gap"] = max(meta.get("aip_max_gap", 0), gap)
        meta["aip_last"] = now
        return False  # deadness is dynamic; see is_dead_now

    def predict_fill(self, set_index: int, access: "CacheAccess") -> bool:
        index = self._entry_index(access.pc, access.address)
        return self.confidences[index] == 1 and self.intervals[index] == 0

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        now = self._tick(set_index)
        block = self.cache.sets[set_index][way]
        index = self._entry_index(access.pc, access.address)
        block.meta["aip_index"] = index
        block.meta["aip_last"] = now
        block.meta["aip_max_gap"] = 0
        block.meta["aip_limit"] = self.intervals[index]
        block.meta["aip_conf"] = self.confidences[index]
        return False

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        block = self.cache.sets[set_index][way]
        meta = block.meta
        index = meta.get("aip_index")
        if index is None:
            return
        observed = meta.get("aip_max_gap", 0)
        self.confidences[index] = 1 if observed == self.intervals[index] else 0
        self.intervals[index] = observed

    def is_dead_now(self, set_index: int, way: int, now: int) -> bool:
        block = self.cache.sets[set_index][way]
        meta = block.meta
        if not block.valid or meta.get("aip_conf", 0) == 0:
            return False
        limit = meta.get("aip_limit", 0)
        elapsed = self._set_clock[set_index] - meta.get("aip_last", 0)
        # Twice the learned interval, as in the original timeout predictors.
        return elapsed > 2 * limit
