"""The prefetch engine: fill predicted-dead frames early.

``PrefetchEngine`` wraps a cache (typically one managed by
:class:`~repro.core.policy.DBRBPolicy`) and, after every demand miss,
asks its prefetcher for candidate blocks.  A candidate is installed only
when its target set has a frame that is **invalid or predicted dead** --
the defining constraint of prefetching *into dead blocks*: predicted-live
data is never displaced by speculation.

Usefulness accounting: a prefetched block that is demand-hit before
eviction counts as *useful* (it converted a miss into a hit); one evicted
untouched counts as *wasted*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.cache import Cache, CacheAccess, CacheObserver
from repro.prefetch.prefetchers import Prefetcher

__all__ = ["PrefetchEngine", "PrefetchStats"]

_PREFETCH_FLAG = "prefetched"

#: Synthetic PC attributed to prefetch fills (no real instruction issued
#: them); predictors see a consistent "prefetcher PC", which is exactly
#: how a hardware prefetch request would look to a PC-indexed table.
PREFETCH_PC = 0x0F00_0000


@dataclass
class PrefetchStats:
    """Prefetch traffic and outcome counters."""

    issued: int = 0
    rejected_no_dead_frame: int = 0
    already_resident: int = 0
    useful: int = 0
    wasted: int = 0

    @property
    def accuracy(self) -> float:
        """Useful fraction of completed prefetches."""
        completed = self.useful + self.wasted
        if completed == 0:
            return 0.0
        return self.useful / completed


class _WasteWatcher(CacheObserver):
    """Counts evictions of never-used prefetched blocks."""

    def __init__(self, stats: PrefetchStats) -> None:
        self.stats = stats

    def on_evict(self, set_index, way, block, access) -> None:
        if block.meta.get(_PREFETCH_FLAG):
            self.stats.wasted += 1


class PrefetchEngine:
    """Drive a cache with demand accesses plus dead-block prefetches.

    Args:
        cache: the LLC (any policy; DBRB supplies the dead bits).
        prefetcher: address predictor.
        chain_on_prefetch_hit: also trigger prediction when a demand hit
            lands on a prefetched block.  Without chaining, a sequential
            prefetcher only runs ``degree`` blocks ahead of each *miss*
            and coverage caps at ``degree/(degree+1)``; chaining keeps the
            front moving, as real streaming prefetchers do.
    """

    def __init__(
        self,
        cache: Cache,
        prefetcher: Prefetcher,
        chain_on_prefetch_hit: bool = True,
    ) -> None:
        self.cache = cache
        self.prefetcher = prefetcher
        self.chain_on_prefetch_hit = chain_on_prefetch_hit
        self.stats = PrefetchStats()
        cache.add_observer(_WasteWatcher(self.stats))

    # ------------------------------------------------------------------
    def access(self, access: CacheAccess) -> bool:
        """One demand access; triggers prefetch issue on a miss (and on a
        hit to a prefetched block when chaining is enabled)."""
        block = self.cache.geometry.block_address(access.address)
        hit = self.cache.access(access)
        consumed_prefetch = self._account_outcome(access, hit)
        trigger = not hit or (consumed_prefetch and self.chain_on_prefetch_hit)
        if not hit:
            self.prefetcher.observe_miss(block)
        if trigger:
            for candidate in self.prefetcher.predict(block):
                self._try_prefetch(candidate, access.seq)
        return hit

    def run(self, accesses) -> List[bool]:
        """Replay a full access stream; returns per-access hit flags."""
        return [self.access(access) for access in accesses]

    # ------------------------------------------------------------------
    def _account_outcome(self, access: CacheAccess, hit: bool) -> bool:
        """Returns True when the hit consumed a prefetched block."""
        if not hit:
            return False
        geometry = self.cache.geometry
        set_index = geometry.set_index(access.address)
        way = self.cache.find(set_index, geometry.tag(access.address))
        if way is None:  # pragma: no cover - hit implies presence
            return False
        block = self.cache.sets[set_index][way]
        if block.meta.pop(_PREFETCH_FLAG, None):
            self.stats.useful += 1
            return True
        return False

    def _try_prefetch(self, block_address: int, seq: int) -> None:
        geometry = self.cache.geometry
        byte_address = block_address << geometry.offset_bits
        set_index = geometry.set_index(byte_address)
        tag = geometry.tag(byte_address)
        if self.cache.find(set_index, tag) is not None:
            self.stats.already_resident += 1
            return
        way = self._dead_frame(set_index)
        if way is None:
            self.stats.rejected_no_dead_frame += 1
            return
        fill = CacheAccess(
            address=byte_address, pc=PREFETCH_PC, is_write=False, seq=seq
        )
        self.cache.insert(fill, way)
        self.cache.sets[set_index][way].meta[_PREFETCH_FLAG] = True
        self.stats.issued += 1

    def _dead_frame(self, set_index: int):
        """An invalid frame, else one holding a predicted-dead block."""
        for way, block in enumerate(self.cache.sets[set_index]):
            if not block.valid:
                return way
        for way, block in enumerate(self.cache.sets[set_index]):
            if block.predicted_dead:
                return way
        return None

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Account prefetched blocks still resident (never used) as wasted."""
        for _, _, block in self.cache.resident_blocks():
            if block.meta.get(_PREFETCH_FLAG):
                self.stats.wasted += 1
