"""Dead-block-directed prefetching (extension).

The original dead block predictor of Lai et al. was built to *prefetch
into dead blocks*: once a frame's occupant is predicted dead, its space
is free capacity, and a prefetcher can fill it early.  The paper defers
"optimizations other than replacement and bypass" to future work
(Section VIII); this subpackage implements that future work on top of the
sampling predictor:

* :class:`NextBlockPrefetcher` -- sequential next-N-blocks prediction.
* :class:`CorrelationPrefetcher` -- Markov-style miss-address correlation
  (the Lai et al. DBCP flavour).
* :class:`PrefetchEngine` -- drives a cache: after each demand access it
  asks the prefetcher for candidates and installs them **only into frames
  whose occupants are predicted dead** (or invalid), so prefetching never
  displaces predicted-live data.
"""

from repro.prefetch.engine import PrefetchEngine, PrefetchStats
from repro.prefetch.prefetchers import (
    CorrelationPrefetcher,
    NextBlockPrefetcher,
    Prefetcher,
)

__all__ = [
    "CorrelationPrefetcher",
    "NextBlockPrefetcher",
    "PrefetchEngine",
    "PrefetchStats",
    "Prefetcher",
]
