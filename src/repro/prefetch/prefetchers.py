"""Address predictors for dead-block-directed prefetching.

Two classic designs, both trained on the LLC demand-miss stream:

* :class:`NextBlockPrefetcher` -- predicts the next ``degree`` sequential
  blocks; the right tool for the streaming/stencil archetypes.
* :class:`CorrelationPrefetcher` -- a Markov table mapping each miss
  block to the block(s) that historically missed next, in the spirit of
  the dead-block correlating prefetcher (DBCP) of Lai et al.; catches
  repeated pointer chains that sequential prediction cannot.
"""

from __future__ import annotations

from typing import Dict, List

from repro.utils.hashing import fold_xor

__all__ = ["CorrelationPrefetcher", "NextBlockPrefetcher", "Prefetcher"]


class Prefetcher:
    """Base interface: observe demand misses, propose prefetch blocks."""

    name = "none"

    def observe_miss(self, block_address: int) -> None:
        """A demand miss to ``block_address`` (block-granular) occurred."""

    def predict(self, block_address: int) -> List[int]:
        """Candidate block addresses to prefetch after a miss to
        ``block_address``.  May be empty."""
        return []

    def __repr__(self) -> str:
        return type(self).__name__


class NextBlockPrefetcher(Prefetcher):
    """Sequential prefetching of the next ``degree`` blocks."""

    name = "next-block"

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree

    def predict(self, block_address: int) -> List[int]:
        return [block_address + offset for offset in range(1, self.degree + 1)]


class CorrelationPrefetcher(Prefetcher):
    """Markov miss correlation: remember which block missed after which.

    The table is direct-mapped on a hash of the trigger block and stores
    up to ``ways`` successor blocks in most-recent-first order, like the
    pair-based correlation tables of the DBCP lineage.
    """

    name = "correlation"

    def __init__(self, table_bits: int = 14, ways: int = 2) -> None:
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.table_bits = table_bits
        self.ways = ways
        # index -> (trigger block, successor list). Storing the trigger
        # makes the direct-mapped entry a real tag match, not an alias.
        self.table: Dict[int, List[int]] = {}
        self._tags: Dict[int, int] = {}
        self._last_miss: int = -1

    def _index(self, block_address: int) -> int:
        return fold_xor(block_address, self.table_bits)

    def observe_miss(self, block_address: int) -> None:
        previous = self._last_miss
        self._last_miss = block_address
        if previous < 0 or previous == block_address:
            return
        index = self._index(previous)
        if self._tags.get(index) != previous:
            # Conflict or cold entry: the newcomer takes it over.
            self._tags[index] = previous
            self.table[index] = [block_address]
            return
        successors = self.table[index]
        if block_address in successors:
            successors.remove(block_address)
        successors.insert(0, block_address)
        del successors[self.ways:]

    def predict(self, block_address: int) -> List[int]:
        index = self._index(block_address)
        if self._tags.get(index) != block_address:
            return []
        return list(self.table[index])
