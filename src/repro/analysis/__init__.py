"""Measurement instruments for the paper's analysis figures.

* :mod:`repro.analysis.efficiency` -- cache efficiency (live-time ratio),
  the greyscale visualization of Figure 1 and the "blocks are dead 86% of
  the time" statistic of the introduction.
* :mod:`repro.analysis.accuracy` -- predictor coverage and false-positive
  rates, Figure 9.
* :mod:`repro.analysis.reuse` -- reuse-distance profiling of traces, the
  statistic dead block prediction is a bet about.

The first two are implemented as :class:`~repro.cache.CacheObserver`
subclasses, so they watch the exact caches the policies run on without
perturbing them; the profiler operates on raw traces.
"""

from repro.analysis.accuracy import AccuracyObserver
from repro.analysis.efficiency import EfficiencyObserver, render_greyscale
from repro.analysis.reuse import ReuseProfile, profile_trace, reuse_histogram

__all__ = [
    "AccuracyObserver",
    "EfficiencyObserver",
    "ReuseProfile",
    "profile_trace",
    "render_greyscale",
    "reuse_histogram",
]
