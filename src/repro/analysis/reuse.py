"""Reuse-distance profiling.

Dead block prediction is, at bottom, a bet about the reuse-distance
distribution of each PC's blocks: a block is LRU-dead iff its next reuse
distance exceeds the cache's associativity-weighted reach, and the
sampler can only *learn* reuses within its own 12-way reach.  This module
computes those distributions so workloads (synthetic or user-supplied
traces) can be characterized in the same terms the predictors operate in.

Distances here are **LRU stack distances in unique blocks**: the number
of distinct blocks referenced between consecutive touches of the same
block.  A re-reference hits a fully-associative LRU cache of capacity C
iff its stack distance is < C; per-set distances are ~stack/num_sets for
a hashed index.

The implementation uses the classic O(n log n) Olken-style algorithm with
a Fenwick (binary indexed) tree over access timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.sim.trace import Trace

__all__ = ["ReuseProfile", "profile_trace", "reuse_histogram"]

#: Sentinel distance for first-ever touches (cold references).
COLD = -1


class _FenwickTree:
    """Prefix sums over timestamp slots (1-indexed)."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & (-index)
        return total


@dataclass
class ReuseProfile:
    """Reuse statistics of one trace (block granularity).

    Attributes:
        name: trace name.
        total_references: block-granular references profiled.
        cold_references: first touches (infinite distance).
        distances: histogram of stack distances, bucketed by powers of
            two: ``distances[k]`` counts reuses with distance in
            ``[2**k, 2**(k+1))`` (bucket 0 holds distances 0 and 1).
        pc_reuse: per PC: (reuses observed, reuses within ``llc_reach``).
    """

    name: str
    llc_reach: int
    total_references: int = 0
    cold_references: int = 0
    distances: Dict[int, int] = field(default_factory=dict)
    pc_reuse: Dict[int, List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def record(self, pc: int, distance: int) -> None:
        self.total_references += 1
        if distance == COLD:
            self.cold_references += 1
            return
        bucket = max(distance, 1).bit_length() - 1
        self.distances[bucket] = self.distances.get(bucket, 0) + 1
        entry = self.pc_reuse.setdefault(pc, [0, 0])
        entry[0] += 1
        if distance < self.llc_reach:
            entry[1] += 1

    # ------------------------------------------------------------------
    @property
    def reuse_fraction(self) -> float:
        """Fraction of references that are re-references."""
        if self.total_references == 0:
            return 0.0
        return 1.0 - self.cold_references / self.total_references

    def hit_fraction(self, capacity_blocks: int) -> float:
        """Fraction of all references a fully-associative LRU cache of
        ``capacity_blocks`` would hit (Mattson's stack analysis)."""
        if self.total_references == 0:
            return 0.0
        hits = 0
        for bucket, count in self.distances.items():
            if (1 << (bucket + 1)) <= capacity_blocks:
                hits += count
            elif (1 << bucket) < capacity_blocks:
                hits += count // 2  # split bucket: approximate
        return hits / self.total_references

    def pc_llc_reuse_ratio(self, pc: int) -> Optional[float]:
        """Of a PC's observed reuses, the fraction within the LLC's reach
        -- the statistic that decides whether the sampler will keep the
        PC alive.  None if the PC produced no reuses."""
        entry = self.pc_reuse.get(pc)
        if not entry or entry[0] == 0:
            return None
        return entry[1] / entry[0]

    def summary(self) -> str:
        lines = [
            f"reuse profile: {self.name}",
            f"  references:       {self.total_references:,}",
            f"  cold (first use): {self.cold_references:,} "
            f"({1 - self.reuse_fraction:.1%})",
        ]
        for bucket in sorted(self.distances):
            low, high = 1 << bucket, (1 << (bucket + 1)) - 1
            count = self.distances[bucket]
            share = count / max(self.total_references, 1)
            lines.append(f"  distance {low:>7,}..{high:<9,} {count:>9,} ({share:.1%})")
        return "\n".join(lines)


def profile_trace(
    trace: Trace,
    llc_reach: int = 4096,
    block_bits: int = 6,
) -> ReuseProfile:
    """Profile a trace's block-granular reuse distances.

    Args:
        trace: the trace to profile.
        llc_reach: unique-block reach used for the per-PC LLC statistic
            (default: a 256KB/64B cache's 4,096 blocks).
        block_bits: log2 of the block size for address folding.
    """
    profile = ReuseProfile(name=trace.name, llc_reach=llc_reach)
    tree = _FenwickTree(len(trace.records))
    last_position: Dict[int, int] = {}
    for position, record in enumerate(trace.records):
        block = record.address >> block_bits
        previous = last_position.get(block)
        if previous is None:
            profile.record(record.pc, COLD)
        else:
            # Unique blocks touched since the previous touch = number of
            # "last touch" markers after `previous`.
            distance = tree.prefix_sum(len(trace.records) - 1) - tree.prefix_sum(previous)
            profile.record(record.pc, distance)
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[block] = position
    return profile


def reuse_histogram(traces: Iterable[Trace], llc_reach: int = 4096) -> str:
    """Profile several traces and return their summaries."""
    return "\n\n".join(profile_trace(t, llc_reach=llc_reach).summary() for t in traces)
