"""Cache efficiency: live time versus resident time (paper Figure 1).

A block is *live* from placement until its last reference and *dead* from
then until eviction (Section I).  Efficiency is the fraction of
block-frame residency spent live; the paper opens with the observation
that a 2MB LRU LLC averages only ~14% efficiency (blocks dead 86% of the
time), and Figure 1 shows 456.hmmer jumping from 22% to 87% efficiency
under sampler-driven dead block replacement and bypass.

Time is measured in access sequence numbers, which is the natural clock
of a trace-driven cache (proportional to cycles for a fixed trace).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.block import CacheBlock
from repro.cache.cache import Cache, CacheAccess, CacheObserver

__all__ = ["EfficiencyObserver", "render_greyscale"]

#: Darkest-to-lightest ASCII ramp for the Figure 1 style rendering;
#: darker = more dead time, matching the paper's convention.
_GREYSCALE_RAMP = " .:-=+*#%@"


class EfficiencyObserver(CacheObserver):
    """Accumulates per-frame live and total residency times.

    Attach to a cache before running; call :meth:`finalize` with the final
    sequence number so blocks still resident at the end are accounted.

    Attributes:
        live_time: accumulated live time over all completed residencies.
        total_time: accumulated residency time.
    """

    def __init__(self, cache: Cache) -> None:
        geometry = cache.geometry
        self._num_sets = geometry.num_sets
        self._assoc = geometry.associativity
        self.live_time = 0
        self.total_time = 0
        # Per-frame accumulators for the greyscale matrix.
        self._frame_live: List[List[int]] = [
            [0] * self._assoc for _ in range(self._num_sets)
        ]
        self._frame_total: List[List[int]] = [
            [0] * self._assoc for _ in range(self._num_sets)
        ]
        self._finalized = False

    # ------------------------------------------------------------------
    # observer events
    # ------------------------------------------------------------------
    def on_evict(
        self, set_index: int, way: int, block: CacheBlock, access: CacheAccess
    ) -> None:
        self._account(set_index, way, block, access.seq)

    def _account(self, set_index: int, way: int, block: CacheBlock, now: int) -> None:
        live = max(block.last_access_seq - block.fill_seq, 0)
        total = max(now - block.fill_seq, 0)
        self.live_time += live
        self.total_time += total
        self._frame_live[set_index][way] += live
        self._frame_total[set_index][way] += total

    # ------------------------------------------------------------------
    def finalize(self, cache: Cache, now: int) -> None:
        """Account blocks still resident at the end of the run."""
        if self._finalized:
            raise RuntimeError("EfficiencyObserver.finalize called twice")
        for set_index, way, block in cache.resident_blocks():
            self._account(set_index, way, block, now)
        self._finalized = True

    # ------------------------------------------------------------------
    @property
    def efficiency(self) -> float:
        """Aggregate live-time ratio (the paper's efficiency metric)."""
        if self.total_time == 0:
            return 0.0
        return self.live_time / self.total_time

    def frame_efficiency(self, set_index: int, way: int) -> Optional[float]:
        """Efficiency of one frame, or None if it never held a block."""
        total = self._frame_total[set_index][way]
        if total == 0:
            return None
        return self._frame_live[set_index][way] / total

    def efficiency_matrix(self) -> List[List[float]]:
        """Per-frame efficiencies (unused frames report 0.0)."""
        return [
            [
                (self._frame_live[s][w] / self._frame_total[s][w])
                if self._frame_total[s][w]
                else 0.0
                for w in range(self._assoc)
            ]
            for s in range(self._num_sets)
        ]


def render_greyscale(
    matrix: List[List[float]], max_rows: int = 32
) -> str:
    """ASCII rendering of the Figure 1 greyscale.

    Each row is a cache set, each column a way; dark characters mean the
    frame spent most of its time dead (low efficiency), bright characters
    mean high efficiency -- matching the paper's "darker blocks are dead
    longer" convention.  Long caches are downsampled to ``max_rows`` rows
    by averaging runs of sets.
    """
    if not matrix:
        return "(empty cache)"
    num_sets = len(matrix)
    assoc = len(matrix[0])
    stride = max(1, num_sets // max_rows)
    lines = []
    for start in range(0, num_sets, stride):
        chunk = matrix[start : start + stride]
        line = []
        for way in range(assoc):
            value = sum(row[way] for row in chunk) / len(chunk)
            index = min(int(value * len(_GREYSCALE_RAMP)), len(_GREYSCALE_RAMP) - 1)
            line.append(_GREYSCALE_RAMP[index])
        lines.append("".join(line))
    return "\n".join(lines)
