"""Predictor coverage and false-positive measurement (paper Figure 9).

Definitions from Section VII-C:

* **coverage** -- the fraction of cache accesses on which the predictor
  predicts "dead" (positive predictions / all predictions; the predictor
  is consulted on every access);
* **false positive rate** -- the fraction of cache accesses whose "dead"
  prediction turns out wrong.  "False positives are more harmful because
  they wrongly allow an optimization to use a live block for some other
  purpose, causing a miss."

Ground truth for resident predictions is exact: a positive on a resident
block is false iff the block is referenced again before leaving the
cache.  Bypassed blocks never become resident, so their ground truth is
approximated: a bypass is counted false when the same block returns
within ``associativity`` further misses to its set -- i.e., when it would
plausibly still have been resident had it been placed.  The approximation
is conservative in both directions and applied identically to every
predictor, so Figure 9's cross-predictor comparison is unaffected.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.cache.block import CacheBlock
from repro.cache.cache import Cache, CacheAccess, CacheObserver

__all__ = ["AccuracyObserver"]


class AccuracyObserver(CacheObserver):
    """Tracks positive dead predictions and their outcomes."""

    def __init__(self, cache: Cache) -> None:
        geometry = cache.geometry
        self._geometry = geometry
        self.accesses = 0
        self.positives = 0
        self.false_positives = 0
        # Pending positive per frame: was the last prediction "dead"?
        self._pending: List[List[bool]] = [
            [False] * geometry.associativity for _ in range(geometry.num_sets)
        ]
        # Per-set: recently bypassed block -> set-miss counter at bypass.
        self._bypassed: List[OrderedDict] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self._set_misses: List[int] = [0] * geometry.num_sets

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _record_prediction(self, set_index: int, way: int, dead: bool) -> None:
        if dead:
            self.positives += 1
        self._pending[set_index][way] = dead

    def _expire_bypasses(self, set_index: int) -> None:
        """Bypasses older than one set-worth of misses count as correct."""
        window = self._geometry.associativity
        bypassed = self._bypassed[set_index]
        now = self._set_misses[set_index]
        while bypassed:
            block, stamp = next(iter(bypassed.items()))
            if now - stamp <= window:
                break
            del bypassed[block]

    # ------------------------------------------------------------------
    # observer events
    # ------------------------------------------------------------------
    def on_hit(
        self, set_index: int, way: int, block: CacheBlock, access: CacheAccess
    ) -> None:
        self.accesses += 1
        if self._pending[set_index][way]:
            # The previous "dead" prediction was refuted by this touch.
            self.false_positives += 1
        self._record_prediction(set_index, way, block.predicted_dead)

    def on_fill(
        self, set_index: int, way: int, block: CacheBlock, access: CacheAccess
    ) -> None:
        self.accesses += 1
        self._set_misses[set_index] += 1
        self._check_return(set_index, access)
        self._record_prediction(set_index, way, block.predicted_dead)

    def on_evict(
        self, set_index: int, way: int, block: CacheBlock, access: CacheAccess
    ) -> None:
        # An eviction confirms the pending positive (if any) was right.
        self._pending[set_index][way] = False

    def on_bypass(self, set_index: int, access: CacheAccess) -> None:
        self.accesses += 1
        self._set_misses[set_index] += 1
        self._check_return(set_index, access)
        self.positives += 1  # a bypass IS a positive dead-on-arrival call
        block = self._geometry.block_address(access.address)
        self._bypassed[set_index][block] = self._set_misses[set_index]
        self._expire_bypasses(set_index)

    def _check_return(self, set_index: int, access: CacheAccess) -> None:
        """A recently bypassed block coming back means the bypass was a
        false positive."""
        block = self._geometry.block_address(access.address)
        bypassed = self._bypassed[set_index]
        stamp = bypassed.pop(block, None)
        if stamp is not None:
            if self._set_misses[set_index] - stamp <= self._geometry.associativity:
                self.false_positives += 1
        self._expire_bypasses(set_index)

    # ------------------------------------------------------------------
    @property
    def coverage(self) -> float:
        """Fraction of accesses predicted dead."""
        if self.accesses == 0:
            return 0.0
        return self.positives / self.accesses

    @property
    def false_positive_rate(self) -> float:
        """Fraction of accesses with a refuted dead prediction."""
        if self.accesses == 0:
            return 0.0
        return self.false_positives / self.accesses
