"""Cache statistics counters.

Misses per kilo-instruction (MPKI) is the paper's primary metric (Figures 4
and 7, Table III); these counters collect everything needed to compute it,
plus the bypass and dead-eviction counts used to sanity-check the DBRB
policy's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Event counters for one cache.

    ``misses`` counts *demand* misses, whether or not the missing block was
    then bypassed; this matches the paper, where bypass reduces *future*
    misses but the triggering access still missed.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    bypasses: int = 0
    dead_block_victims: int = 0  # evictions chosen because predicted dead

    @property
    def miss_rate(self) -> float:
        """Demand miss ratio; 0.0 when the cache was never accessed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Demand hit ratio; 0.0 when the cache was never accessed."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction for a run of ``instructions``."""
        if instructions <= 0:
            raise ValueError(f"instruction count must be positive, got {instructions}")
        return self.misses * 1000.0 / instructions

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this object (used by multicore runs)."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.fills += other.fills
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.bypasses += other.bypasses
        self.dead_block_victims += other.dead_block_victims

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counts."""
        return CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            fills=self.fills,
            evictions=self.evictions,
            writebacks=self.writebacks,
            bypasses=self.bypasses,
            dead_block_victims=self.dead_block_victims,
        )
