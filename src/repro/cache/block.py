"""A single cache block's bookkeeping state.

The paper is explicit about per-block metadata cost (Table I): the whole
point of the sampling predictor is that it needs just **one extra bit** per
LLC block (``predicted_dead``), versus 16 bits for reftrace and 17 bits for
the counting predictor.  Those baseline predictors attach their extra fields
through :attr:`CacheBlock.meta`, which the storage model in
:mod:`repro.power.storage` accounts for separately.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["CacheBlock"]


class CacheBlock:
    """One block frame (a way within a set).

    Attributes:
        valid: whether the frame currently holds a block.
        tag: tag of the held block (meaningless when invalid).
        dirty: set by write hits and write fills; consumed at eviction to
            count writebacks.
        predicted_dead: the single metadata bit the sampling predictor adds
            to every LLC block (paper Section III-C).  Also reused by the
            baseline predictors for their dead indication so that the
            replacement policy can treat all predictors uniformly.
        fill_seq: sequence number of the access that filled the frame.
        last_access_seq: sequence number of the most recent access to hit the
            frame (equals ``fill_seq`` right after a fill).  Together these
            drive the cache-efficiency analysis of Figure 1.
        access_count: hits + fill since the block was placed; used by the
            counting and bursts predictors.
        meta: open dictionary for predictor-specific per-block metadata
            (e.g. the reftrace signature).  Kept as a dict rather than slots
            so substrate code stays predictor-agnostic.
    """

    __slots__ = (
        "access_count",
        "dirty",
        "fill_seq",
        "last_access_seq",
        "meta",
        "predicted_dead",
        "tag",
        "valid",
    )

    def __init__(self) -> None:
        self.valid = False
        self.tag = 0
        self.dirty = False
        self.predicted_dead = False
        self.fill_seq = 0
        self.last_access_seq = 0
        self.access_count = 0
        self.meta: Dict[str, Any] = {}

    def fill(self, tag: int, seq: int, is_write: bool) -> None:
        """Install a new block in this frame, resetting all metadata."""
        self.valid = True
        self.tag = tag
        self.dirty = is_write
        self.predicted_dead = False
        self.fill_seq = seq
        self.last_access_seq = seq
        self.access_count = 1
        self.meta.clear()

    def touch(self, seq: int, is_write: bool) -> None:
        """Record a hit on this frame."""
        self.last_access_seq = seq
        self.access_count += 1
        if is_write:
            self.dirty = True

    def invalidate(self) -> None:
        """Evict the held block, leaving an empty frame."""
        self.valid = False
        self.dirty = False
        self.predicted_dead = False
        self.meta.clear()

    def __repr__(self) -> str:
        if not self.valid:
            return "CacheBlock(invalid)"
        flags = "".join(
            flag
            for flag, on in (("D", self.dirty), ("X", self.predicted_dead))
            if on
        )
        return f"CacheBlock(tag={self.tag:#x}, accesses={self.access_count}, flags={flags!r})"
