"""Structure-of-arrays LLC substrate for the batched replay kernels.

The object substrate (:class:`repro.cache.cache.Cache`) spends most of a
replayed access on Python attribute traffic: every hit touches a
:class:`~repro.cache.block.CacheBlock` three times and every fill writes
seven fields.  The array kernels (:mod:`repro.sim.replay_array`) instead
simulate on flat per-frame planes plus per-set locals, and only
materialize object state once, at the end of the replay:

* :class:`SoACache` holds the frame planes -- ``array('q')`` tags and
  fill positions, ``bytearray`` valid/dirty/predicted-dead -- indexed by
  ``frame = set_index * associativity + way``, plus the per-set
  ``tag -> way`` dicts.  Recency state (LRU stacks, PLRU trees, RRIP
  counters) is *policy* state, already array-shaped inside each policy;
  the kernels mutate it directly (or rebuild it from their own compact
  encodings) and leave it exactly as the object kernel would.
* :class:`ReplayIndex` is the per-stream side: the stream's positions
  grouped by set (so order-independent policies replay one set at a
  time in a tight loop), per ``(set, tag)`` the sorted list of stream
  positions touching that tag, and the flat ``next_write`` array.  It is
  built once per ``(workload, geometry)`` and cached on the
  :class:`~repro.sim.hierarchy.PreparedStream`, so every technique of a
  sweep shares it -- the same amortization contract as the precomputed
  ``(set_index, tag)`` decomposition itself.

The index is what lets the kernels drop per-access metadata maintenance
from the hot loop entirely:

* ``access_count`` / ``last_access_seq`` are recovered at
  materialization *for resident frames only*.  Given a frame's final
  fill position ``f``, every later stream position touching that
  ``(set, tag)`` necessarily hit this incarnation of the block (had it
  been evicted after ``f``, a later touch would have re-filled it at a
  position ``> f``, and no touch after an eviction means the block
  would not be resident).  So ``access_count`` is the count of indexed
  positions ``>= f`` (one :func:`bisect.bisect_left`) and
  ``last_access_seq`` is the last indexed position's ``seq``.
* ``dirty`` is a pure function of the fill position: a block incarnation
  filled at ``f`` is dirty iff some access at position ``>= f`` (the
  fill itself included) wrote to its ``(set, tag)`` before the block
  left -- and by the same residency argument every such access up to the
  eviction (or the end of the stream) belongs to this incarnation.
  ``next_write[f]`` gives the first such position, so eviction-time
  writeback accounting is ``next_write[fill] < position`` and
  commit-time dirty is ``next_write[fill] < len(stream)``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PredictionPlane", "ReplayIndex", "SoACache"]


class ReplayIndex:
    """Per-(stream, geometry) grouping of a prepared LLC stream.

    Attributes:
        num_sets: geometry the grouping was built for.
        index_bits: ``log2(num_sets)`` (sets are a power of two).
        set_positions / set_tags: per set, the stream positions that map
            to it and their tags, in stream order (parallel lists).
        block_keys: per stream position, ``tag << index_bits |
            set_index`` -- the block address.  One key identifies a
            block globally, so the stream-order kernels can keep a
            single residency dict instead of one per set.
        tag_positions: per set, ``tag -> sorted stream positions``.
        next_write: per stream position ``p``, the first position
            ``>= p`` (``p`` itself included) that *writes* to the same
            ``(set, tag)``, or ``len(stream)`` when there is none.
        seq_is_position: True when every access's ``seq`` equals its
            stream position (the :class:`~repro.sim.hierarchy.PreparedStream`
            contract).  Proven once here so the materializer can write
            positions as sequence numbers without touching the access
            objects.
    """

    __slots__ = (
        "num_sets",
        "index_bits",
        "set_positions",
        "set_tags",
        "block_keys",
        "tag_positions",
        "next_write",
        "seq_is_position",
    )

    def __init__(
        self,
        num_sets: int,
        set_positions: List[List[int]],
        set_tags: List[List[int]],
        block_keys: List[int],
        tag_positions: List[Dict[int, List[int]]],
        next_write: List[int],
        seq_is_position: bool = False,
    ) -> None:
        self.num_sets = num_sets
        self.index_bits = num_sets.bit_length() - 1
        self.set_positions = set_positions
        self.set_tags = set_tags
        self.block_keys = block_keys
        self.tag_positions = tag_positions
        self.next_write = next_write
        self.seq_is_position = seq_is_position

    @classmethod
    def build(
        cls,
        accesses: Sequence,
        set_indices: Sequence[int],
        tags: Sequence[int],
        writes: Optional[Sequence[int]],
        num_sets: int,
    ) -> "ReplayIndex":
        """Group a decomposed stream by set.  One pass over the stream
        for the bucketing, one pass per set for the derived arrays."""
        if writes is None:
            writes = [access.is_write for access in accesses]
        total = len(set_indices)
        index_bits = num_sets.bit_length() - 1
        block_keys = [
            tag << index_bits | set_index
            for set_index, tag in zip(set_indices, tags)
        ]
        set_positions: List[List[int]] = [[] for _ in range(num_sets)]
        appends = [positions.append for positions in set_positions]
        for position, set_index in enumerate(set_indices):
            appends[set_index](position)
        set_tags: List[List[int]] = []
        tag_positions: List[Dict[int, List[int]]] = []
        next_write = [total] * total
        for positions in set_positions:
            local_tags = [tags[position] for position in positions]
            set_tags.append(local_tags)
            per_tag: Dict[int, List[int]] = {}
            per_tag_get = per_tag.get
            for position, tag in zip(positions, local_tags):
                bucket = per_tag_get(tag)
                if bucket is None:
                    per_tag[tag] = [position]
                else:
                    bucket.append(position)
            tag_positions.append(per_tag)
            for bucket in per_tag.values():
                nearest = total
                for position in reversed(bucket):
                    if writes[position]:
                        nearest = position
                    next_write[position] = nearest
        seq_is_position = all(
            access.seq == position for position, access in enumerate(accesses)
        )
        return cls(
            num_sets,
            set_positions,
            set_tags,
            block_keys,
            tag_positions,
            next_write,
            seq_is_position,
        )


class PredictionPlane:
    """Per-(workload, LLC geometry) precompute for the DBRB array kernel.

    The sampling predictor trains exclusively through its sampler, and
    the sampler observes every access to a sampled set whether the LLC
    hit or missed -- so sampler and skewed-table evolution is a pure
    function of the access stream, independent of LLC contents (see
    :func:`repro.core.sampler.simulate_sampled_stream` for the proof
    sketch).  This plane caches that one-pass simulation per
    ``(workload, num_llc_sets)`` on the
    :class:`~repro.sim.hierarchy.PreparedStream`:

    * ``dead[p]``: the per-access prediction bit, evaluated after
      position ``p``'s sampler update -- the only predictor output the
      LLC-side replay consumes;
    * the final sampler contents / LRU stacks / event counters and the
      final table counters, installed into each technique's fresh
      predictor objects at the end of its replay (copies, never
      aliases: the plane is shared across techniques).

    Built only for the paper-default predictor shape (32x12 sampler,
    15-bit tags/signatures, 3x4096 2-bit tables, threshold 8); the DBRB
    kernel's ``supports`` declines everything else to the object path.
    """

    __slots__ = (
        "num_llc_sets",
        "dead",
        "sampler_ways",
        "sampler_stacks",
        "tables",
        "sampler_counters",
    )

    def __init__(
        self,
        num_llc_sets: int,
        dead: bytearray,
        sampler_ways: List[List[Tuple[int, int, bool]]],
        sampler_stacks: List[List[int]],
        tables: List[List[int]],
        sampler_counters: Tuple[int, int, int],
    ) -> None:
        self.num_llc_sets = num_llc_sets
        self.dead = dead
        self.sampler_ways = sampler_ways
        self.sampler_stacks = sampler_stacks
        self.tables = tables
        self.sampler_counters = sampler_counters

    @classmethod
    def build(
        cls,
        accesses: Sequence,
        set_indices: Sequence[int],
        tags: Sequence[int],
        num_llc_sets: int,
    ) -> "PredictionPlane":
        """Simulate the sampler over a decomposed stream (default shape)."""
        from repro.core.sampler import simulate_sampled_stream

        pcs = [access.pc for access in accesses]
        dead, ways, stacks, tables, counters = simulate_sampled_stream(
            set_indices, tags, pcs, num_llc_sets
        )
        return cls(num_llc_sets, dead, ways, stacks, tables, counters)

    def install(self, predictor) -> None:
        """Copy the final sampler/table state into a fresh predictor.

        Leaves the predictor exactly as an object-kernel replay of the
        same stream would: table counters, sampler entries (way order),
        LRU stacks, and event counters.  Never-filled sampler ways stay
        at their fresh defaults, which is what the object path leaves
        too (the sampler never invalidates an entry).
        """
        for table, counters in zip(predictor.tables.tables, self.tables):
            table[:] = counters
        sampler = predictor.sampler
        for sampler_set, ways in enumerate(self.sampler_ways):
            entries = sampler.sets[sampler_set]
            for way, (partial, signature, prediction) in enumerate(ways):
                entry = entries[way]
                entry.valid = True
                entry.partial_tag = partial
                entry.signature = signature
                entry.prediction = prediction
            sampler._stacks[sampler_set][:] = self.sampler_stacks[sampler_set]
        accesses, hits, evictions = self.sampler_counters
        sampler.accesses = accesses
        sampler.hits = hits
        sampler.evictions = evictions


class SoACache:
    """Flat frame planes a kernel commits into, then materializes.

    Only sets a kernel actually touched carry state (``tag_index[s]`` is
    ``None`` for untouched sets); :meth:`to_cache` skips the rest, so a
    sparse stream pays for its own footprint only.
    """

    __slots__ = (
        "num_sets",
        "associativity",
        "tags",
        "valid",
        "dirty",
        "predicted_dead",
        "fill_pos",
        "tag_index",
        "_fills",
        "_dead",
        "_next_write",
        "_sentinel",
    )

    def __init__(self, num_sets: int, associativity: int) -> None:
        frames = num_sets * associativity
        self.num_sets = num_sets
        self.associativity = associativity
        self.tags = array("q", bytes(8 * frames))
        self.valid = bytearray(frames)
        self.dirty = bytearray(frames)
        self.predicted_dead = bytearray(frames)
        self.fill_pos = array("q", bytes(8 * frames))
        #: Per-set ``tag -> way`` over valid frames; None = set untouched.
        self.tag_index: List[Optional[Dict[int, int]]] = [None] * num_sets
        #: Per-set ``way -> final fill position`` (parallel to tag_index).
        self._fills: List[Optional[List[int]]] = [None] * num_sets
        #: Per-set ``way -> predicted-dead bit``; None = no dead-block
        #: kernel ran (the plane stays zero).
        self._dead: List[Optional[Sequence[int]]] = [None] * num_sets
        self._next_write: Sequence[int] = ()
        self._sentinel = 0

    @classmethod
    def for_run(cls, cache, index: ReplayIndex) -> "SoACache":
        """A fresh plane set for one replay of ``index``'s stream."""
        soa = cls(cache.geometry.num_sets, cache.geometry.associativity)
        soa._next_write = index.next_write
        soa._sentinel = len(index.next_write)
        return soa

    # ------------------------------------------------------------------
    def commit_set(
        self,
        set_index: int,
        tag_to_way: Dict[int, int],
        way_fill: List[int],
        filled: int,
        way_dead: Optional[Sequence[int]] = None,
    ) -> None:
        """Hand one set's kernel-local state over to the substrate.

        Kernels fill ways densely from 0 (the eligible policies never
        invalidate a frame), so ``filled`` bounds the valid ways.  The
        handoff is O(1): the kernel transfers ownership of its per-set
        ``tag -> way`` mapping and ``way -> fill position`` list, and
        :meth:`to_cache` writes the frame planes and the object blocks in
        one fused pass.  The dirty plane is derived there from the fill
        positions (see the module docstring) -- kernels never track it.
        ``way_dead`` carries the DBRB kernel's per-way predicted-dead
        bits; the simple policies never predict, so they omit it.
        """
        self.tag_index[set_index] = tag_to_way
        self._fills[set_index] = way_fill
        if way_dead is not None:
            self._dead[set_index] = way_dead

    # ------------------------------------------------------------------
    def to_cache(self, cache, accesses: Sequence, index: ReplayIndex) -> None:
        """Materialize the committed sets: planes *and* object substrate.

        One fused pass per resident frame writes the frame planes (tags,
        valid, dirty, fill position) and the corresponding
        :class:`~repro.cache.block.CacheBlock` fields -- including the
        recovered ``access_count`` / ``last_access_seq`` -- plus the
        per-set ``tag -> way`` index.  Leaves the cache exactly as the
        object kernel would have; statistics and policy state are
        committed by the replay driver and the kernel respectively.

        The predicted-dead plane follows the per-way bits the DBRB
        kernel committed (``way_dead``); the simple policies never
        predict, so their sets skip that branch and blocks keep their
        ``False``.

        Relies on the array path's cold-start eligibility: every frame
        starts invalid, and :meth:`~repro.cache.block.CacheBlock.invalidate`
        resets ``dirty`` / ``predicted_dead`` / ``meta``, so those fields
        only need a write when the replay turned them on.
        """
        sets = cache.sets
        cache_index = cache._tag_index
        tag_positions = index.tag_positions
        seq_is_position = index.seq_is_position
        associativity = self.associativity
        tags_plane = self.tags
        valid = self.valid
        dirty = self.dirty
        dead_plane = self.predicted_dead
        fill_pos = self.fill_pos
        fills = self._fills
        dead_by_set = self._dead
        next_write = self._next_write
        sentinel = self._sentinel
        for set_index, tag_to_way in enumerate(self.tag_index):
            if tag_to_way is None:
                continue
            target = cache_index[set_index]
            target.clear()
            target.update(tag_to_way)
            way_fill = fills[set_index]
            way_dead = dead_by_set[set_index]
            per_tag = tag_positions[set_index]
            blocks = sets[set_index]
            base = set_index * associativity
            for tag, way in tag_to_way.items():
                frame = base + way
                fill_position = way_fill[way]
                tags_plane[frame] = tag
                valid[frame] = 1
                fill_pos[frame] = fill_position
                if way_dead is not None and way_dead[way]:
                    dead_plane[frame] = 1
                    blocks[way].predicted_dead = True
                positions = per_tag[tag]
                # Never-evicted blocks (the common case) were filled at
                # their tag's first position: skip the bisect.
                if positions[0] == fill_position:
                    first = 0
                else:
                    first = bisect_left(positions, fill_position)
                last_position = positions[-1]
                block = blocks[way]
                block.valid = True
                block.tag = tag
                if next_write[fill_position] < sentinel:
                    dirty[frame] = 1
                    block.dirty = True
                if seq_is_position:
                    block.fill_seq = fill_position
                    block.last_access_seq = last_position
                else:
                    block.fill_seq = accesses[fill_position].seq
                    block.last_access_seq = accesses[last_position].seq
                block.access_count = len(positions) - first
