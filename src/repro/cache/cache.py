"""The set-associative cache model.

A :class:`Cache` owns the block frames and statistics and delegates every
*decision* -- who to victimize, where to insert, whether to bypass -- to a
replacement policy object (see :mod:`repro.replacement.base` for the
interface).  This mirrors the structure of the paper's evaluation, where one
LLC model is driven in turn by LRU, random, DIP, RRIP, the optimal policy,
and the dead-block replacement-and-bypass (DBRB) policy with each of the
three predictors.

Access flow (one call to :meth:`Cache.access`):

1. decompose the address into set index and tag;
2. probe the set; on a hit, notify the policy and return;
3. on a miss, notify the policy, then ask it whether the block should
   **bypass** the cache (paper Section V: blocks predicted dead on arrival
   are not placed);
4. otherwise pick a frame -- an invalid one if present, else the policy's
   victim -- evict its occupant, and fill.

Lookup cost: each set keeps a ``tag -> way`` index alongside the block
frames, so the probe in step 2 is one dict lookup instead of an
O(associativity) tag scan -- on the paper's 16-way LLC this is the single
hottest operation of every experiment.  The index is maintained through
:meth:`_install_frame` / :meth:`_clear_frame`; subclasses that move blocks
around directly (e.g. the victim-relocation cache) must use those helpers
rather than calling ``block.fill`` / ``block.invalidate`` themselves.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.cache.block import CacheBlock
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.telemetry.probe import NULL_PROBE, TelemetryProbe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.replacement.base import ReplacementPolicy

__all__ = ["Cache", "CacheAccess", "CacheObserver", "ParanoidViolation"]

_TRUTHY = ("1", "true", "yes", "on")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


class ParanoidViolation(AssertionError):
    """A paranoid-mode invariant check failed: the cache's fast-path
    bookkeeping (tag index, policy metadata, statistics) disagrees with
    the ground-truth frame array.  Always a simulator bug, never a
    property of the workload."""


class CacheAccess:
    """One demand access presented to a cache.

    Attributes:
        address: byte address.
        pc: program counter of the memory instruction.  This is the *only*
            program information the sampling predictor uses (paper
            Section III-C).
        is_write: store vs load.
        seq: global sequence number of the access; doubles as the logical
            clock for the optimal policy and the efficiency analysis.
        core: issuing core id (0 for single-core runs); consulted by the
            thread-aware policies (TADIP, thread-aware DRRIP).
    """

    __slots__ = ("address", "core", "is_write", "pc", "seq")

    def __init__(
        self,
        address: int,
        pc: int,
        is_write: bool = False,
        seq: int = 0,
        core: int = 0,
    ) -> None:
        self.address = address
        self.pc = pc
        self.is_write = is_write
        self.seq = seq
        self.core = core

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"CacheAccess({kind} addr={self.address:#x} pc={self.pc:#x} seq={self.seq})"


class CacheObserver:
    """Optional hook observing cache events; base class is a no-op.

    The efficiency analysis (Figure 1) and the accuracy analysis (Figure 9)
    attach observers rather than patching the cache, so the measured cache
    is exactly the one the policies run on.  Replay with no observer
    attached skips the notification loops entirely.
    """

    def on_hit(self, set_index: int, way: int, block: CacheBlock, access: CacheAccess) -> None:
        """Called after a hit is recorded on ``block``."""

    def on_fill(self, set_index: int, way: int, block: CacheBlock, access: CacheAccess) -> None:
        """Called after a new block is installed in ``block``."""

    def on_evict(self, set_index: int, way: int, block: CacheBlock, access: CacheAccess) -> None:
        """Called just before the occupant of ``block`` is invalidated.

        ``access`` is the miss that forced the eviction.
        """

    def on_bypass(self, set_index: int, access: CacheAccess) -> None:
        """Called when a missing block is not placed in the cache."""


class Cache:
    """A set-associative cache driven by a replacement policy.

    Args:
        geometry: shape of the cache.
        policy: decision-maker implementing the
            :class:`repro.replacement.base.ReplacementPolicy` interface.
        name: label used in reports ("L1D", "LLC", ...).
        paranoid: validate the tag->way index against the frame array,
            the policy's internal integrity, and statistics monotonicity
            after every access (slow; for debugging and fault tests).
            ``None`` defers to the ``REPRO_PARANOID`` environment flag.
        probe: telemetry probe the replay engine drives at epoch
            boundaries (see :mod:`repro.telemetry.probe`).  Defaults to
            the shared inert :data:`~repro.telemetry.probe.NULL_PROBE`;
            probes are strictly observational and never change results.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: "ReplacementPolicy",
        name: str = "cache",
        paranoid: Optional[bool] = None,
        probe: Optional[TelemetryProbe] = None,
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.name = name
        self.probe = probe if probe is not None else NULL_PROBE
        self.paranoid = (
            _env_flag("REPRO_PARANOID") if paranoid is None else bool(paranoid)
        )
        self._stats_floor = CacheStats()
        self.stats = CacheStats()
        self.sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        #: Per-set ``tag -> way`` index over *valid* frames; the invariant
        #: is that every valid frame's tag maps to its way (frames holding
        #: a sentinel tag that can collide, like the VVC's relocation
        #: marker, keep only the most recent mapping -- such tags are never
        #: produced by address decomposition, so demand lookups are exact).
        self._tag_index: List[Dict[int, int]] = [
            {} for _ in range(geometry.num_sets)
        ]
        # Address arithmetic hoisted out of geometry method calls; these
        # mirror CacheGeometry.set_index/tag exactly.
        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._index_mask = geometry.num_sets - 1
        self._observers: List[CacheObserver] = []
        #: Which replay kernel last drove this cache ("array" / "object";
        #: None until the first replay) and, for the object kernel, why
        #: the array path declined.  Strictly observational -- set by
        #: :func:`repro.sim.replay.replay`, read by run manifests and the
        #: service's /stats aggregation; never consulted by the model.
        self.last_replay_kernel: Optional[str] = None
        self.last_replay_fallback: Optional[str] = None
        policy.bind(self)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: CacheObserver) -> None:
        """Attach an event observer (see :class:`CacheObserver`)."""
        self._observers.append(observer)

    @property
    def has_observers(self) -> bool:
        """True when at least one observer is attached (replay consults
        this to pick the zero-observer fast path)."""
        return bool(self._observers)

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def find(self, set_index: int, tag: int) -> Optional[int]:
        """Return the way holding ``tag`` in ``set_index``, or None."""
        return self._tag_index[set_index].get(tag)

    def contains(self, address: int) -> bool:
        """True if the block containing ``address`` is currently resident."""
        block_address = address >> self._offset_bits
        set_index = block_address & self._index_mask
        tag = block_address >> self._index_bits
        return tag in self._tag_index[set_index]

    def resident_blocks(self):
        """Yield ``(set_index, way, block)`` for every valid frame."""
        for set_index, ways in enumerate(self.sets):
            for way, block in enumerate(ways):
                if block.valid:
                    yield set_index, way, block

    # ------------------------------------------------------------------
    # paranoid invariant checking
    # ------------------------------------------------------------------
    def _violation(self, message: str) -> None:
        raise ParanoidViolation(f"{self.name}: {message}")

    def _check_set(self, set_index: int) -> None:
        """Validate one set's tag index against its frames, plus the
        policy's own integrity for that set."""
        blocks = self.sets[set_index]
        index = self._tag_index[set_index]
        associativity = self.geometry.associativity
        for tag, way in index.items():
            if not 0 <= way < associativity:
                self._violation(
                    f"set {set_index}: index maps tag {tag:#x} to "
                    f"out-of-range way {way}"
                )
            block = blocks[way]
            if not block.valid:
                self._violation(
                    f"set {set_index}: index maps tag {tag:#x} to invalid "
                    f"frame (way {way})"
                )
            if block.tag != tag:
                self._violation(
                    f"set {set_index} way {way}: index says tag {tag:#x}, "
                    f"frame holds {block.tag:#x}"
                )
        for way, block in enumerate(blocks):
            # Sentinel tags (negative; never produced by address
            # decomposition, e.g. the VVC relocation marker) may collide
            # within a set, and the index then keeps only the most recent
            # mapping -- so only real tags demand an exact entry.
            if block.valid and block.tag >= 0 and index.get(block.tag) != way:
                self._violation(
                    f"set {set_index} way {way}: valid frame tag "
                    f"{block.tag:#x} not indexed to its way "
                    f"(index says {index.get(block.tag)!r})"
                )
        self.policy.check_integrity(set_index)

    def _check_stats(self) -> None:
        """Statistics identity and monotonicity since the last check."""
        stats, floor = self.stats, self._stats_floor
        if stats.hits + stats.misses != stats.accesses:
            self._violation(
                f"stats identity broken: hits {stats.hits} + misses "
                f"{stats.misses} != accesses {stats.accesses}"
            )
        for field in (
            "accesses", "hits", "misses", "fills",
            "evictions", "writebacks", "bypasses", "dead_block_victims",
        ):
            now, before = getattr(stats, field), getattr(floor, field)
            if now < before:
                self._violation(
                    f"stats counter {field} went backwards: "
                    f"{before} -> {now}"
                )
        self._stats_floor = stats.snapshot()

    def check_invariants(self, set_index: Optional[int] = None) -> None:
        """Machine-check the cache's coherence invariants.

        With ``set_index`` given, validates that set's structures only
        (the per-access fast-path check); with ``None``, validates every
        set plus the statistics counters.  Raises
        :class:`ParanoidViolation` on the first inconsistency.
        """
        if set_index is not None:
            self._check_set(set_index)
            return
        for index in range(self.geometry.num_sets):
            self._check_set(index)
        self._check_stats()

    def _paranoid_check(self, set_index: int) -> None:
        self._check_set(set_index)
        self._check_stats()

    # ------------------------------------------------------------------
    # frame bookkeeping (the only writers of the tag index)
    # ------------------------------------------------------------------
    def _install_frame(
        self, set_index: int, way: int, tag: int, seq: int, is_write: bool
    ) -> CacheBlock:
        """Fill ``(set_index, way)`` with a block, keeping the index
        coherent.  No statistics or policy callbacks; callers layer those."""
        block = self.sets[set_index][way]
        block.fill(tag, seq, is_write)
        self._tag_index[set_index][tag] = way
        return block

    def _clear_frame(self, set_index: int, way: int) -> CacheBlock:
        """Invalidate ``(set_index, way)``, keeping the index coherent.
        No statistics or policy callbacks; callers layer those."""
        block = self.sets[set_index][way]
        index = self._tag_index[set_index]
        if index.get(block.tag) == way:
            del index[block.tag]
        block.invalidate()
        return block

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def access(self, access: CacheAccess) -> bool:
        """Perform one demand access.  Returns True on a hit."""
        block_address = access.address >> self._offset_bits
        set_index = block_address & self._index_mask
        tag = block_address >> self._index_bits
        stats = self.stats
        stats.accesses += 1

        way = self._tag_index[set_index].get(tag)
        if way is not None:
            block = self.sets[set_index][way]
            stats.hits += 1
            block.touch(access.seq, access.is_write)
            self.policy.on_hit(set_index, way, access)
            if self._observers:
                for observer in self._observers:
                    observer.on_hit(set_index, way, block, access)
            if self.paranoid:
                self._paranoid_check(set_index)
            return True

        stats.misses += 1
        self.policy.on_miss(set_index, access)

        if self.policy.should_bypass(set_index, access):
            stats.bypasses += 1
            if self._observers:
                for observer in self._observers:
                    observer.on_bypass(set_index, access)
            if self.paranoid:
                self._paranoid_check(set_index)
            return False

        way = self._frame_for_fill(set_index, access)
        if self.sets[set_index][way].valid:
            self._evict(set_index, way, access)
        block = self._install_frame(set_index, way, tag, access.seq, access.is_write)
        stats.fills += 1
        self.policy.on_fill(set_index, way, access)
        if self._observers:
            for observer in self._observers:
                observer.on_fill(set_index, way, block, access)
        if self.paranoid:
            self._paranoid_check(set_index)
        return False

    def _frame_for_fill(self, set_index: int, access: CacheAccess) -> int:
        """Pick the frame the missing block will occupy."""
        blocks = self.sets[set_index]
        # A full set has one index entry per frame; only scan for an
        # invalid frame when the index says one may exist.
        if len(self._tag_index[set_index]) < len(blocks):
            for way, block in enumerate(blocks):
                if not block.valid:
                    return way
        way = self.policy.choose_victim(set_index, access)
        if not 0 <= way < self.geometry.associativity:
            raise ValueError(
                f"policy {self.policy!r} chose invalid victim way {way}"
            )
        return way

    def _evict(self, set_index: int, way: int, access: CacheAccess) -> None:
        block = self.sets[set_index][way]
        self.stats.evictions += 1
        if block.dirty:
            self.stats.writebacks += 1
        if block.predicted_dead:
            self.stats.dead_block_victims += 1
        self.policy.on_evict(set_index, way, access)
        if self._observers:
            for observer in self._observers:
                observer.on_evict(set_index, way, block, access)
        self._clear_frame(set_index, way)

    # ------------------------------------------------------------------
    # direct installation (prefetchers, victim relocation)
    # ------------------------------------------------------------------
    def insert(self, access: CacheAccess, way: int) -> None:
        """Install ``access``'s block into ``way`` of its set directly.

        Evicts the current occupant (full eviction bookkeeping runs) and
        fills without consulting the bypass or victim-selection hooks --
        the caller has already decided placement.  Used by the prefetch
        engine and the victim-relocation extension; demand traffic should
        go through :meth:`access`.
        """
        if not 0 <= way < self.geometry.associativity:
            raise ValueError(f"way {way} out of range")
        set_index = self.geometry.set_index(access.address)
        tag = self.geometry.tag(access.address)
        existing = self.find(set_index, tag)
        if existing is not None and existing != way:
            raise ValueError(
                f"block {access.address:#x} already resident in way {existing}"
            )
        block = self.sets[set_index][way]
        if block.valid and block.tag != tag:
            self._evict(set_index, way, access)
        block = self._install_frame(set_index, way, tag, access.seq, access.is_write)
        self.stats.fills += 1
        self.policy.on_fill(set_index, way, access)
        if self._observers:
            for observer in self._observers:
                observer.on_fill(set_index, way, block, access)
        if self.paranoid:
            self._check_set(set_index)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every frame (no writeback accounting), reset nothing else."""
        for ways in self.sets:
            for block in ways:
                block.invalidate()
        for index in self._tag_index:
            index.clear()

    def __repr__(self) -> str:
        return f"Cache({self.name}, {self.geometry.describe()}, policy={self.policy!r})"
