"""The set-associative cache model.

A :class:`Cache` owns the block frames and statistics and delegates every
*decision* -- who to victimize, where to insert, whether to bypass -- to a
replacement policy object (see :mod:`repro.replacement.base` for the
interface).  This mirrors the structure of the paper's evaluation, where one
LLC model is driven in turn by LRU, random, DIP, RRIP, the optimal policy,
and the dead-block replacement-and-bypass (DBRB) policy with each of the
three predictors.

Access flow (one call to :meth:`Cache.access`):

1. decompose the address into set index and tag;
2. probe the set; on a hit, notify the policy and return;
3. on a miss, notify the policy, then ask it whether the block should
   **bypass** the cache (paper Section V: blocks predicted dead on arrival
   are not placed);
4. otherwise pick a frame -- an invalid one if present, else the policy's
   victim -- evict its occupant, and fill.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.cache.block import CacheBlock
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.replacement.base import ReplacementPolicy

__all__ = ["Cache", "CacheAccess", "CacheObserver"]


class CacheAccess:
    """One demand access presented to a cache.

    Attributes:
        address: byte address.
        pc: program counter of the memory instruction.  This is the *only*
            program information the sampling predictor uses (paper
            Section III-C).
        is_write: store vs load.
        seq: global sequence number of the access; doubles as the logical
            clock for the optimal policy and the efficiency analysis.
        core: issuing core id (0 for single-core runs); consulted by the
            thread-aware policies (TADIP, thread-aware DRRIP).
    """

    __slots__ = ("address", "core", "is_write", "pc", "seq")

    def __init__(
        self,
        address: int,
        pc: int,
        is_write: bool = False,
        seq: int = 0,
        core: int = 0,
    ) -> None:
        self.address = address
        self.pc = pc
        self.is_write = is_write
        self.seq = seq
        self.core = core

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"CacheAccess({kind} addr={self.address:#x} pc={self.pc:#x} seq={self.seq})"


class CacheObserver:
    """Optional hook observing cache events; base class is a no-op.

    The efficiency analysis (Figure 1) and the accuracy analysis (Figure 9)
    attach observers rather than patching the cache, so the measured cache
    is exactly the one the policies run on.
    """

    def on_hit(self, set_index: int, way: int, block: CacheBlock, access: CacheAccess) -> None:
        """Called after a hit is recorded on ``block``."""

    def on_fill(self, set_index: int, way: int, block: CacheBlock, access: CacheAccess) -> None:
        """Called after a new block is installed in ``block``."""

    def on_evict(self, set_index: int, way: int, block: CacheBlock, access: CacheAccess) -> None:
        """Called just before the occupant of ``block`` is invalidated.

        ``access`` is the miss that forced the eviction.
        """

    def on_bypass(self, set_index: int, access: CacheAccess) -> None:
        """Called when a missing block is not placed in the cache."""


class Cache:
    """A set-associative cache driven by a replacement policy.

    Args:
        geometry: shape of the cache.
        policy: decision-maker implementing the
            :class:`repro.replacement.base.ReplacementPolicy` interface.
        name: label used in reports ("L1D", "LLC", ...).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: "ReplacementPolicy",
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.name = name
        self.stats = CacheStats()
        self.sets: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        self._observers: List[CacheObserver] = []
        policy.bind(self)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: CacheObserver) -> None:
        """Attach an event observer (see :class:`CacheObserver`)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def find(self, set_index: int, tag: int) -> Optional[int]:
        """Return the way holding ``tag`` in ``set_index``, or None."""
        for way, block in enumerate(self.sets[set_index]):
            if block.valid and block.tag == tag:
                return way
        return None

    def contains(self, address: int) -> bool:
        """True if the block containing ``address`` is currently resident."""
        set_index = self.geometry.set_index(address)
        return self.find(set_index, self.geometry.tag(address)) is not None

    def resident_blocks(self):
        """Yield ``(set_index, way, block)`` for every valid frame."""
        for set_index, ways in enumerate(self.sets):
            for way, block in enumerate(ways):
                if block.valid:
                    yield set_index, way, block

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def access(self, access: CacheAccess) -> bool:
        """Perform one demand access.  Returns True on a hit."""
        geometry = self.geometry
        set_index = geometry.set_index(access.address)
        tag = geometry.tag(access.address)
        blocks = self.sets[set_index]
        stats = self.stats
        stats.accesses += 1

        for way, block in enumerate(blocks):
            if block.valid and block.tag == tag:
                stats.hits += 1
                block.touch(access.seq, access.is_write)
                self.policy.on_hit(set_index, way, access)
                for observer in self._observers:
                    observer.on_hit(set_index, way, block, access)
                return True

        stats.misses += 1
        self.policy.on_miss(set_index, access)

        if self.policy.should_bypass(set_index, access):
            stats.bypasses += 1
            for observer in self._observers:
                observer.on_bypass(set_index, access)
            return False

        way = self._frame_for_fill(set_index, access)
        block = blocks[way]
        if block.valid:
            self._evict(set_index, way, access)
        block.fill(tag, access.seq, access.is_write)
        stats.fills += 1
        self.policy.on_fill(set_index, way, access)
        for observer in self._observers:
            observer.on_fill(set_index, way, block, access)
        return False

    def _frame_for_fill(self, set_index: int, access: CacheAccess) -> int:
        """Pick the frame the missing block will occupy."""
        for way, block in enumerate(self.sets[set_index]):
            if not block.valid:
                return way
        way = self.policy.choose_victim(set_index, access)
        if not 0 <= way < self.geometry.associativity:
            raise ValueError(
                f"policy {self.policy!r} chose invalid victim way {way}"
            )
        return way

    def _evict(self, set_index: int, way: int, access: CacheAccess) -> None:
        block = self.sets[set_index][way]
        self.stats.evictions += 1
        if block.dirty:
            self.stats.writebacks += 1
        if block.predicted_dead:
            self.stats.dead_block_victims += 1
        self.policy.on_evict(set_index, way, access)
        for observer in self._observers:
            observer.on_evict(set_index, way, block, access)
        block.invalidate()

    # ------------------------------------------------------------------
    # direct installation (prefetchers, victim relocation)
    # ------------------------------------------------------------------
    def insert(self, access: CacheAccess, way: int) -> None:
        """Install ``access``'s block into ``way`` of its set directly.

        Evicts the current occupant (full eviction bookkeeping runs) and
        fills without consulting the bypass or victim-selection hooks --
        the caller has already decided placement.  Used by the prefetch
        engine and the victim-relocation extension; demand traffic should
        go through :meth:`access`.
        """
        if not 0 <= way < self.geometry.associativity:
            raise ValueError(f"way {way} out of range")
        set_index = self.geometry.set_index(access.address)
        tag = self.geometry.tag(access.address)
        existing = self.find(set_index, tag)
        if existing is not None and existing != way:
            raise ValueError(
                f"block {access.address:#x} already resident in way {existing}"
            )
        block = self.sets[set_index][way]
        if block.valid and block.tag != tag:
            self._evict(set_index, way, access)
        block.fill(tag, access.seq, access.is_write)
        self.stats.fills += 1
        self.policy.on_fill(set_index, way, access)
        for observer in self._observers:
            observer.on_fill(set_index, way, block, access)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate every frame (no writeback accounting), reset nothing else."""
        for ways in self.sets:
            for block in ways:
                block.invalidate()

    def __repr__(self) -> str:
        return f"Cache({self.name}, {self.geometry.describe()}, policy={self.policy!r})"
