"""Set-associative cache substrate.

This package implements the hardware structures that every experiment in the
paper runs on: block/tag bookkeeping, set-associative lookup, fills,
evictions, bypass, and statistics.  Replacement decisions are delegated to a
policy object (see :mod:`repro.replacement`), which is how the paper's
techniques -- LRU, random, DIP, RRIP, and the dead-block replacement and
bypass policy -- all share one cache model.
"""

from repro.cache.block import CacheBlock
from repro.cache.cache import Cache, CacheAccess, CacheObserver
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats

__all__ = [
    "Cache",
    "CacheAccess",
    "CacheBlock",
    "CacheGeometry",
    "CacheObserver",
    "CacheStats",
]
