"""Cache geometry: sizes, associativity, and address decomposition.

A :class:`CacheGeometry` is an immutable description of a cache's shape and
owns all the address arithmetic (offset / set index / tag).  The paper's
machine (Section VI-A) is expressed with three of these:

* L1D: 32KB, 8-way, 64B blocks
* L2: 256KB, 8-way, 64B blocks
* LLC: 2MB per core, 16-way, 64B blocks (8MB shared for quad-core)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.bits import ilog2, is_power_of_two, mask

__all__ = ["CacheGeometry"]


@dataclass(frozen=True)
class CacheGeometry:
    """Immutable geometric description of a set-associative cache.

    Attributes:
        size_bytes: total data capacity in bytes.
        associativity: number of ways per set.
        block_bytes: block (line) size in bytes; the paper uses 64B.
    """

    size_bytes: int
    associativity: int
    block_bytes: int = 64

    # Derived fields, computed in __post_init__.
    num_sets: int = field(init=False)
    offset_bits: int = field(init=False)
    index_bits: int = field(init=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"cache size must be positive, got {self.size_bytes}")
        if self.associativity <= 0:
            raise ValueError(
                f"associativity must be positive, got {self.associativity}"
            )
        if not is_power_of_two(self.block_bytes):
            raise ValueError(
                f"block size must be a power of two, got {self.block_bytes}"
            )
        blocks = self.size_bytes // self.block_bytes
        if blocks * self.block_bytes != self.size_bytes:
            raise ValueError("cache size must be a multiple of the block size")
        if blocks % self.associativity != 0:
            raise ValueError(
                f"{blocks} blocks cannot be divided into {self.associativity}-way sets"
            )
        num_sets = blocks // self.associativity
        if not is_power_of_two(num_sets):
            raise ValueError(
                f"number of sets must be a power of two, got {num_sets}"
            )
        object.__setattr__(self, "num_sets", num_sets)
        object.__setattr__(self, "offset_bits", ilog2(self.block_bytes))
        object.__setattr__(self, "index_bits", ilog2(num_sets))

    @property
    def num_blocks(self) -> int:
        """Total number of blocks in the cache."""
        return self.num_sets * self.associativity

    def block_address(self, address: int) -> int:
        """Strip the block offset, leaving the block-aligned address."""
        return address >> self.offset_bits

    def set_index(self, address: int) -> int:
        """Set index for a byte address."""
        return (address >> self.offset_bits) & mask(self.index_bits)

    def tag(self, address: int) -> int:
        """Tag for a byte address (everything above offset+index bits)."""
        return address >> (self.offset_bits + self.index_bits)

    def rebuild_address(self, tag: int, set_index: int) -> int:
        """Inverse of :meth:`set_index`/:meth:`tag`; offset bits are zero.

        Used by tests and by writeback bookkeeping to reconstruct the byte
        address a (tag, set) pair refers to.
        """
        if not 0 <= set_index < self.num_sets:
            raise ValueError(f"set index {set_index} out of range")
        return ((tag << self.index_bits) | set_index) << self.offset_bits

    def scaled(self, factor: int) -> "CacheGeometry":
        """Return a geometry with capacity divided by ``factor``.

        Associativity and block size are preserved -- only the number of sets
        shrinks -- which is how the benchmark harness scales the paper's 2MB
        LLC down to Python-friendly sizes while keeping the set-associative
        behaviour identical.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        if self.size_bytes % factor != 0:
            raise ValueError(
                f"cannot scale {self.size_bytes}B cache by factor {factor}"
            )
        return CacheGeometry(
            size_bytes=self.size_bytes // factor,
            associativity=self.associativity,
            block_bytes=self.block_bytes,
        )

    def describe(self) -> str:
        """Human-readable one-line description, e.g. ``2MB 16-way 64B``."""
        size = self.size_bytes
        if size % (1 << 20) == 0:
            size_text = f"{size >> 20}MB"
        elif size % (1 << 10) == 0:
            size_text = f"{size >> 10}KB"
        else:
            size_text = f"{size}B"
        return f"{size_text} {self.associativity}-way {self.block_bytes}B"
