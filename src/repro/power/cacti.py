"""CACTI-lite: an analytic SRAM power model (substitute for CACTI 5.3).

The paper's Table II reports leakage and dynamic power for each predictor
component from CACTI 5.3 simulations at the technology node of a 2MB LLC
whose own budget is **2.75W dynamic / 0.512W leakage**.  CACTI is not
available here, so this module provides a small analytic model with the
same interface shape, calibrated as follows:

* **leakage** is proportional to bit count (SRAM leakage is dominated by
  the cell array), with a peripheral multiplier for associative tag
  arrays; the per-bit constant is anchored so the reftrace predictor's
  total (72KB of state) lands on the paper's 2.9%-of-0.512W figure.
* **dynamic** per-bank energy follows a log-log interpolation through
  anchor points chosen to reproduce CACTI's published behaviour for
  small RAMs (and, transitively, the paper's three predictor totals);
  tag arrays read narrow entries and get a sub-unity width factor, and
  per-block cache metadata is charged per read-modify-write bit -- the
  paper's point that reftrace/counting pay for a metadata RMW on *every*
  access is what this term expresses.

The model is documented-calibration, not physics: it exists so that
``benchmarks/bench_table2_power.py`` can regenerate Table II's rows and
ratios (sampler ~3.1% of LLC dynamic vs ~11% for counting; sampler
leakage ~40% of reftrace's and ~25% of counting's) from the same
structural descriptions the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["CactiLite", "SRAMArray", "LLC_DYNAMIC_WATTS", "LLC_LEAKAGE_WATTS"]

#: The paper's baseline 2MB LLC power (Section IV-D).
LLC_DYNAMIC_WATTS = 2.75
LLC_LEAKAGE_WATTS = 0.512

#: Leakage per bit, anchored to reftrace's 72KB -> 2.9% x 0.512W.
_LEAK_PER_BIT = 0.0149 / (72 * 1024 * 8)

#: Peripheral multiplier for associative (tag) arrays' leakage.
_TAG_LEAK_FACTOR = 3.3

#: Dynamic-energy anchors: (bank size in KB, watts at peak access rate).
_DYNAMIC_ANCHORS: List[Tuple[float, float]] = [
    (1.0, 0.012),
    (8.0, 0.084),
    (32.0, 0.230),
]

#: Width factor for tag arrays (narrow reads vs full RAM rows).
_TAG_DYNAMIC_FACTOR = 0.63

#: Watts per metadata bit read-modify-written in the LLC data array on
#: every access (the reftrace/counting per-access metadata cost).
_METADATA_RMW_PER_BIT = 0.0041


def _interpolate_dynamic(bank_kbytes: float) -> float:
    """Log-log interpolation (and extrapolation) through the anchors."""
    if bank_kbytes <= 0:
        raise ValueError(f"bank size must be positive, got {bank_kbytes}")
    anchors = _DYNAMIC_ANCHORS
    if bank_kbytes <= anchors[0][0]:
        low, high = anchors[0], anchors[1]
    elif bank_kbytes >= anchors[-1][0]:
        low, high = anchors[-2], anchors[-1]
    else:
        low, high = anchors[0], anchors[1]
        for left, right in zip(anchors, anchors[1:]):
            if left[0] <= bank_kbytes <= right[0]:
                low, high = left, right
                break
    slope = math.log(high[1] / low[1]) / math.log(high[0] / low[0])
    return low[1] * (bank_kbytes / low[0]) ** slope


@dataclass(frozen=True)
class SRAMArray:
    """A physical structure whose power is being modeled.

    Attributes:
        name: label ("prediction tables", "sampler tag array", ...).
        bits: total storage bits.
        banks: simultaneously accessed banks (the skewed predictor reads
            three banks per prediction; paper Section IV-D).
        tag_array: associative tag structure (sampler) vs tagless RAM.
        metadata_bits: per-access read-modify-write bits inside the cache
            data array (0 for structures outside the cache).
    """

    name: str
    bits: int
    banks: int = 1
    tag_array: bool = False
    metadata_bits: int = 0


class CactiLite:
    """Evaluate leakage and peak dynamic power of SRAM structures."""

    def leakage_watts(self, array: SRAMArray) -> float:
        """Leakage of the structure (metadata bits leak inside the cache
        array and are charged at the plain RAM rate)."""
        factor = _TAG_LEAK_FACTOR if array.tag_array else 1.0
        return array.bits * _LEAK_PER_BIT * factor

    def dynamic_watts(self, array: SRAMArray) -> float:
        """Peak dynamic power when the structure is accessed every cycle.

        CACTI reports peak power; the paper notes the sampler's *actual*
        dynamic power is far lower because it is touched on <2% of LLC
        accesses -- scale by an access fraction externally if desired.
        """
        if array.bits > 0 and array.banks > 0:
            bank_kbytes = array.bits / 8 / 1024 / array.banks
            per_bank = _interpolate_dynamic(bank_kbytes)
            if array.tag_array:
                per_bank *= _TAG_DYNAMIC_FACTOR
            structure = per_bank * array.banks
        else:
            structure = 0.0
        return structure + array.metadata_bits * _METADATA_RMW_PER_BIT

    # ------------------------------------------------------------------
    def llc_fraction_dynamic(self, watts: float) -> float:
        """A structure's dynamic power as a fraction of the baseline LLC."""
        return watts / LLC_DYNAMIC_WATTS

    def llc_fraction_leakage(self, watts: float) -> float:
        """A structure's leakage as a fraction of the baseline LLC."""
        return watts / LLC_LEAKAGE_WATTS
