"""Predictor storage accounting (paper Table I).

Reproduces the paper's arithmetic exactly:

===========  ====================  ==========================  ========
Predictor    Predictor structures  Cache metadata              Total
===========  ====================  ==========================  ========
reftrace     8KB table             16 bits x 32K blocks = 64KB 72KB
counting     2^16 x 5-bit = 40KB   17 bits x 32K blocks = 68KB 108KB
sampler      3 x 1KB tables        1 bit x 32K blocks = 4KB    13.75KB
             + 6.75KB sampler
===========  ====================  ==========================  ========

A note on the sampler line: Section III-A of the paper says the sampler
has **32 sets**, but Section III-D counts "1,536 [signatures] for a 12-way
32-set sampler" and Table I charges 6.75KB -- both of which correspond to
**128 sets** x 12 ways x 36 bits/entry (32 x 12 = 384 entries would be
only 1.69KB).  We reproduce the *printed* Table I with
``sampler_sets=128`` (the default here) and expose the knob so the
32-set arithmetic is one argument away.  The simulated sampler follows the
paper's stated 32-set design point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry

__all__ = [
    "StorageBreakdown",
    "counting_storage",
    "reftrace_storage",
    "sampler_storage",
    "storage_table",
]


@dataclass(frozen=True)
class StorageBreakdown:
    """Storage cost of one predictor attached to one cache."""

    predictor: str
    structure_bits: int      # tables, sampler arrays -- outside the cache
    metadata_bits_per_block: int
    cache_blocks: int

    @property
    def metadata_bits(self) -> int:
        """Total extra metadata carried inside the cache."""
        return self.metadata_bits_per_block * self.cache_blocks

    @property
    def total_bits(self) -> int:
        return self.structure_bits + self.metadata_bits

    @property
    def total_kbytes(self) -> float:
        return self.total_bits / 8 / 1024

    def fraction_of_cache(self, geometry: CacheGeometry) -> float:
        """Total state as a fraction of the cache's data capacity."""
        return self.total_bits / (geometry.size_bytes * 8)


def reftrace_storage(geometry: CacheGeometry) -> StorageBreakdown:
    """Reftrace: a 2^15-entry 2-bit table, 15-bit signature + 1 dead bit
    per block (paper Section IV-A)."""
    return StorageBreakdown(
        predictor="reftrace",
        structure_bits=(1 << 15) * 2,
        metadata_bits_per_block=15 + 1,
        cache_blocks=geometry.num_blocks,
    )


def counting_storage(geometry: CacheGeometry) -> StorageBreakdown:
    """Counting (LvP): a 2^16-entry table of 5-bit entries (4-bit count +
    1-bit confidence); per block an 8-bit hashed PC, two 4-bit counts, and
    a confidence bit (paper Section IV-B)."""
    return StorageBreakdown(
        predictor="counting",
        structure_bits=(1 << 16) * 5,
        metadata_bits_per_block=8 + 4 + 4 + 1,
        cache_blocks=geometry.num_blocks,
    )


def sampler_storage(
    geometry: CacheGeometry,
    sampler_sets: int = 128,
    sampler_assoc: int = 12,
) -> StorageBreakdown:
    """Sampling predictor: three 4,096-entry 2-bit tables, the sampler
    array (36 bits per entry: 15-bit tag, 15-bit PC, prediction, valid,
    4 LRU bits), and one dead bit per cache block (paper Section IV-C).

    The default ``sampler_sets=128`` matches the arithmetic behind the
    printed Table I (see the module docstring).
    """
    tables_bits = 3 * 4096 * 2
    lru_bits = max(1, (sampler_assoc - 1).bit_length())
    entry_bits = 15 + 15 + 1 + 1 + lru_bits
    sampler_bits = sampler_sets * sampler_assoc * entry_bits
    return StorageBreakdown(
        predictor="sampler",
        structure_bits=tables_bits + sampler_bits,
        metadata_bits_per_block=1,
        cache_blocks=geometry.num_blocks,
    )


def storage_table(geometry: CacheGeometry):
    """All three rows of Table I for the given LLC geometry."""
    return [
        reftrace_storage(geometry),
        counting_storage(geometry),
        sampler_storage(geometry),
    ]
