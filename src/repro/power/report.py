"""Per-predictor power reports (paper Table II).

Builds the structural description of each predictor exactly as
Section IV-D does -- prediction tables as tagless RAMs, the sampler as a
tag array, cache metadata as extra bits in the LLC data array -- and
evaluates them with :class:`~repro.power.cacti.CactiLite`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.power.cacti import (
    CactiLite,
    LLC_DYNAMIC_WATTS,
    LLC_LEAKAGE_WATTS,
    SRAMArray,
)

__all__ = ["PowerReport", "predictor_power_table"]

#: 32K blocks in the paper's 2MB LLC.
_PAPER_BLOCKS = 32 * 1024


@dataclass(frozen=True)
class PowerReport:
    """Leakage/dynamic watts for one predictor, split as in Table II."""

    predictor: str
    structure_leakage: float
    structure_dynamic: float
    metadata_leakage: float
    metadata_dynamic: float

    @property
    def total_leakage(self) -> float:
        return self.structure_leakage + self.metadata_leakage

    @property
    def total_dynamic(self) -> float:
        return self.structure_dynamic + self.metadata_dynamic

    @property
    def llc_leakage_percent(self) -> float:
        """Total leakage as % of the baseline LLC's 0.512W."""
        return 100.0 * self.total_leakage / LLC_LEAKAGE_WATTS

    @property
    def llc_dynamic_percent(self) -> float:
        """Total dynamic as % of the baseline LLC's 2.75W."""
        return 100.0 * self.total_dynamic / LLC_DYNAMIC_WATTS


def _report(
    model: CactiLite,
    name: str,
    structures: List[SRAMArray],
    metadata_bits_per_block: int,
    blocks: int,
) -> PowerReport:
    structure_leak = sum(model.leakage_watts(array) for array in structures)
    structure_dyn = sum(model.dynamic_watts(array) for array in structures)
    metadata = SRAMArray(
        name=f"{name} metadata",
        bits=metadata_bits_per_block * blocks,
        banks=0,
        metadata_bits=metadata_bits_per_block,
    )
    return PowerReport(
        predictor=name,
        structure_leakage=structure_leak,
        structure_dynamic=structure_dyn,
        metadata_leakage=model.leakage_watts(metadata),
        metadata_dynamic=model.dynamic_watts(metadata),
    )


def predictor_power_table(blocks: int = _PAPER_BLOCKS) -> List[PowerReport]:
    """The three rows of Table II.

    Structural descriptions follow Section IV-D verbatim: the reftrace
    table as a single-bank 8KB tagless RAM, the counting table as a 32KB
    tagless RAM ("conservatively modeled"), the sampling predictor as
    three simultaneously accessed 1KB banks plus the sampler tag array.
    """
    model = CactiLite()
    reftrace = _report(
        model,
        "reftrace",
        [SRAMArray("reftrace table", bits=(1 << 15) * 2, banks=1)],
        metadata_bits_per_block=16,
        blocks=blocks,
    )
    counting = _report(
        model,
        "counting",
        [SRAMArray("counting table", bits=32 * 1024 * 8, banks=1)],
        metadata_bits_per_block=17,
        blocks=blocks,
    )
    sampler = _report(
        model,
        "sampler",
        [
            SRAMArray("skewed tables", bits=3 * 4096 * 2, banks=3),
            SRAMArray(
                "sampler tag array",
                bits=int(6.75 * 1024 * 8),
                banks=1,
                tag_array=True,
            ),
        ],
        metadata_bits_per_block=1,
        blocks=blocks,
    )
    return [reftrace, counting, sampler]
