"""Storage and power models (paper Section IV, Tables I and II).

The paper quantifies each predictor's hardware cost in two currencies:

* **storage** (Table I): predictor structures plus per-block cache
  metadata -- the sampling predictor's headline 13.75KB against 72KB for
  reftrace and 108KB for the counting predictor;
* **power** (Table II): CACTI 5.3 leakage and dynamic figures for the same
  structures.

CACTI itself is a closed C++ tool, so :mod:`repro.power.cacti` provides an
analytic stand-in calibrated to the anchor values the paper reports (the
2MB LLC's 2.75W dynamic / 0.512W leakage and the per-predictor totals);
see DESIGN.md Section 4 for the substitution rationale.
"""

from repro.power.cacti import CactiLite, SRAMArray
from repro.power.report import PowerReport, predictor_power_table
from repro.power.storage import (
    StorageBreakdown,
    counting_storage,
    reftrace_storage,
    sampler_storage,
    storage_table,
)

__all__ = [
    "CactiLite",
    "PowerReport",
    "SRAMArray",
    "StorageBreakdown",
    "counting_storage",
    "predictor_power_table",
    "reftrace_storage",
    "sampler_storage",
    "storage_table",
]
