"""JSON export of experiment results.

The benchmark scripts print tables; downstream users plotting the figures
want machine-readable data.  These helpers serialize the experiment
result objects into plain dictionaries (JSON-ready) with the same
normalizations the paper's figures use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.harness.experiments import (
    AccuracyResult,
    EfficiencyResult,
    MulticoreComparison,
    SingleThreadComparison,
)

__all__ = ["export_json", "to_dict"]


def _guarded(metric, *args):
    """A metric value, or ``None`` when the cell never completed.

    Partial sweeps (``allow_partial=True``) omit failed cells from the
    result maps, so any per-cell metric -- and any mean that folds one
    in -- is undefined; JSON ``null`` records that honestly instead of
    crashing the export.  The ``failures`` list names the missing cells.
    """
    try:
        return metric(*args)
    except KeyError:
        return None


def to_dict(result) -> dict:
    """Serialize a result object from :mod:`repro.harness.experiments`."""
    if isinstance(result, SingleThreadComparison):
        return {
            "kind": "single_thread_comparison",
            "benchmarks": list(result.benchmarks),
            "techniques": list(result.technique_keys),
            "failures": [
                {
                    "benchmark": failure.benchmark,
                    "technique": failure.technique_key,
                    "kind": type(failure).__name__,
                    "attempts": failure.attempts,
                    "detail": failure.detail,
                }
                for failure in result.failures
            ],
            "normalized_mpki": {
                benchmark: {
                    key: _guarded(result.normalized_mpki, benchmark, key)
                    for key in result.technique_keys
                }
                for benchmark in result.benchmarks
            },
            "speedup": {
                benchmark: {
                    key: _guarded(result.speedup, benchmark, key)
                    for key in result.technique_keys
                }
                for benchmark in result.benchmarks
            },
            "mpki_amean": {
                key: _guarded(result.mpki_amean, key)
                for key in result.technique_keys
            },
            "speedup_gmean": {
                key: _guarded(result.speedup_gmean, key)
                for key in result.technique_keys
            },
        }
    if isinstance(result, MulticoreComparison):
        return {
            "kind": "multicore_comparison",
            "mixes": list(result.mixes),
            "techniques": list(result.technique_keys),
            "normalized_weighted_speedup": {
                mix: {
                    key: _guarded(result.normalized_weighted_speedup, mix, key)
                    for key in result.technique_keys
                }
                for mix in result.mixes
            },
            "normalized_mpki": {
                mix: {
                    key: _guarded(result.normalized_mpki, mix, key)
                    for key in result.technique_keys
                }
                for mix in result.mixes
            },
            "speedup_gmean": {
                key: _guarded(result.speedup_gmean, key)
                for key in result.technique_keys
            },
        }
    if isinstance(result, AccuracyResult):
        return {
            "kind": "accuracy",
            "predictors": list(result.predictors),
            "coverage": {p: dict(result.coverage[p]) for p in result.predictors},
            "false_positive": {
                p: dict(result.false_positive[p]) for p in result.predictors
            },
            "mean_coverage": {
                p: result.mean_coverage(p) for p in result.predictors
            },
            "mean_false_positive": {
                p: result.mean_false_positive(p) for p in result.predictors
            },
        }
    if isinstance(result, EfficiencyResult):
        return {
            "kind": "efficiency",
            "benchmark": result.benchmark,
            "lru_efficiency": result.lru_efficiency,
            "sampler_efficiency": result.sampler_efficiency,
            "lru_matrix": result.lru_matrix,
            "sampler_matrix": result.sampler_matrix,
        }
    raise TypeError(f"cannot serialize {type(result).__name__}")


def export_json(result, path: Union[str, Path]) -> None:
    """Write a result object to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(to_dict(result), indent=2, sort_keys=True))
