"""The cache-management techniques of the paper's Table V.

Each :class:`Technique` builds a fresh LLC replacement policy.  The
factory receives the LLC geometry, the full access stream (needed by the
optimal policy's future pass), and the core count (needed by the
thread-aware policies), mirroring how the paper instantiates each
comparison point: the DBRB optimization "dropping in the reftrace and
counting predictors ... in place of our sampling predictor"
(Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.cache.cache import CacheAccess
from repro.cache.geometry import CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.predictors import CountingPredictor, RefTracePredictor
from repro.replacement import (
    DIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    OptimalPolicy,
    RandomPolicy,
    SHiPPolicy,
    TADIPPolicy,
    annotate_next_use,
)
from repro.replacement.base import ReplacementPolicy

__all__ = [
    "MULTICORE_LRU_TECHNIQUES",
    "MULTICORE_RANDOM_TECHNIQUES",
    "RANDOM_DEFAULT_TECHNIQUES",
    "SINGLE_THREAD_TECHNIQUES",
    "TECHNIQUES",
    "Technique",
    "UnknownTechniqueError",
    "resolve_technique",
    "validate_techniques",
]

PolicyBuilder = Callable[
    [CacheGeometry, Sequence[CacheAccess], int], ReplacementPolicy
]


@dataclass(frozen=True)
class Technique:
    """One row of Table V.

    Attributes:
        key: short identifier used in code and reports.
        label: the paper's display name ("Sampler", "TDBP", ...).
        description: Table V's description of the technique.
        builder: constructs the LLC policy.
        timing_meaningful: False for the optimal policy, which the paper
            reports "only for cache miss reduction and not for speedup".
        array_eligible: True when the built policy (in its single-core
            default shape) registers an array replay kernel, so cold
            whole-stream replays run array-native -- the bench harness's
            fallback probe asserts this stays true per technique.
    """

    key: str
    label: str
    description: str
    builder: PolicyBuilder = field(repr=False)
    timing_meaningful: bool = True
    array_eligible: bool = False

    def build(
        self,
        geometry: CacheGeometry,
        accesses: Sequence[CacheAccess],
        num_cores: int = 1,
    ) -> ReplacementPolicy:
        """Instantiate a fresh policy for one run."""
        return self.builder(geometry, accesses, num_cores)


def _lru(geometry, accesses, num_cores):
    return LRUPolicy()


def _random(geometry, accesses, num_cores):
    return RandomPolicy()


def _sampler(geometry, accesses, num_cores):
    return DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor())


def _tdbp(geometry, accesses, num_cores):
    return DBRBPolicy(LRUPolicy(), RefTracePredictor())


def _cdbp(geometry, accesses, num_cores):
    return DBRBPolicy(LRUPolicy(), CountingPredictor())


def _dip(geometry, accesses, num_cores):
    return DIPPolicy()


def _tadip(geometry, accesses, num_cores):
    return TADIPPolicy(num_cores=num_cores)


def _rrip(geometry, accesses, num_cores):
    return DRRIPPolicy(num_cores=num_cores)


def _random_sampler(geometry, accesses, num_cores):
    return DBRBPolicy(RandomPolicy(), SamplingDeadBlockPredictor())


def _random_cdbp(geometry, accesses, num_cores):
    return DBRBPolicy(RandomPolicy(), CountingPredictor())


def _ship(geometry, accesses, num_cores):
    return SHiPPolicy()


def _optimal(geometry, accesses, num_cores):
    return OptimalPolicy(annotate_next_use(accesses, geometry), bypass=True)


TECHNIQUES: Dict[str, Technique] = {
    technique.key: technique
    for technique in (
        Technique(
            "lru",
            "LRU",
            "Baseline true-LRU replacement",
            _lru,
            array_eligible=True,
        ),
        Technique(
            "sampler",
            "Sampler",
            "Dead block bypass and replacement with sampling predictor, "
            "default LRU policy",
            _sampler,
            array_eligible=True,
        ),
        Technique(
            "tdbp",
            "TDBP",
            "Dead block bypass and replacement with reftrace, default LRU policy",
            _tdbp,
        ),
        Technique(
            "cdbp",
            "CDBP",
            "Dead block bypass and replacement with counting predictor, "
            "default LRU policy",
            _cdbp,
        ),
        Technique(
            "dip",
            "DIP",
            "Dynamic Insertion Policy, default LRU policy",
            _dip,
            array_eligible=True,
        ),
        Technique(
            "rrip",
            "RRIP",
            "Re-reference interval prediction",
            _rrip,
            array_eligible=True,
        ),
        Technique("tadip", "TADIP", "Thread-aware DIP, default LRU policy", _tadip),
        Technique(
            "random",
            "Random",
            "Baseline random replacement",
            _random,
            array_eligible=True,
        ),
        Technique(
            "random_sampler",
            "Random Sampler",
            "Dead block bypass and replacement with sampling predictor, "
            "default random policy",
            _random_sampler,
            array_eligible=True,
        ),
        Technique(
            "random_cdbp",
            "Random CDBP",
            "Dead block bypass and replacement with counting predictor, "
            "default random policy",
            _random_cdbp,
        ),
        Technique(
            "ship",
            "SHiP",
            "Signature-based hit predictor insertion (Wu et al. 2011; "
            "follow-on work, not in the paper's figures)",
            _ship,
        ),
        Technique(
            "optimal",
            "Optimal",
            "Optimal replacement and bypass policy as described in Section VI-B",
            _optimal,
            timing_meaningful=False,
        ),
    )
}

#: Figure 4/5 comparison set (ordered as in the paper's legends).
SINGLE_THREAD_TECHNIQUES: Tuple[str, ...] = (
    "tdbp",
    "cdbp",
    "dip",
    "rrip",
    "sampler",
    "optimal",
)

#: Figure 7/8 comparison set (random default).
RANDOM_DEFAULT_TECHNIQUES: Tuple[str, ...] = (
    "random",
    "random_cdbp",
    "random_sampler",
)

#: Figure 10(a) comparison set.
MULTICORE_LRU_TECHNIQUES: Tuple[str, ...] = (
    "tdbp",
    "cdbp",
    "tadip",
    "rrip",
    "sampler",
)

#: Figure 10(b) comparison set.
MULTICORE_RANDOM_TECHNIQUES: Tuple[str, ...] = (
    "random",
    "random_cdbp",
    "random_sampler",
)


class UnknownTechniqueError(KeyError):
    """An unregistered technique key, with a closest-match suggestion."""

    def __str__(self) -> str:  # KeyError reprs its arg; we want prose.
        return self.args[0] if self.args else ""


def resolve_technique(key: str) -> Technique:
    """Look up a technique by key, failing with actionable context.

    Raises:
        UnknownTechniqueError: the key is not registered; the message
            carries the sorted registry and a difflib suggestion.
    """
    technique = TECHNIQUES.get(key)
    if technique is None:
        import difflib

        matches = difflib.get_close_matches(key, list(TECHNIQUES), n=1)
        hint = f"; did you mean {matches[0]!r}?" if matches else ""
        raise UnknownTechniqueError(
            f"unknown technique {key!r}{hint} "
            f"(registered: {', '.join(sorted(TECHNIQUES))})"
        )
    return technique


def validate_techniques(keys) -> list:
    """Per-key error messages for the unresolvable members of ``keys``."""
    bad = []
    for key in keys:
        try:
            resolve_technique(key)
        except UnknownTechniqueError as error:
            bad.append(str(error))
    return bad
