"""Process-parallel, fault-tolerant experiment sweeps.

The single-thread comparisons behind Figures 4/5 and 7/8 are
embarrassingly parallel: every (benchmark, technique) cell replays its
own LLC stream on its own cache, and cells only meet again at reporting
time.  This module fans those cells over a :mod:`multiprocessing` pool
and supervises them:

* each completed cell is persisted to an optional
  :class:`~repro.harness.checkpoint.CheckpointStore` the moment it
  finishes, and ``resume=True`` reloads completed cells instead of
  re-running them (``REPRO_CHECKPOINT_DIR`` / ``--checkpoint-dir``);
* cells run under per-cell wall-clock deadlines, bounded retry with
  exponential backoff, a parent-side watchdog for workers that die
  without reporting, and graceful degradation to serial in-process
  execution -- see :mod:`repro.harness.faults` for the machinery and the
  :class:`~repro.harness.faults.CellTimeout` /
  :class:`~repro.harness.faults.CellCrashed` /
  :class:`~repro.harness.faults.SweepAborted` taxonomy;
* with ``allow_partial=True`` an unrecoverable sweep still returns a
  :class:`~repro.harness.experiments.SingleThreadComparison` for the
  cells that completed, carrying the failure report.

Determinism contract: a parallel sweep is bit-identical to the serial
one, whatever the job count, OS scheduling, retries, or resumes.  That
holds because every source of randomness is seeded per *task*, not per
process:

* workload generation draws from ``ExperimentConfig.seed`` and the
  benchmark name only (``build_trace(benchmark, ..., seed=config.seed)``),
  so each worker regenerates exactly the trace the serial run would use;
* policy RNGs (e.g. the random-replacement XorShift) use fixed
  per-policy seeds and are constructed fresh inside each cell;
* supervision (retry, resume, degradation) decides only *whether* a
  cell's result was obtained, never *what* it is, and checkpoint keys
  cover everything that determines a cell's result.

``tests/test_parallel_harness.py`` pins serial == parallel equality and
``tests/test_faults.py`` pins it across injected crashes, hangs,
retries, and checkpoint resumes.

Workers are spawned with the explicit ``"spawn"`` start method: ``fork``
is unsafe in threaded parents and deprecated-by-default on newer
Pythons, and spawn additionally guarantees workers import the package
fresh (no inherited interpreter state can leak into a cell).  Worker
processes each hold a private :class:`WorkloadCache`, so a workload's
generation + L1/L2 filtering pass is repeated once per worker that draws
a cell of that benchmark; that duplicated filtering is the price of
process isolation, amortized across the techniques of the sweep.

The job count comes from, in priority order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, default 1 (serial, in-process).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.checkpoint import CheckpointStore
from repro.harness.experiments import SingleThreadComparison
from repro.harness.faults import (
    Cell,
    FaultPolicy,
    cell_deadline,
    DeadlineExceeded,
    maybe_inject_fault,
    run_cells_supervised,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.harness.techniques import TECHNIQUES
from repro.sim.system import RunResult
from repro.workloads import SINGLE_THREAD_SUBSET

__all__ = ["parallel_single_thread_comparison", "resolve_jobs"]

#: Sentinel technique key for the per-benchmark LRU baseline cell.
_BASELINE = None

#: Per-worker-process workload cache, built once by the pool initializer.
_WORKER_CACHE: Optional[WorkloadCache] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit argument, else ``REPRO_JOBS``, else 1.

    Raises ValueError for non-positive or non-integer settings.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"job count must be positive, got {jobs}")
    return jobs


def _init_worker(config: ExperimentConfig) -> None:
    """Pool initializer: give this worker its own workload cache."""
    global _WORKER_CACHE
    _WORKER_CACHE = WorkloadCache(config)


def _run_cell_on(cache: WorkloadCache, cell: Cell) -> RunResult:
    """Run one (benchmark, technique) cell on the given workload cache.

    ``technique_key=None`` is the LRU baseline cell.  This is the single
    execution path every mode shares -- worker processes, the serial
    in-process sweep, and the graceful-degradation fallback -- which is
    what keeps them bit-identical.
    """
    benchmark, technique_key = cell
    filtered = cache.filtered(benchmark)
    if technique_key is _BASELINE:
        technique = TECHNIQUES["lru"]
        name = "lru"
        compute_timing = True
    else:
        technique = TECHNIQUES[technique_key]
        name = technique_key
        compute_timing = technique.timing_meaningful
    return cache.system.run(
        filtered,
        lambda g, a: technique.build(g, a),
        technique_name=name,
        compute_timing=compute_timing,
    )


def _run_cell(
    task: Tuple[str, Optional[str]]
) -> Tuple[str, Optional[str], RunResult]:
    """Run one cell in a worker process (unsupervised; kept as the plain
    building block).  The result is stripped of its cache and observers
    before crossing the process boundary (policies hold unpicklable
    state; sweeps only read stats, timing, and hit vectors).
    """
    benchmark, technique_key = task
    result = _run_cell_on(_WORKER_CACHE, (benchmark, technique_key))
    result.cache = None
    result.observers = ()
    return benchmark, technique_key, result


def _run_cell_supervised(
    task: Tuple[str, Optional[str], int, Optional[float]]
) -> Tuple[str, Optional[str], str, object]:
    """Supervised worker entry: deadline, fault injection, and exception
    capture around :func:`_run_cell`.

    Returns the :data:`~repro.harness.faults.WireResult` wire format;
    exceptions travel back as strings so any failure pickles cleanly.
    """
    benchmark, technique_key, attempt, timeout = task
    try:
        with cell_deadline(timeout):
            maybe_inject_fault(benchmark, technique_key, attempt)
            _, _, result = _run_cell((benchmark, technique_key))
        return benchmark, technique_key, "ok", result
    except DeadlineExceeded:
        return benchmark, technique_key, "timeout", f"exceeded {timeout}s"
    except Exception as exc:
        return benchmark, technique_key, "error", f"{type(exc).__name__}: {exc}"


def parallel_single_thread_comparison(
    cache: Union[WorkloadCache, ExperimentConfig],
    technique_keys: Sequence[str],
    benchmarks: Sequence[str] = SINGLE_THREAD_SUBSET,
    jobs: Optional[int] = None,
    checkpoint: Union[CheckpointStore, str, os.PathLike, None] = None,
    resume: bool = False,
    fault_policy: Optional[FaultPolicy] = None,
    allow_partial: Optional[bool] = None,
) -> SingleThreadComparison:
    """Figure 4/5/7/8 sweep, fanned over supervised worker processes.

    Args:
        cache: a :class:`WorkloadCache` to use (and to run serially in
            when ``jobs == 1``), or an :class:`ExperimentConfig` from
            which each worker builds its own cache.
        technique_keys: techniques to sweep (baseline LRU always runs).
        benchmarks: workloads to sweep.
        jobs: worker processes; ``None`` defers to ``REPRO_JOBS``.
        checkpoint: a :class:`CheckpointStore`, a directory path for
            one, or ``None`` to defer to ``REPRO_CHECKPOINT_DIR`` (no
            checkpointing when that is unset too).  Completed cells are
            persisted as they finish.
        resume: load already-checkpointed cells instead of re-running
            them (requires a checkpoint store).
        fault_policy: timeout/retry/degradation knobs; ``None`` defers
            to the ``REPRO_CELL_TIMEOUT`` / ``REPRO_CELL_RETRIES`` /
            ``REPRO_RETRY_BACKOFF`` environment.
        allow_partial: override the policy's ``allow_partial``; a
            partial sweep returns the completed cells with
            ``comparison.failures`` describing the rest instead of
            raising :class:`~repro.harness.faults.SweepAborted`.

    Returns the same :class:`SingleThreadComparison` a serial
    :func:`~repro.harness.experiments.single_thread_comparison` call
    would, bit-identically -- including after resumes and retries.

    Raises:
        ValueError: for unknown technique keys (checked up front, before
            any work runs or any pool spawns).
        SweepAborted: when cells fail unrecoverably and partial results
            are not allowed.
    """
    unknown = [key for key in technique_keys if key not in TECHNIQUES]
    if unknown:
        raise ValueError(
            f"unknown techniques: {', '.join(map(repr, unknown))} "
            f"(valid: {', '.join(TECHNIQUES)})"
        )

    if isinstance(cache, ExperimentConfig):
        config, workload_cache = cache, None
    else:
        config, workload_cache = cache.config, cache

    if isinstance(checkpoint, CheckpointStore):
        store: Optional[CheckpointStore] = checkpoint
    else:
        store = CheckpointStore.from_env(checkpoint)
    if resume and store is None:
        raise ValueError(
            "resume=True needs a checkpoint store; pass checkpoint=... or "
            "set REPRO_CHECKPOINT_DIR"
        )
    policy = fault_policy if fault_policy is not None else FaultPolicy.from_env()
    if allow_partial is not None:
        from dataclasses import replace
        policy = replace(policy, allow_partial=bool(allow_partial))

    cells: List[Cell] = []
    for benchmark in benchmarks:
        cells.append((benchmark, _BASELINE))
        cells.extend((benchmark, key) for key in technique_keys)

    baseline: Dict[str, RunResult] = {}
    results: Dict[str, Dict[str, RunResult]] = {
        benchmark: {} for benchmark in benchmarks
    }

    def record(cell: Cell, result: RunResult) -> None:
        benchmark, technique_key = cell
        if technique_key is _BASELINE:
            baseline[benchmark] = result
        else:
            results[benchmark][technique_key] = result
        if store is not None:
            store.store(config, benchmark, technique_key, result)

    # Resume: completed cells come off disk, not off the machine.
    to_run: List[Cell] = []
    for cell in cells:
        loaded = store.load(config, *cell) if (resume and store) else None
        if loaded is not None:
            benchmark, technique_key = cell
            if technique_key is _BASELINE:
                baseline[benchmark] = loaded
            else:
                results[benchmark][technique_key] = loaded
        else:
            to_run.append(cell)

    failures = ()
    if to_run:
        jobs = min(resolve_jobs(jobs), len(to_run))
        if jobs <= 1:
            if workload_cache is None:
                workload_cache = WorkloadCache(config)
            for cell in to_run:
                record(cell, _run_cell_on(workload_cache, cell))
        else:
            context = multiprocessing.get_context("spawn")

            def make_pool():
                return context.Pool(
                    processes=min(jobs, len(to_run)),
                    initializer=_init_worker,
                    initargs=(config,),
                )

            fallback_cache = workload_cache

            def serial_fallback(cell: Cell) -> RunResult:
                nonlocal fallback_cache
                if fallback_cache is None:
                    fallback_cache = WorkloadCache(config)
                return _run_cell_on(fallback_cache, cell)

            failures = tuple(
                run_cells_supervised(
                    make_pool,
                    _run_cell_supervised,
                    to_run,
                    policy,
                    on_success=record,
                    serial_fallback=serial_fallback if policy.degrade_serially else None,
                )
            )

    return SingleThreadComparison(
        benchmarks=tuple(benchmarks),
        technique_keys=tuple(technique_keys),
        baseline=baseline,
        results=results,
        failures=failures,
    )
