"""Process-parallel, fault-tolerant experiment sweeps.

The single-thread comparisons behind Figures 4/5 and 7/8 are
embarrassingly parallel: every (benchmark, technique) cell replays its
own LLC stream on its own cache, and cells only meet again at reporting
time.  This module fans those cells over a :mod:`multiprocessing` pool
and supervises them:

* each completed cell is persisted to an optional
  :class:`~repro.harness.checkpoint.CheckpointStore` the moment it
  finishes, and ``resume=True`` reloads completed cells instead of
  re-running them (``REPRO_CHECKPOINT_DIR`` / ``--checkpoint-dir``);
* cells run under per-cell wall-clock deadlines, bounded retry with
  exponential backoff, a parent-side watchdog for workers that die
  without reporting, and graceful degradation to serial in-process
  execution -- see :mod:`repro.harness.faults` for the machinery and the
  :class:`~repro.harness.faults.CellTimeout` /
  :class:`~repro.harness.faults.CellCrashed` /
  :class:`~repro.harness.faults.SweepAborted` taxonomy;
* with ``allow_partial=True`` an unrecoverable sweep still returns a
  :class:`~repro.harness.experiments.SingleThreadComparison` for the
  cells that completed, carrying the failure report.

Determinism contract: a parallel sweep is bit-identical to the serial
one, whatever the job count, OS scheduling, retries, or resumes.  That
holds because every source of randomness is seeded per *task*, not per
process:

* workload generation draws from ``ExperimentConfig.seed`` and the
  benchmark name only (``build_trace(benchmark, ..., seed=config.seed)``),
  so each worker regenerates exactly the trace the serial run would use;
* policy RNGs (e.g. the random-replacement XorShift) use fixed
  per-policy seeds and are constructed fresh inside each cell;
* supervision (retry, resume, degradation) decides only *whether* a
  cell's result was obtained, never *what* it is, and checkpoint keys
  cover everything that determines a cell's result.

``tests/test_parallel_harness.py`` pins serial == parallel equality and
``tests/test_faults.py`` pins it across injected crashes, hangs,
retries, and checkpoint resumes.

Workers are spawned with the explicit ``"spawn"`` start method: ``fork``
is unsafe in threaded parents and deprecated-by-default on newer
Pythons, and spawn additionally guarantees workers import the package
fresh (no inherited interpreter state can leak into a cell).  Worker
processes each hold a private :class:`WorkloadCache`; without the
compiled workload store, a workload's generation + L1/L2 filtering pass
is repeated once per worker that draws a cell of that benchmark -- the
price of process isolation.  With the store enabled
(``REPRO_STREAM_CACHE`` / ``stream_cache=``) the parent compiles or
loads each workload exactly once and workers take the warm path: they
load the compiled blob from disk, or -- with ``REPRO_SHM`` /
``shared_memory=True`` -- attach zero-copy to shared-memory segments
the parent exported (see :mod:`repro.sim.streamstore`).  The segments
are torn down in the supervision loop's cleanup hook, so crashed,
timed-out, and aborted sweeps cannot leak them.

The job count comes from, in priority order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, default 1 (serial, in-process).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.checkpoint import CheckpointStore
from repro.harness.experiments import SingleThreadComparison
from repro.harness.faults import (
    Cell,
    FaultPolicy,
    cell_deadline,
    cell_label,
    DeadlineExceeded,
    maybe_inject_fault,
    run_cells_supervised,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.harness.techniques import TECHNIQUES, validate_techniques
from repro.sim.streamstore import (
    SharedStreamExport,
    StreamManifest,
    StreamStore,
    attach_shared_streams,
    shared_memory_enabled,
)
from repro.sim.system import RunResult
from repro.telemetry.events import EventLog, ProgressRenderer, SweepTelemetry
from repro.telemetry.manifest import RunManifest
from repro.workloads import SINGLE_THREAD_SUBSET

__all__ = [
    "make_cell_pool_factory",
    "parallel_single_thread_comparison",
    "resolve_jobs",
]

#: Sentinel technique key for the per-benchmark LRU baseline cell.
_BASELINE = None

#: Per-worker-process workload cache, built once by the pool initializer.
_WORKER_CACHE: Optional[WorkloadCache] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit argument, else ``REPRO_JOBS``, else 1.

    Raises ValueError for non-positive or non-integer settings.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"job count must be positive, got {jobs}")
    return jobs


def _init_worker(
    config: ExperimentConfig,
    store_root: Optional[str] = None,
    stream_manifest: Optional[StreamManifest] = None,
) -> None:
    """Pool initializer: give this worker its own workload cache.

    ``store_root`` attaches the on-disk compiled workload store;
    ``stream_manifest`` attaches the parent's shared-memory segments
    (zero-copy).  Either way the worker serves workloads from the warm
    path instead of re-running ``build_trace`` + the filtering pass.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = WorkloadCache(
        config,
        stream_store=StreamStore(store_root) if store_root is not None else None,
        compiled_streams=attach_shared_streams(stream_manifest),
    )


def make_cell_pool_factory(
    config: ExperimentConfig,
    processes: int,
    store_root: Optional[str] = None,
    stream_manifest: Optional[StreamManifest] = None,
):
    """A zero-argument factory building the supervised cell worker pool.

    This is the single construction path for sweep pools -- explicit
    ``"spawn"`` context, :func:`_init_worker` wiring the per-worker
    workload cache to the store and/or shared-memory segments -- shared
    by :func:`parallel_single_thread_comparison` and the experiment
    service's scheduler, so both fan work out identically.
    """
    context = multiprocessing.get_context("spawn")

    def make_pool():
        return context.Pool(
            processes=processes,
            initializer=_init_worker,
            initargs=(config, store_root, stream_manifest),
        )

    return make_pool


def _run_cell_on(cache: WorkloadCache, cell: Cell) -> RunResult:
    """Run one (benchmark, technique) cell on the given workload cache.

    ``technique_key=None`` is the LRU baseline cell.  This is the single
    execution path every mode shares -- worker processes, the serial
    in-process sweep, and the graceful-degradation fallback -- which is
    what keeps them bit-identical.
    """
    benchmark, technique_key = cell
    filtered = cache.filtered(benchmark)
    if technique_key is _BASELINE:
        technique = TECHNIQUES["lru"]
        name = "lru"
        compute_timing = True
    else:
        technique = TECHNIQUES[technique_key]
        name = technique_key
        compute_timing = technique.timing_meaningful
    return cache.system.run(
        filtered,
        lambda g, a: technique.build(g, a),
        technique_name=name,
        compute_timing=compute_timing,
    )


def _run_cell(
    task: Tuple[str, Optional[str]]
) -> Tuple[str, Optional[str], RunResult]:
    """Run one cell in a worker process (unsupervised; kept as the plain
    building block).  The result is stripped of its cache and observers
    before crossing the process boundary (policies hold unpicklable
    state; sweeps only read stats, timing, and hit vectors).
    """
    benchmark, technique_key = task
    result = _run_cell_on(_WORKER_CACHE, (benchmark, technique_key))
    result.cache = None
    result.observers = ()
    return benchmark, technique_key, result


def _run_cell_supervised(
    task: Tuple[str, Optional[str], int, Optional[float]]
) -> Tuple[str, Optional[str], str, object, Optional[Dict[str, float]]]:
    """Supervised worker entry: deadline, fault injection, and exception
    capture around :func:`_run_cell`.

    Returns the :data:`~repro.harness.faults.WireResult` wire format;
    exceptions travel back as strings so any failure pickles cleanly.
    Wall/CPU time is measured here, inside the worker, so the parent's
    events and manifest carry real per-cell costs rather than
    queue-inclusive latencies.
    """
    benchmark, technique_key, attempt, timeout = task
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    hits_start = _WORKER_CACHE.stream_hits
    misses_start = _WORKER_CACHE.stream_misses
    try:
        with cell_deadline(timeout):
            maybe_inject_fault(benchmark, technique_key, attempt)
            _, _, result = _run_cell((benchmark, technique_key))
        timing = {
            "wall_seconds": time.perf_counter() - wall_start,
            "cpu_seconds": time.process_time() - cpu_start,
            "store_hits": _WORKER_CACHE.stream_hits - hits_start,
            "store_misses": _WORKER_CACHE.stream_misses - misses_start,
        }
        kernel = getattr(result, "kernel", None)
        if kernel is not None:
            timing["kernel"] = kernel
        fallback = getattr(result, "kernel_fallback", None)
        if fallback is not None:
            timing["kernel_fallback"] = fallback
        return benchmark, technique_key, "ok", result, timing
    except DeadlineExceeded:
        return benchmark, technique_key, "timeout", f"exceeded {timeout}s", None
    except Exception as exc:
        return (
            benchmark,
            technique_key,
            "error",
            f"{type(exc).__name__}: {exc}",
            None,
        )


def _sweep_telemetry(
    events_file,
    progress: Optional[bool],
    manifest_path,
    store: Optional[CheckpointStore],
    command: str,
    config: ExperimentConfig,
    technique_keys: Sequence[str],
    benchmarks: Sequence[str],
    jobs: int,
) -> Tuple[Optional[SweepTelemetry], Optional[RunManifest], Optional[str]]:
    """Resolve the observability knobs into a :class:`SweepTelemetry`.

    Argument ``None`` defers to the environment: ``REPRO_EVENTS_FILE``
    (NDJSON sink path), ``REPRO_PROGRESS`` (truthy enables the stderr
    renderer), ``REPRO_MANIFEST`` (manifest path).  The manifest default
    places it next to the checkpoint store (``<store>/manifest.json``)
    when one is attached, or next to the events file otherwise; with no
    anchor at all, no manifest is written.  Returns ``(None, None,
    None)`` when nothing is enabled, so sweeps without observability pay
    nothing.
    """
    if events_file is None:
        events_file = os.environ.get("REPRO_EVENTS_FILE") or None
    if progress is None:
        progress = os.environ.get(
            "REPRO_PROGRESS", ""
        ).strip().lower() in ("1", "true", "yes", "on")
    if manifest_path is None:
        manifest_path = os.environ.get("REPRO_MANIFEST") or None
    if manifest_path is None:
        if store is not None:
            manifest_path = os.path.join(os.fspath(store.root), "manifest.json")
        elif events_file is not None and not hasattr(events_file, "write"):
            manifest_path = f"{os.fspath(events_file)}.manifest.json"

    if events_file is None and not progress and manifest_path is None:
        return None, None, None

    manifest = None
    if manifest_path is not None:
        from dataclasses import asdict

        manifest = RunManifest(
            command=command,
            config=asdict(config),
            technique_keys=list(technique_keys),
            benchmarks=list(benchmarks),
            started_at=time.time(),
            jobs=jobs,
            checkpoint_root=os.fspath(store.root) if store is not None else None,
        )
    sinks = []
    if events_file is not None:
        sinks.append(EventLog(events_file))
    if progress:
        sinks.append(ProgressRenderer())
    return SweepTelemetry(sinks=sinks, manifest=manifest), manifest, manifest_path


def parallel_single_thread_comparison(
    cache: Union[WorkloadCache, ExperimentConfig],
    technique_keys: Sequence[str],
    benchmarks: Sequence[str] = SINGLE_THREAD_SUBSET,
    jobs: Optional[int] = None,
    checkpoint: Union[CheckpointStore, str, os.PathLike, None] = None,
    resume: bool = False,
    fault_policy: Optional[FaultPolicy] = None,
    allow_partial: Optional[bool] = None,
    events_file=None,
    progress: Optional[bool] = None,
    manifest_path: Union[str, os.PathLike, None] = None,
    command: str = "run",
    stream_cache: Union[StreamStore, str, os.PathLike, None] = None,
    shared_memory: Optional[bool] = None,
) -> SingleThreadComparison:
    """Figure 4/5/7/8 sweep, fanned over supervised worker processes.

    Args:
        cache: a :class:`WorkloadCache` to use (and to run serially in
            when ``jobs == 1``), or an :class:`ExperimentConfig` from
            which each worker builds its own cache.
        technique_keys: techniques to sweep (baseline LRU always runs).
        benchmarks: workloads to sweep.
        jobs: worker processes; ``None`` defers to ``REPRO_JOBS``.
        checkpoint: a :class:`CheckpointStore`, a directory path for
            one, or ``None`` to defer to ``REPRO_CHECKPOINT_DIR`` (no
            checkpointing when that is unset too).  Completed cells are
            persisted as they finish.
        resume: load already-checkpointed cells instead of re-running
            them (requires a checkpoint store).
        fault_policy: timeout/retry/degradation knobs; ``None`` defers
            to the ``REPRO_CELL_TIMEOUT`` / ``REPRO_CELL_RETRIES`` /
            ``REPRO_RETRY_BACKOFF`` environment.
        allow_partial: override the policy's ``allow_partial``; a
            partial sweep returns the completed cells with
            ``comparison.failures`` describing the rest instead of
            raising :class:`~repro.harness.faults.SweepAborted`.
        events_file: NDJSON progress-event sink -- a path or an open
            file object (``None`` defers to ``REPRO_EVENTS_FILE``); see
            :mod:`repro.telemetry.events` for the schema.
        progress: render one human-readable progress line per event on
            stderr (``None`` defers to ``REPRO_PROGRESS``).
        manifest_path: where to write the run manifest (``None`` defers
            to ``REPRO_MANIFEST``, then to ``<checkpoint>/manifest.json``
            when a store is attached, then to
            ``<events_file>.manifest.json``).  The manifest is written
            atomically at sweep start and again at the end -- including
            on an aborted sweep, so a crashed run still leaves its
            provenance on disk.
        command: label recorded in the manifest ("run", "suite", ...).
        stream_cache: a :class:`~repro.sim.streamstore.StreamStore`, a
            directory path for one, or ``None`` to defer to
            ``REPRO_STREAM_CACHE`` (store disabled when that is unset
            too).  With a store attached, each workload is compiled or
            loaded once by the parent and served warm to every worker
            and retry, and the compiled blob persists for future runs.
        shared_memory: fan the compiled workloads out to workers through
            :mod:`multiprocessing.shared_memory` segments instead of
            per-worker disk loads (``None`` defers to ``REPRO_SHM``).
            Workers attach zero-copy; the parent tears the segments
            down when supervision ends, however it ends.

    Returns the same :class:`SingleThreadComparison` a serial
    :func:`~repro.harness.experiments.single_thread_comparison` call
    would, bit-identically -- including after resumes and retries.

    Raises:
        ValueError: for unknown technique keys (checked up front, before
            any work runs or any pool spawns).
        SweepAborted: when cells fail unrecoverably and partial results
            are not allowed.
    """
    bad_techniques = validate_techniques(technique_keys)
    if bad_techniques:
        raise ValueError("; ".join(bad_techniques))

    if isinstance(cache, ExperimentConfig):
        config, workload_cache = cache, None
    else:
        config, workload_cache = cache.config, cache

    if isinstance(checkpoint, CheckpointStore):
        store: Optional[CheckpointStore] = checkpoint
    else:
        store = CheckpointStore.from_env(checkpoint)
    if resume and store is None:
        raise ValueError(
            "resume=True needs a checkpoint store; pass checkpoint=... or "
            "set REPRO_CHECKPOINT_DIR"
        )
    policy = fault_policy if fault_policy is not None else FaultPolicy.from_env()
    if allow_partial is not None:
        from dataclasses import replace
        policy = replace(policy, allow_partial=bool(allow_partial))

    if isinstance(stream_cache, StreamStore):
        streams: Optional[StreamStore] = stream_cache
    else:
        streams = StreamStore.from_env(stream_cache)
    use_shm = shared_memory_enabled(shared_memory)
    if streams is not None and workload_cache is not None:
        if workload_cache.stream_store is None:
            workload_cache.stream_store = streams

    cells: List[Cell] = []
    for benchmark in benchmarks:
        cells.append((benchmark, _BASELINE))
        cells.extend((benchmark, key) for key in technique_keys)

    baseline: Dict[str, RunResult] = {}
    results: Dict[str, Dict[str, RunResult]] = {
        benchmark: {} for benchmark in benchmarks
    }

    def record(cell: Cell, result: RunResult) -> None:
        benchmark, technique_key = cell
        if technique_key is _BASELINE:
            baseline[benchmark] = result
        else:
            results[benchmark][technique_key] = result
        if store is not None:
            store.store(config, benchmark, technique_key, result)

    # Resume: completed cells come off disk, not off the machine.
    to_run: List[Cell] = []
    resumed: List[Cell] = []
    for cell in cells:
        loaded = store.load(config, *cell) if (resume and store) else None
        if loaded is not None:
            benchmark, technique_key = cell
            if technique_key is _BASELINE:
                baseline[benchmark] = loaded
            else:
                results[benchmark][technique_key] = loaded
            resumed.append(cell)
        else:
            to_run.append(cell)

    effective_jobs = min(resolve_jobs(jobs), len(to_run)) if to_run else 1
    telemetry, manifest, manifest_file = _sweep_telemetry(
        events_file, progress, manifest_path, store, command, config,
        technique_keys, benchmarks, effective_jobs,
    )
    if telemetry is not None:
        telemetry.sweep_started(
            len(cells), list(benchmarks), list(technique_keys), effective_jobs
        )
        for cell in resumed:
            telemetry.cell_resumed(cell_label(cell))
        if manifest is not None:
            manifest.write(manifest_file)

    failures = ()
    sweep_status = "ok"
    export: Optional[SharedStreamExport] = None
    try:
        if to_run:
            if effective_jobs <= 1:
                if workload_cache is None:
                    workload_cache = WorkloadCache(config, stream_store=streams)
                for cell in to_run:
                    if telemetry is not None:
                        telemetry.cell_started(cell_label(cell))
                    wall_start = time.perf_counter()
                    cpu_start = time.process_time()
                    hits_start = workload_cache.stream_hits
                    misses_start = workload_cache.stream_misses
                    result = _run_cell_on(workload_cache, cell)
                    record(cell, result)
                    if telemetry is not None:
                        timing = {
                            "wall_seconds": time.perf_counter() - wall_start,
                            "cpu_seconds": time.process_time() - cpu_start,
                            "store_hits": workload_cache.stream_hits - hits_start,
                            "store_misses": workload_cache.stream_misses - misses_start,
                        }
                        kernel = getattr(result, "kernel", None)
                        if kernel is not None:
                            timing["kernel"] = kernel
                        fallback = getattr(result, "kernel_fallback", None)
                        if fallback is not None:
                            timing["kernel_fallback"] = fallback
                        telemetry.cell_finished(cell_label(cell), "ok", timing=timing)
                if manifest is not None and streams is not None:
                    manifest.stream_store = {
                        "root": os.fspath(streams.root),
                        "shared_memory": False,
                        "hits": workload_cache.stream_hits,
                        "misses": workload_cache.stream_misses,
                    }
            else:
                # Warm fan-out: the parent compiles or loads every
                # workload exactly once; workers then load blobs from
                # the store, or attach zero-copy to shared memory.
                warm = streams is not None or use_shm
                store_root = os.fspath(streams.root) if streams is not None else None
                stream_manifest = None
                if warm:
                    if workload_cache is None:
                        workload_cache = WorkloadCache(config, stream_store=streams)
                    compile_start = time.perf_counter()
                    hits_start = workload_cache.stream_hits
                    misses_start = workload_cache.stream_misses
                    compiled = {}
                    for benchmark in dict.fromkeys(b for b, _ in to_run):
                        compiled[benchmark] = workload_cache.compiled(benchmark)
                    if use_shm:
                        export = SharedStreamExport.create(compiled)
                        stream_manifest = export.manifest()
                    if manifest is not None:
                        manifest.stream_store = {
                            "root": store_root,
                            "shared_memory": use_shm,
                            "hits": workload_cache.stream_hits - hits_start,
                            "misses": workload_cache.stream_misses - misses_start,
                            "compile_seconds": time.perf_counter() - compile_start,
                            "workloads": sorted(compiled),
                        }

                make_pool = make_cell_pool_factory(
                    config, min(effective_jobs, len(to_run)),
                    store_root, stream_manifest,
                )

                fallback_cache = workload_cache

                def serial_fallback(cell: Cell) -> RunResult:
                    nonlocal fallback_cache
                    if fallback_cache is None:
                        fallback_cache = WorkloadCache(config, stream_store=streams)
                    return _run_cell_on(fallback_cache, cell)

                # Registered in acquisition order; run_cells_supervised
                # drains them LIFO and tolerates a raising hook, so the
                # shm unlink runs even if an earlier-registered hook
                # breaks.
                cleanup_hooks = []
                if export is not None:
                    cleanup_hooks.append(export.close)

                failures = tuple(
                    run_cells_supervised(
                        make_pool,
                        _run_cell_supervised,
                        to_run,
                        policy,
                        on_success=record,
                        serial_fallback=serial_fallback if policy.degrade_serially else None,
                        on_event=telemetry.on_event if telemetry is not None else None,
                        cleanup=cleanup_hooks,
                    )
                )
                if failures:
                    sweep_status = "partial"
    except BaseException:
        sweep_status = "aborted"
        raise
    finally:
        if export is not None:
            export.close()  # idempotent; covers failures before supervision
        if telemetry is not None:
            telemetry.sweep_finished(sweep_status)
            if manifest is not None:
                manifest.finalize(sweep_status, finished_at=time.time())
                manifest.write(manifest_file)
            telemetry.close()

    return SingleThreadComparison(
        benchmarks=tuple(benchmarks),
        technique_keys=tuple(technique_keys),
        baseline=baseline,
        results=results,
        failures=failures,
    )
