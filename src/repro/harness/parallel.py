"""Process-parallel experiment sweeps.

The single-thread comparisons behind Figures 4/5 and 7/8 are
embarrassingly parallel: every (benchmark, technique) cell replays its
own LLC stream on its own cache, and cells only meet again at reporting
time.  This module fans those cells over a :mod:`multiprocessing` pool.

Determinism contract: a parallel sweep is bit-identical to the serial
one, whatever the job count or OS scheduling.  That holds because every
source of randomness is seeded per *task*, not per process:

* workload generation draws from ``ExperimentConfig.seed`` and the
  benchmark name only (``build_trace(benchmark, ..., seed=config.seed)``),
  so each worker regenerates exactly the trace the serial run would use;
* policy RNGs (e.g. the random-replacement XorShift) use fixed
  per-policy seeds and are constructed fresh inside each cell.

``tests/test_parallel_harness.py`` pins serial == parallel equality.

Worker processes each hold a private :class:`WorkloadCache`, so a
workload's generation + L1/L2 filtering pass is repeated once per worker
that draws a cell of that benchmark (cells are handed out benchmark-major
so a pool chunk usually keeps one benchmark in one worker).  That
duplicated filtering is the price of process isolation; it is amortized
across the techniques of the sweep.

The job count comes from, in priority order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, default 1 (serial, in-process).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.experiments import (
    SingleThreadComparison,
    single_thread_comparison,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.harness.techniques import TECHNIQUES
from repro.sim.system import RunResult
from repro.workloads import SINGLE_THREAD_SUBSET

__all__ = ["parallel_single_thread_comparison", "resolve_jobs"]

#: Sentinel technique key for the per-benchmark LRU baseline cell.
_BASELINE = None

#: Per-worker-process workload cache, built once by the pool initializer.
_WORKER_CACHE: Optional[WorkloadCache] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit argument, else ``REPRO_JOBS``, else 1.

    Raises ValueError for non-positive or non-integer settings.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"job count must be positive, got {jobs}")
    return jobs


def _init_worker(config: ExperimentConfig) -> None:
    """Pool initializer: give this worker its own workload cache."""
    global _WORKER_CACHE
    _WORKER_CACHE = WorkloadCache(config)


def _run_cell(
    task: Tuple[str, Optional[str]]
) -> Tuple[str, Optional[str], RunResult]:
    """Run one (benchmark, technique) cell in a worker process.

    ``technique_key=None`` is the LRU baseline cell.  The result is
    stripped of its cache and observers before crossing the process
    boundary (policies hold unpicklable state; sweeps only read stats,
    timing, and hit vectors).
    """
    benchmark, technique_key = task
    cache = _WORKER_CACHE
    filtered = cache.filtered(benchmark)
    if technique_key is _BASELINE:
        technique = TECHNIQUES["lru"]
        name = "lru"
        compute_timing = True
    else:
        technique = TECHNIQUES[technique_key]
        name = technique_key
        compute_timing = technique.timing_meaningful
    result = cache.system.run(
        filtered,
        lambda g, a: technique.build(g, a),
        technique_name=name,
        compute_timing=compute_timing,
    )
    result.cache = None
    result.observers = ()
    return benchmark, technique_key, result


def parallel_single_thread_comparison(
    cache: Union[WorkloadCache, ExperimentConfig],
    technique_keys: Sequence[str],
    benchmarks: Sequence[str] = SINGLE_THREAD_SUBSET,
    jobs: Optional[int] = None,
) -> SingleThreadComparison:
    """Figure 4/5/7/8 sweep, fanned over worker processes.

    Args:
        cache: a :class:`WorkloadCache` to use (and to run serially in
            when ``jobs == 1``), or an :class:`ExperimentConfig` from
            which each worker builds its own cache.
        technique_keys: techniques to sweep (baseline LRU always runs).
        benchmarks: workloads to sweep.
        jobs: worker processes; ``None`` defers to ``REPRO_JOBS``.

    Returns the same :class:`SingleThreadComparison` a serial
    :func:`single_thread_comparison` call would, bit-identically.
    """
    if isinstance(cache, ExperimentConfig):
        config, workload_cache = cache, None
    else:
        config, workload_cache = cache.config, cache

    cells: List[Tuple[str, Optional[str]]] = []
    for benchmark in benchmarks:
        cells.append((benchmark, _BASELINE))
        cells.extend((benchmark, key) for key in technique_keys)

    jobs = min(resolve_jobs(jobs), len(cells))
    if jobs <= 1:
        if workload_cache is None:
            workload_cache = WorkloadCache(config)
        return single_thread_comparison(workload_cache, technique_keys, benchmarks)

    with multiprocessing.Pool(
        processes=jobs, initializer=_init_worker, initargs=(config,)
    ) as pool:
        cell_results = pool.map(_run_cell, cells)

    baseline: Dict[str, RunResult] = {}
    results: Dict[str, Dict[str, RunResult]] = {
        benchmark: {} for benchmark in benchmarks
    }
    for benchmark, technique_key, result in cell_results:
        if technique_key is _BASELINE:
            baseline[benchmark] = result
        else:
            results[benchmark][technique_key] = result
    return SingleThreadComparison(
        benchmarks=tuple(benchmarks),
        technique_keys=tuple(technique_keys),
        baseline=baseline,
        results=results,
    )
