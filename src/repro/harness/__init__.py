"""Experiment harness: technique registry and figure/table regeneration.

* :mod:`repro.harness.techniques` -- the named cache-management techniques
  of the paper's Table V, each buildable against any LLC geometry.
* :mod:`repro.harness.runner` -- experiment configuration (machine scale,
  instruction budgets, seeds; overridable via ``REPRO_*`` environment
  variables) and workload caching so one L1/L2 filtering pass serves all
  techniques.
* :mod:`repro.harness.experiments` -- one function per paper experiment
  (Figures 1, 4-10; Tables I-IV), returning structured results.
* :mod:`repro.harness.parallel` -- process-parallel fan-out of the
  single-thread sweeps (``REPRO_JOBS``), bit-identical to serial runs.
* :mod:`repro.harness.checkpoint` -- content-addressed on-disk store of
  completed sweep cells (``REPRO_CHECKPOINT_DIR``), enabling
  resume-after-interruption.
* :mod:`repro.harness.faults` -- per-cell timeout/retry supervision,
  graceful serial degradation, the failure taxonomy, and the
  fault-injection test hook (see docs/robustness.md).
* :mod:`repro.harness.tables` -- plain-text rendering used by the
  benchmark scripts to print paper-style tables.

Observability (progress events, run manifests, interval time series)
lives in :mod:`repro.telemetry` and plugs into the parallel runner via
``events_file`` / ``progress`` / ``manifest_path`` (see
docs/observability.md).
"""

from repro.harness.checkpoint import CheckpointStore, resolve_checkpoint_dir
from repro.harness.experiments import (
    AccuracyResult,
    EfficiencyResult,
    LoadSimComparison,
    MulticoreComparison,
    PatternSweepResult,
    SingleThreadComparison,
    TimeseriesResult,
    ablation_experiment,
    accuracy_experiment,
    characterization_table,
    efficiency_experiment,
    loadsim_experiment,
    multicore_comparison,
    pattern_axis,
    pattern_sweep_experiment,
    single_thread_comparison,
    timeseries_experiment,
    zipf_skew_axis,
)
from repro.harness.faults import (
    CellCrashed,
    CellError,
    CellTimeout,
    FaultPolicy,
    SweepAborted,
)
from repro.harness.parallel import (
    parallel_single_thread_comparison,
    resolve_jobs,
)
from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.harness.tables import format_table
from repro.harness.techniques import (
    MULTICORE_LRU_TECHNIQUES,
    MULTICORE_RANDOM_TECHNIQUES,
    RANDOM_DEFAULT_TECHNIQUES,
    SINGLE_THREAD_TECHNIQUES,
    TECHNIQUES,
    Technique,
    UnknownTechniqueError,
    resolve_technique,
    validate_techniques,
)

__all__ = [
    "AccuracyResult",
    "CellCrashed",
    "CellError",
    "CellTimeout",
    "CheckpointStore",
    "EfficiencyResult",
    "ExperimentConfig",
    "FaultPolicy",
    "LoadSimComparison",
    "MULTICORE_LRU_TECHNIQUES",
    "MULTICORE_RANDOM_TECHNIQUES",
    "MulticoreComparison",
    "PatternSweepResult",
    "RANDOM_DEFAULT_TECHNIQUES",
    "SINGLE_THREAD_TECHNIQUES",
    "SingleThreadComparison",
    "SweepAborted",
    "TECHNIQUES",
    "Technique",
    "TimeseriesResult",
    "UnknownTechniqueError",
    "WorkloadCache",
    "ablation_experiment",
    "accuracy_experiment",
    "characterization_table",
    "efficiency_experiment",
    "format_table",
    "loadsim_experiment",
    "multicore_comparison",
    "parallel_single_thread_comparison",
    "pattern_axis",
    "pattern_sweep_experiment",
    "resolve_checkpoint_dir",
    "resolve_jobs",
    "resolve_technique",
    "single_thread_comparison",
    "timeseries_experiment",
    "validate_techniques",
    "zipf_skew_axis",
]
