"""One function per paper experiment.

Each function takes a :class:`~repro.harness.runner.WorkloadCache` (which
carries the machine and memoized workloads) and returns a structured
result object the benchmark scripts render.  Mapping to the paper:

==============================  =========================================
Function                        Paper experiment
==============================  =========================================
:func:`single_thread_comparison`  Figures 4/5 (LRU default) and 7/8
                                  (random default), depending on the
                                  technique list passed
:func:`ablation_experiment`       Figure 6 (component contributions)
:func:`accuracy_experiment`       Figure 9 (coverage / false positives)
:func:`efficiency_experiment`     Figure 1 (cache efficiency greyscale)
:func:`multicore_comparison`      Figure 10(a)/(b)
:func:`characterization_table`    Table III
==============================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.accuracy import AccuracyObserver
from repro.analysis.efficiency import EfficiencyObserver
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.harness.faults import CellError
from repro.harness.runner import WorkloadCache
from repro.harness.techniques import TECHNIQUES
from repro.predictors import CountingPredictor, RefTracePredictor
from repro.replacement import LRUPolicy
from repro.sim.metrics import geometric_mean
from repro.sim.multicore import MulticoreResult
from repro.sim.system import RunResult
from repro.telemetry.probe import IntervalRecorder
from repro.workloads import MIX_NAMES, SINGLE_THREAD_SUBSET
from repro.workloads.suite import ALL_BENCHMARKS, SINGLE_THREAD_SUBSET as _SUBSET

if TYPE_CHECKING:  # imported lazily at runtime (heavy subsystem)
    from repro.loadsim.sim import LoadScenario, LoadSimResult

__all__ = [
    "AccuracyResult",
    "EfficiencyResult",
    "LoadSimComparison",
    "MulticoreComparison",
    "PatternSweepResult",
    "SingleThreadComparison",
    "TimeseriesResult",
    "ablation_experiment",
    "accuracy_experiment",
    "characterization_table",
    "efficiency_experiment",
    "loadsim_experiment",
    "multicore_comparison",
    "pattern_axis",
    "pattern_sweep_experiment",
    "single_thread_comparison",
    "timeseries_experiment",
    "zipf_skew_axis",
]


# ----------------------------------------------------------------------
# Figures 4, 5, 7, 8: single-thread technique comparisons
# ----------------------------------------------------------------------
@dataclass
class SingleThreadComparison:
    """Baseline-LRU-normalized results for a set of techniques.

    ``failures`` is empty for a complete sweep; a *partial* sweep (see
    ``allow_partial`` on the fault-tolerant runner in
    :mod:`repro.harness.parallel`) lists the unrecovered cells there,
    and the per-cell accessors raise ``KeyError`` for those cells.
    """

    benchmarks: Tuple[str, ...]
    technique_keys: Tuple[str, ...]
    baseline: Dict[str, RunResult]
    results: Dict[str, Dict[str, RunResult]]
    failures: Tuple[CellError, ...] = ()

    @property
    def is_partial(self) -> bool:
        """True when at least one cell failed unrecoverably."""
        return bool(self.failures)

    def failure_report(self) -> str:
        """Human-readable summary of the failed cells ("" when complete)."""
        if not self.failures:
            return ""
        total = len(self.benchmarks) * (len(self.technique_keys) + 1)
        lines = [
            f"partial sweep: {len(self.failures)} of {total} cells failed"
        ]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)

    def normalized_mpki(self, benchmark: str, technique: str) -> float:
        """Misses normalized to the LRU baseline (Figure 4/7 y-axis)."""
        base = self.baseline[benchmark].llc_stats.misses
        if base == 0:
            return 1.0
        return self.results[benchmark][technique].llc_stats.misses / base

    def speedup(self, benchmark: str, technique: str) -> float:
        """IPC over LRU IPC (Figure 5/8 y-axis)."""
        base = self.baseline[benchmark].ipc
        ipc = self.results[benchmark][technique].ipc
        if base <= 0 or ipc <= 0:
            return 1.0
        return ipc / base

    def mpki_amean(self, technique: str) -> float:
        """Arithmetic mean of normalized MPKI (the paper's 'amean' bar)."""
        values = [
            self.normalized_mpki(benchmark, technique)
            for benchmark in self.benchmarks
        ]
        return sum(values) / len(values)

    def speedup_gmean(self, technique: str) -> float:
        """Geometric mean speedup (the paper's 'gmean' bar)."""
        return geometric_mean(
            [self.speedup(benchmark, technique) for benchmark in self.benchmarks]
        )

    def mpki_rows(self) -> List[List]:
        """Figure 4/7 as table rows: one per benchmark plus the amean."""
        rows = []
        for benchmark in self.benchmarks:
            rows.append(
                [benchmark]
                + [self.normalized_mpki(benchmark, key) for key in self.technique_keys]
            )
        rows.append(["amean"] + [self.mpki_amean(key) for key in self.technique_keys])
        return rows

    def speedup_rows(self, technique_keys: Optional[Sequence[str]] = None) -> List[List]:
        """Figure 5/8 as table rows: one per benchmark plus the gmean."""
        keys = tuple(technique_keys or self.technique_keys)
        rows = []
        for benchmark in self.benchmarks:
            rows.append(
                [benchmark] + [self.speedup(benchmark, key) for key in keys]
            )
        rows.append(["gmean"] + [self.speedup_gmean(key) for key in keys])
        return rows


def single_thread_comparison(
    cache: WorkloadCache,
    technique_keys: Sequence[str],
    benchmarks: Sequence[str] = SINGLE_THREAD_SUBSET,
) -> SingleThreadComparison:
    """Run every (benchmark, technique) pair plus the LRU baseline."""
    baseline: Dict[str, RunResult] = {}
    results: Dict[str, Dict[str, RunResult]] = {}
    lru = TECHNIQUES["lru"]
    for benchmark in benchmarks:
        filtered = cache.filtered(benchmark)
        baseline[benchmark] = cache.system.run(
            filtered,
            lambda g, a: lru.build(g, a),
            technique_name="lru",
        )
        per_technique: Dict[str, RunResult] = {}
        for key in technique_keys:
            technique = TECHNIQUES[key]
            per_technique[key] = cache.system.run(
                filtered,
                lambda g, a, technique=technique: technique.build(g, a),
                technique_name=key,
                compute_timing=technique.timing_meaningful,
            )
        results[benchmark] = per_technique
    return SingleThreadComparison(
        benchmarks=tuple(benchmarks),
        technique_keys=tuple(technique_keys),
        baseline=baseline,
        results=results,
    )


# ----------------------------------------------------------------------
# Figure 6: component ablation
# ----------------------------------------------------------------------
#: The paper's six feasible component combinations, in Figure 6's order,
#: with the paper's reported speedups for reference.
ABLATION_VARIANTS: Tuple[Tuple[str, dict, float], ...] = (
    ("DBRB alone", dict(use_sampler=False, skewed=False), 1.034),
    ("DBRB+3 tables", dict(use_sampler=False, skewed=True), 1.023),
    ("DBRB+sampler", dict(use_sampler=True, skewed=False, sampler_assoc=16), 1.038),
    (
        "DBRB+sampler+3 tables",
        dict(use_sampler=True, skewed=True, sampler_assoc=16),
        1.040,
    ),
    (
        "DBRB+sampler+12-way",
        dict(use_sampler=True, skewed=False, sampler_assoc=12),
        1.056,
    ),
    (
        "DBRB+sampler+3 tables+12-way",
        dict(use_sampler=True, skewed=True, sampler_assoc=12),
        1.059,
    ),
)


def ablation_experiment(
    cache: WorkloadCache,
    benchmarks: Sequence[str] = SINGLE_THREAD_SUBSET,
) -> List[Tuple[str, float, float]]:
    """Figure 6: gmean speedup of each predictor-component combination.

    Returns ``(variant label, measured gmean speedup, paper's value)``
    triples in the paper's presentation order.
    """
    lru = TECHNIQUES["lru"]
    speedups: Dict[str, List[float]] = {label: [] for label, _, _ in ABLATION_VARIANTS}
    for benchmark in benchmarks:
        filtered = cache.filtered(benchmark)
        base = cache.system.run(filtered, lambda g, a: lru.build(g, a), "lru")
        for label, predictor_kwargs, _ in ABLATION_VARIANTS:
            result = cache.system.run(
                filtered,
                lambda g, a, kw=predictor_kwargs: DBRBPolicy(
                    LRUPolicy(), SamplingDeadBlockPredictor(**kw)
                ),
                technique_name=label,
            )
            if base.ipc > 0 and result.ipc > 0:
                speedups[label].append(result.ipc / base.ipc)
    return [
        (label, geometric_mean(speedups[label]), paper)
        for label, _, paper in ABLATION_VARIANTS
    ]


# ----------------------------------------------------------------------
# Figure 9: coverage and false positives
# ----------------------------------------------------------------------
@dataclass
class AccuracyResult:
    """Coverage / false-positive rates per predictor per benchmark."""

    predictors: Tuple[str, ...]
    coverage: Dict[str, Dict[str, float]]          # predictor -> bench -> value
    false_positive: Dict[str, Dict[str, float]]

    def mean_coverage(self, predictor: str) -> float:
        values = self.coverage[predictor].values()
        return sum(values) / len(values)

    def mean_false_positive(self, predictor: str) -> float:
        values = self.false_positive[predictor].values()
        return sum(values) / len(values)


_ACCURACY_PREDICTORS = {
    "reftrace": RefTracePredictor,
    "counting": CountingPredictor,
    "sampler": SamplingDeadBlockPredictor,
}


def accuracy_experiment(
    cache: WorkloadCache,
    benchmarks: Sequence[str] = SINGLE_THREAD_SUBSET,
) -> AccuracyResult:
    """Figure 9: per-predictor coverage and false-positive rate, measured
    on the DBRB policy with a default LRU cache."""
    coverage: Dict[str, Dict[str, float]] = {k: {} for k in _ACCURACY_PREDICTORS}
    false_positive: Dict[str, Dict[str, float]] = {k: {} for k in _ACCURACY_PREDICTORS}
    for benchmark in benchmarks:
        filtered = cache.filtered(benchmark)
        for name, predictor_class in _ACCURACY_PREDICTORS.items():
            result = cache.system.run(
                filtered,
                lambda g, a, cls=predictor_class: DBRBPolicy(LRUPolicy(), cls()),
                technique_name=name,
                observer_factories=[AccuracyObserver],
                compute_timing=False,
            )
            observer: AccuracyObserver = result.observers[0]
            coverage[name][benchmark] = observer.coverage
            false_positive[name][benchmark] = observer.false_positive_rate
    return AccuracyResult(
        predictors=tuple(_ACCURACY_PREDICTORS),
        coverage=coverage,
        false_positive=false_positive,
    )


# ----------------------------------------------------------------------
# Pattern-parameter sweeps (beyond the paper: the workload space axis)
# ----------------------------------------------------------------------
@dataclass
class PatternSweepResult:
    """DBRB behaviour along one workload-parameter axis.

    For every workload spec on the axis: the LRU baseline miss rate
    (DBRB off), the sampler-DBRB miss rate (DBRB on), and the sampler's
    prediction coverage and false-positive rate.  ``rows()`` renders in
    axis order for the report table.
    """

    specs: Tuple[str, ...]
    lru_miss_rate: Dict[str, float]
    dbrb_miss_rate: Dict[str, float]
    coverage: Dict[str, float]
    false_positive: Dict[str, float]

    def normalized_misses(self, spec: str) -> float:
        """DBRB misses relative to LRU (< 1.0 means DBRB helps)."""
        base = self.lru_miss_rate[spec]
        return self.dbrb_miss_rate[spec] / base if base > 0 else 0.0

    def rows(self) -> List[List[str]]:
        rows = [
            ["workload", "LRU miss", "DBRB miss", "norm. misses",
             "coverage", "false pos"]
        ]
        for spec in self.specs:
            rows.append([
                spec,
                f"{self.lru_miss_rate[spec]:.4f}",
                f"{self.dbrb_miss_rate[spec]:.4f}",
                f"{self.normalized_misses(spec):.3f}",
                f"{self.coverage[spec]:.3f}",
                f"{self.false_positive[spec]:.3f}",
            ])
        return rows


def _axis_value(value) -> str:
    if isinstance(value, float):
        text = repr(value)
        return text[:-2] if text.endswith(".0") else text
    return str(value)


def pattern_axis(
    family: str,
    param: str,
    values: Sequence,
    base: str = "",
) -> List[str]:
    """Spec strings sweeping one parameter of a pattern family.

    ``base`` carries fixed parameters (``"footprint=2,gap=2"``); the
    swept parameter is appended per value.
    """
    prefix = f"{base}," if base else ""
    return [f"{family}({prefix}{param}={_axis_value(v)})" for v in values]


def zipf_skew_axis(values: Sequence[float] = (0.6, 0.9, 1.2, 1.5)) -> List[str]:
    """The default report axis: Zipfian skew from near-uniform to hot."""
    return pattern_axis("zipf", "a", values)


def pattern_sweep_experiment(
    cache: WorkloadCache,
    specs: Sequence[str],
) -> PatternSweepResult:
    """Miss rate / coverage / false positives along a workload axis.

    Runs each spec under plain LRU (DBRB off) and under sampler-driven
    DBRB with an accuracy observer (DBRB on).  Any workload name
    resolvable by :func:`repro.workloads.build_trace` works -- pattern
    specs, trace replays, or suite benchmarks.
    """
    lru = TECHNIQUES["lru"]
    lru_miss: Dict[str, float] = {}
    dbrb_miss: Dict[str, float] = {}
    coverage: Dict[str, float] = {}
    false_positive: Dict[str, float] = {}
    for spec in specs:
        filtered = cache.filtered(spec)
        base = cache.system.run(
            filtered, lambda g, a: lru.build(g, a), technique_name="lru",
            compute_timing=False,
        )
        result = cache.system.run(
            filtered,
            lambda g, a: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
            technique_name="sampler",
            observer_factories=[AccuracyObserver],
            compute_timing=False,
        )
        observer: AccuracyObserver = result.observers[0]
        lru_miss[spec] = base.llc_stats.miss_rate
        dbrb_miss[spec] = result.llc_stats.miss_rate
        coverage[spec] = observer.coverage
        false_positive[spec] = observer.false_positive_rate
    return PatternSweepResult(
        specs=tuple(specs),
        lru_miss_rate=lru_miss,
        dbrb_miss_rate=dbrb_miss,
        coverage=coverage,
        false_positive=false_positive,
    )


# ----------------------------------------------------------------------
# Figure 1: cache efficiency
# ----------------------------------------------------------------------
@dataclass
class EfficiencyResult:
    """Efficiency of the baseline vs the sampler-optimized cache."""

    benchmark: str
    lru_efficiency: float
    sampler_efficiency: float
    lru_matrix: List[List[float]]
    sampler_matrix: List[List[float]]


def efficiency_experiment(
    cache: WorkloadCache, benchmark: str = "hmmer"
) -> EfficiencyResult:
    """Figure 1: live-time ratio under LRU vs sampler-driven DBRB.

    The paper uses 456.hmmer on a 1MB LRU cache (22% -> 87%); we use the
    synthetic hmmer analogue on the configured machine.
    """
    filtered = cache.filtered(benchmark)
    last_seq = len(filtered.llc_indices)

    def measure(policy_factory, label):
        result = cache.system.run(
            filtered,
            policy_factory,
            technique_name=label,
            observer_factories=[EfficiencyObserver],
            compute_timing=False,
        )
        observer: EfficiencyObserver = result.observers[0]
        observer.finalize(result.cache, last_seq)
        return observer

    lru_observer = measure(lambda g, a: LRUPolicy(), "lru")
    sampler_observer = measure(
        lambda g, a: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
        "sampler",
    )
    return EfficiencyResult(
        benchmark=benchmark,
        lru_efficiency=lru_observer.efficiency,
        sampler_efficiency=sampler_observer.efficiency,
        lru_matrix=lru_observer.efficiency_matrix(),
        sampler_matrix=sampler_observer.efficiency_matrix(),
    )


# ----------------------------------------------------------------------
# Figure 10: multicore
# ----------------------------------------------------------------------
@dataclass
class MulticoreComparison:
    """Normalized weighted speedups for shared-LLC techniques."""

    mixes: Tuple[str, ...]
    technique_keys: Tuple[str, ...]
    baseline: Dict[str, MulticoreResult]
    results: Dict[str, Dict[str, MulticoreResult]]

    def normalized_weighted_speedup(self, mix: str, technique: str) -> float:
        """Figure 10's y-axis: weighted IPC over the shared-LRU run's."""
        return (
            self.results[mix][technique].weighted_ipc
            / self.baseline[mix].weighted_ipc
        )

    def normalized_mpki(self, mix: str, technique: str) -> float:
        base = self.baseline[mix].llc_stats.misses
        if base == 0:
            return 1.0
        return self.results[mix][technique].llc_stats.misses / base

    def speedup_gmean(self, technique: str) -> float:
        return geometric_mean(
            [self.normalized_weighted_speedup(mix, technique) for mix in self.mixes]
        )

    def mpki_amean(self, technique: str) -> float:
        values = [self.normalized_mpki(mix, technique) for mix in self.mixes]
        return sum(values) / len(values)

    def speedup_rows(self) -> List[List]:
        rows = []
        for mix in self.mixes:
            rows.append(
                [mix]
                + [
                    self.normalized_weighted_speedup(mix, key)
                    for key in self.technique_keys
                ]
            )
        rows.append(
            ["gmean"] + [self.speedup_gmean(key) for key in self.technique_keys]
        )
        return rows


def multicore_comparison(
    cache: WorkloadCache,
    technique_keys: Sequence[str],
    mixes: Sequence[str] = MIX_NAMES,
) -> MulticoreComparison:
    """Figure 10: run each mix on the shared LLC under each technique."""
    baseline: Dict[str, MulticoreResult] = {}
    results: Dict[str, Dict[str, MulticoreResult]] = {}
    lru = TECHNIQUES["lru"]
    for mix in mixes:
        prepared = cache.prepared_mix(mix)
        baseline[mix] = cache.multicore.run(
            prepared, lambda g, a, n: lru.build(g, a, n), "lru"
        )
        per_technique: Dict[str, MulticoreResult] = {}
        for key in technique_keys:
            technique = TECHNIQUES[key]
            per_technique[key] = cache.multicore.run(
                prepared,
                lambda g, a, n, technique=technique: technique.build(g, a, n),
                technique_name=key,
            )
        results[mix] = per_technique
    return MulticoreComparison(
        mixes=tuple(mixes),
        technique_keys=tuple(technique_keys),
        baseline=baseline,
        results=results,
    )


# ----------------------------------------------------------------------
# Telemetry: per-epoch phase behaviour of one (benchmark, technique) run
# ----------------------------------------------------------------------
@dataclass
class TimeseriesResult:
    """One run's per-epoch time series (the ``repro telemetry`` payload).

    ``recorder`` holds the :class:`~repro.telemetry.probe.IntervalSample`
    rows and run context; ``run`` is the ordinary
    :class:`~repro.sim.system.RunResult` the same replay produced --
    telemetry is observational, so the aggregate numbers here match a
    probe-less run of the same cell exactly.
    """

    benchmark: str
    technique_key: str
    recorder: IntervalRecorder
    run: RunResult

    @property
    def samples(self):
        return self.recorder.samples


def timeseries_experiment(
    cache: WorkloadCache,
    benchmark: str,
    technique_key: str = "sampler",
    epochs: int = 32,
    accuracy: bool = True,
) -> TimeseriesResult:
    """Replay one (benchmark, technique) cell with an interval recorder.

    Args:
        cache: workload cache carrying the machine configuration.
        benchmark: workload to replay.
        technique_key: technique registry key (default: the paper's
            sampler-driven DBRB).
        epochs: target number of epochs across the LLC stream.
        accuracy: attach an
            :class:`~repro.analysis.accuracy.AccuracyObserver` so the
            series includes per-epoch prediction coverage and
            false-positive rate (forces the reference replay path --
            slower, but the ground truth needs per-event observation).

    The miss-rate/MPKI/bypass and component-gauge series need no
    observer and are recorded on the fast replay path when ``accuracy``
    is off.
    """
    if technique_key not in TECHNIQUES:
        raise ValueError(
            f"unknown technique {technique_key!r} (valid: {', '.join(TECHNIQUES)})"
        )
    technique = TECHNIQUES[technique_key]
    recorder = IntervalRecorder(epochs=epochs)
    filtered = cache.filtered(benchmark)
    run = cache.system.run(
        filtered,
        lambda g, a: technique.build(g, a),
        technique_name=technique_key,
        observer_factories=[AccuracyObserver] if accuracy else (),
        compute_timing=False,
        probe=recorder,
    )
    return TimeseriesResult(
        benchmark=benchmark,
        technique_key=technique_key,
        recorder=recorder,
        run=run,
    )


# ----------------------------------------------------------------------
# Table III: benchmark characterization
# ----------------------------------------------------------------------
def characterization_table(
    cache: WorkloadCache,
    benchmarks: Sequence[str] = ALL_BENCHMARKS,
) -> List[List]:
    """Table III rows: benchmark, MPKI (LRU), MPKI (MIN), IPC (LRU), and
    subset membership (the paper's boldface)."""
    lru = TECHNIQUES["lru"]
    optimal = TECHNIQUES["optimal"]
    rows = []
    for benchmark in benchmarks:
        filtered = cache.filtered(benchmark)
        lru_result = cache.system.run(
            filtered, lambda g, a: lru.build(g, a), "lru"
        )
        optimal_result = cache.system.run(
            filtered,
            lambda g, a: optimal.build(g, a),
            "optimal",
            compute_timing=False,
        )
        rows.append(
            [
                benchmark,
                lru_result.mpki,
                optimal_result.mpki,
                lru_result.ipc,
                "yes" if benchmark in _SUBSET else "",
            ]
        )
    return rows


# ----------------------------------------------------------------------
# Service-level latency under load (beyond the paper; docs/loadsim.md)
# ----------------------------------------------------------------------
@dataclass
class LoadSimComparison:
    """One load scenario simulated under several LLC techniques.

    Every technique sees the *same* arrival streams and the same LLC
    access interleaving (the open-loop determinism contract of
    :mod:`repro.loadsim`), so latency deltas between rows are
    attributable to the replacement policy alone.  ``results`` maps
    technique key to its :class:`~repro.loadsim.sim.LoadSimResult`.
    """

    scenario: str
    technique_keys: Tuple[str, ...]
    results: Dict[str, "LoadSimResult"]

    def rows(self) -> List[List[str]]:
        """The report table: latency distribution per technique."""
        rows = [
            ["technique", "p50", "p95", "p99", "mean",
             "req/kcycle", "LLC miss", "fairness"]
        ]
        for key in self.technique_keys:
            result = self.results[key]
            rows.append([
                key,
                f"{result.p50:.0f}",
                f"{result.p95:.0f}",
                f"{result.p99:.0f}",
                f"{result.mean_latency:.0f}",
                f"{result.throughput:.3f}",
                f"{result.llc_stats.miss_rate:.4f}",
                f"{result.fairness:.3f}",
            ])
        return rows

    def tenant_rows(self) -> List[List[str]]:
        """Per-tenant MPKI / mean latency, techniques side by side."""
        header = ["tenant"]
        for key in self.technique_keys:
            header.extend([f"{key} MPKI", f"{key} mean lat"])
        rows = [header]
        first = self.results[self.technique_keys[0]]
        for index, report in enumerate(first.tenants):
            row = [f"{index}: {report.workload} @ {report.arrival}"]
            for key in self.technique_keys:
                tenant = self.results[key].tenants[index]
                row.extend([f"{tenant.mpki:.2f}", f"{tenant.mean_latency:.0f}"])
            rows.append(row)
        return rows


def loadsim_experiment(
    cache: WorkloadCache,
    scenario: "LoadScenario",
    technique_keys: Sequence[str] = ("sampler", "lru"),
    record_events: bool = True,
) -> LoadSimComparison:
    """Simulate one load scenario under each technique (docs/loadsim.md).

    Tenant preparation (trace generation, L1/L2 filtering, request
    tables) is shared across techniques through the workload cache; the
    simulation itself is re-run per technique against a fresh LLC.  Pass
    ``record_events=False`` to skip the per-event log (large scenarios)
    -- digests then cover an empty log, but every metric is unchanged.
    """
    from repro.loadsim.sim import prepare_scenario

    prepared = prepare_scenario(cache, scenario)
    results: Dict[str, "LoadSimResult"] = {}
    for key in technique_keys:
        results[key] = prepared.run(key, record_events=record_events)
    return LoadSimComparison(
        scenario=scenario.describe(),
        technique_keys=tuple(technique_keys),
        results=results,
    )
