"""Experiment configuration and workload caching.

The paper runs one-billion-instruction SimPoints on a 2MB-LLC machine; a
pure-Python reproduction scales both down.  :class:`ExperimentConfig`
holds the knobs, reads overrides from the environment, and builds the
machine; :class:`WorkloadCache` memoizes generated traces and their
L1/L2 filtering so the six techniques of Figure 4 (and the benchmark
suite's many processes' worth of figures) share one filtering pass per
workload.

Environment overrides:

=========================  =======================================  ========
Variable                   Meaning                                  Default
=========================  =======================================  ========
``REPRO_SCALE``            divide every cache capacity by this      8
``REPRO_INSTRUCTIONS``     instruction budget per benchmark         400000
``REPRO_SEED``             workload generation seed                 1
``REPRO_CORES``            cores in the multicore experiments       4
``REPRO_JOBS``             worker processes for experiment sweeps   1
``REPRO_CHECKPOINT_DIR``   persist completed sweep cells here       (off)
``REPRO_CELL_TIMEOUT``     per-cell wall-clock budget, seconds      (off)
``REPRO_CELL_RETRIES``     parallel retry rounds per failed cell    2
``REPRO_RETRY_BACKOFF``    base backoff between retry rounds, s     0.1
``REPRO_PARANOID``         per-access cache invariant checking      0
``REPRO_STREAM_CACHE``     compiled workload store directory        (off)
``REPRO_SHM``              shared-memory workload fan-out           0
=========================  =======================================  ========

``REPRO_JOBS`` is read by :mod:`repro.harness.parallel`, not here: it
controls how many (benchmark, technique) cells run concurrently and has
no effect on simulated results (see docs/performance.md).  The
checkpoint/timeout/retry knobs belong to the fault-tolerance layer
(:mod:`repro.harness.checkpoint`, :mod:`repro.harness.faults`; see
docs/robustness.md) and likewise never change simulated results;
``REPRO_PARANOID`` is read by :class:`repro.cache.Cache` and only makes
runs slower and invariant violations loud.  ``REPRO_STREAM_CACHE`` and
``REPRO_SHM`` enable the compiled workload store and its shared-memory
fan-out (:mod:`repro.sim.streamstore`; see docs/performance.md) --
again purely a performance lever: a workload loaded from the store or
attached from a shared segment replays bit-identically to one built
from scratch.

``REPRO_SCALE=1 REPRO_INSTRUCTIONS=1000000000`` reproduces the paper's
exact machine and budget (at Python speed: bring a cluster and patience).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.sim.hierarchy import FilteredTrace, MachineConfig
from repro.sim.multicore import MulticoreSystem, PreparedMix
from repro.sim.streamstore import (
    CompiledWorkload,
    StreamStore,
    compile_filtered,
    stream_compile_required,
)
from repro.sim.system import SingleCoreSystem
from repro.workloads import build_mix_traces, build_trace, workload_spec_digest

__all__ = ["ExperimentConfig", "WorkloadCache"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale, budget, and seed for one experiment campaign."""

    scale: int = 8
    instructions: int = 400_000
    seed: int = 1
    num_cores: int = 4  # for the multicore experiments

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        """Build from ``REPRO_*`` environment variables (see module doc)."""
        return cls(
            scale=_env_int("REPRO_SCALE", 8),
            instructions=_env_int("REPRO_INSTRUCTIONS", 400_000),
            seed=_env_int("REPRO_SEED", 1),
            num_cores=_env_int("REPRO_CORES", 4),
        )

    def machine(self) -> MachineConfig:
        """The scaled machine."""
        return MachineConfig().scaled(self.scale)

    def describe(self) -> str:
        machine = self.machine()
        return (
            f"scale 1/{self.scale} machine (LLC {machine.llc.describe()}), "
            f"{self.instructions:,} instructions/benchmark, seed {self.seed}"
        )


class WorkloadCache:
    """Memoizes generated traces, filtering passes, and prepared mixes.

    When a compiled workload store and/or a map of already-compiled
    workloads is attached, :meth:`filtered` serves workloads from them
    instead of re-running ``build_trace`` + the L1/L2 filtering pass:

    1. the in-memory memo (free; not counted);
    2. ``compiled_streams`` -- pre-compiled blobs handed over by the
       parent process, typically views into shared-memory segments
       (counted as a ``stream_hits``);
    3. ``stream_store`` -- the on-disk store (a hit);
    4. a cold build (a ``stream_misses``), written back to the store
       when one is attached so the next run starts warm.

    Every path yields bit-identical replay results; the counters exist
    so sweeps can *prove* the warm paths were taken (they land in the
    run manifest).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        stream_store: Optional[StreamStore] = None,
        compiled_streams: Optional[Mapping[str, CompiledWorkload]] = None,
    ) -> None:
        self.config = config
        self.machine = config.machine()
        self.system = SingleCoreSystem(self.machine)
        self.multicore = MulticoreSystem(self.machine, num_cores=config.num_cores)
        self.stream_store = stream_store
        self.compiled_streams = dict(compiled_streams or {})
        self.stream_hits = 0
        self.stream_misses = 0
        self._filtered: Dict[Tuple[str, int], FilteredTrace] = {}
        self._mixes: Dict[Tuple[str, int], PreparedMix] = {}
        self._spec_digests: Dict[str, str] = {}

    def workload_key(self, benchmark: str, budget: int) -> str:
        """The store key for one of this cache's workloads.

        Folds the workload's canonical spec digest into the key, so two
        parameterized patterns that *render* alike but differ in content
        (a re-imported trace, a changed family default) can never share
        a blob.  Digests are memoized per benchmark name -- for trace
        workloads computing one means hashing the trace file.
        """
        digest = self._spec_digests.get(benchmark)
        if digest is None:
            digest = workload_spec_digest(benchmark, self.config.seed)
            self._spec_digests[benchmark] = digest
        return StreamStore.workload_key(
            benchmark, budget, self.config.seed, self.machine, spec_digest=digest
        )

    def filtered(self, benchmark: str, instructions: int = 0) -> FilteredTrace:
        """The L1/L2-filtered trace for a benchmark (cached)."""
        budget = instructions or self.config.instructions
        key = (benchmark, budget)
        if key not in self._filtered:
            self._filtered[key] = self._obtain(benchmark, budget)
        return self._filtered[key]

    def compiled(self, benchmark: str, instructions: int = 0) -> CompiledWorkload:
        """The compiled (flat-buffer) form of a workload.

        Served from ``compiled_streams`` or the store when possible;
        compiled fresh (and written back to an attached store)
        otherwise.  Parents use this to build shared-memory exports.
        """
        budget = instructions or self.config.instructions
        store_key = self.workload_key(benchmark, budget)
        existing = self.compiled_streams.get(benchmark)
        if existing is not None and existing.key == store_key:
            self.stream_hits += 1
            return existing
        if self.stream_store is not None:
            loaded = self.stream_store.load(store_key)
            if loaded is not None:
                self.stream_hits += 1
                self.compiled_streams[benchmark] = loaded
                return loaded
        base = self._filtered.get((benchmark, budget))
        if base is None:
            base = self._build(benchmark, budget)
            self.stream_misses += 1
            self._filtered[(benchmark, budget)] = base
        compiled = compile_filtered(base, self.machine, store_key)
        if self.stream_store is not None:
            self.stream_store.store(compiled)
        self.compiled_streams[benchmark] = compiled
        return compiled

    def _obtain(self, benchmark: str, budget: int) -> FilteredTrace:
        store_key = self.workload_key(benchmark, budget)
        compiled = self.compiled_streams.get(benchmark)
        if compiled is not None and compiled.key == store_key:
            self.stream_hits += 1
            return compiled.filtered_trace()
        if self.stream_store is not None:
            loaded = self.stream_store.load(store_key)
            if loaded is not None:
                self.stream_hits += 1
                return loaded.filtered_trace()
        filtered = self._build(benchmark, budget)
        self.stream_misses += 1
        if self.stream_store is not None:
            self.stream_store.store(
                compile_filtered(filtered, self.machine, store_key)
            )
        return filtered

    def _build(self, benchmark: str, budget: int) -> FilteredTrace:
        """Cold path: generate the trace and run the filtering pass."""
        if stream_compile_required():
            raise RuntimeError(
                f"REPRO_STREAM_REQUIRE is set but workload {benchmark!r} "
                f"(budget {budget}) is not in the compiled store -- a warm "
                "path was expected and a cold compile was about to happen"
            )
        trace = build_trace(
            benchmark, budget, self.machine.llc.size_bytes, seed=self.config.seed
        )
        return self.system.prepare(trace)

    def prepared_mix(self, mix_name: str, instructions: int = 0) -> PreparedMix:
        """The prepared quad-core mix (cached), including solo baselines."""
        budget = instructions or self.config.instructions
        key = (mix_name, budget)
        if key not in self._mixes:
            traces = build_mix_traces(
                mix_name, budget, self.machine.llc.size_bytes, seed=self.config.seed
            )
            self._mixes[key] = self.multicore.prepare(mix_name, traces)
        return self._mixes[key]

    def clear(self) -> None:
        """Drop all cached workloads (frees memory between experiments)."""
        self._filtered.clear()
        self._mixes.clear()
