"""Experiment configuration and workload caching.

The paper runs one-billion-instruction SimPoints on a 2MB-LLC machine; a
pure-Python reproduction scales both down.  :class:`ExperimentConfig`
holds the knobs, reads overrides from the environment, and builds the
machine; :class:`WorkloadCache` memoizes generated traces and their
L1/L2 filtering so the six techniques of Figure 4 (and the benchmark
suite's many processes' worth of figures) share one filtering pass per
workload.

Environment overrides:

=========================  =======================================  ========
Variable                   Meaning                                  Default
=========================  =======================================  ========
``REPRO_SCALE``            divide every cache capacity by this      8
``REPRO_INSTRUCTIONS``     instruction budget per benchmark         400000
``REPRO_SEED``             workload generation seed                 1
``REPRO_CORES``            cores in the multicore experiments       4
``REPRO_JOBS``             worker processes for experiment sweeps   1
``REPRO_CHECKPOINT_DIR``   persist completed sweep cells here       (off)
``REPRO_CELL_TIMEOUT``     per-cell wall-clock budget, seconds      (off)
``REPRO_CELL_RETRIES``     parallel retry rounds per failed cell    2
``REPRO_RETRY_BACKOFF``    base backoff between retry rounds, s     0.1
``REPRO_PARANOID``         per-access cache invariant checking      0
=========================  =======================================  ========

``REPRO_JOBS`` is read by :mod:`repro.harness.parallel`, not here: it
controls how many (benchmark, technique) cells run concurrently and has
no effect on simulated results (see docs/performance.md).  The
checkpoint/timeout/retry knobs belong to the fault-tolerance layer
(:mod:`repro.harness.checkpoint`, :mod:`repro.harness.faults`; see
docs/robustness.md) and likewise never change simulated results;
``REPRO_PARANOID`` is read by :class:`repro.cache.Cache` and only makes
runs slower and invariant violations loud.

``REPRO_SCALE=1 REPRO_INSTRUCTIONS=1000000000`` reproduces the paper's
exact machine and budget (at Python speed: bring a cluster and patience).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.hierarchy import FilteredTrace, MachineConfig
from repro.sim.multicore import MulticoreSystem, PreparedMix
from repro.sim.system import SingleCoreSystem
from repro.workloads import build_mix_traces, build_trace

__all__ = ["ExperimentConfig", "WorkloadCache"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale, budget, and seed for one experiment campaign."""

    scale: int = 8
    instructions: int = 400_000
    seed: int = 1
    num_cores: int = 4  # for the multicore experiments

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        """Build from ``REPRO_*`` environment variables (see module doc)."""
        return cls(
            scale=_env_int("REPRO_SCALE", 8),
            instructions=_env_int("REPRO_INSTRUCTIONS", 400_000),
            seed=_env_int("REPRO_SEED", 1),
            num_cores=_env_int("REPRO_CORES", 4),
        )

    def machine(self) -> MachineConfig:
        """The scaled machine."""
        return MachineConfig().scaled(self.scale)

    def describe(self) -> str:
        machine = self.machine()
        return (
            f"scale 1/{self.scale} machine (LLC {machine.llc.describe()}), "
            f"{self.instructions:,} instructions/benchmark, seed {self.seed}"
        )


class WorkloadCache:
    """Memoizes generated traces, filtering passes, and prepared mixes."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.machine = config.machine()
        self.system = SingleCoreSystem(self.machine)
        self.multicore = MulticoreSystem(self.machine, num_cores=config.num_cores)
        self._filtered: Dict[Tuple[str, int], FilteredTrace] = {}
        self._mixes: Dict[Tuple[str, int], PreparedMix] = {}

    def filtered(self, benchmark: str, instructions: int = 0) -> FilteredTrace:
        """The L1/L2-filtered trace for a benchmark (cached)."""
        budget = instructions or self.config.instructions
        key = (benchmark, budget)
        if key not in self._filtered:
            trace = build_trace(
                benchmark, budget, self.machine.llc.size_bytes, seed=self.config.seed
            )
            self._filtered[key] = self.system.prepare(trace)
        return self._filtered[key]

    def prepared_mix(self, mix_name: str, instructions: int = 0) -> PreparedMix:
        """The prepared quad-core mix (cached), including solo baselines."""
        budget = instructions or self.config.instructions
        key = (mix_name, budget)
        if key not in self._mixes:
            traces = build_mix_traces(
                mix_name, budget, self.machine.llc.size_bytes, seed=self.config.seed
            )
            self._mixes[key] = self.multicore.prepare(mix_name, traces)
        return self._mixes[key]

    def clear(self) -> None:
        """Drop all cached workloads (frees memory between experiments)."""
        self._filtered.clear()
        self._mixes.clear()
