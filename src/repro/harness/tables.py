"""Plain-text table rendering for the benchmark scripts.

The paper's figures are bar charts; a terminal reproduction prints the
same series as aligned tables, one row per benchmark/mix and one column
per technique, with the paper's reported aggregate alongside ours where
available.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Render one cell: floats to fixed precision, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Align ``rows`` under ``headers``; first column left-, rest right-aligned."""
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts.extend(cell.rjust(width) for cell, width in zip(cells[1:], widths[1:]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)
