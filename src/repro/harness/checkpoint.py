"""Checkpoint store for sweep cells.

A Figure 4/5/7/8 sweep is a grid of independent (benchmark, technique)
cells; at paper scale each cell is minutes-to-hours of replay.  The
:class:`CheckpointStore` persists each completed cell's
:class:`~repro.sim.system.RunResult` to disk as soon as it exists, so an
interrupted sweep -- crash, OOM kill, ctrl-C, power loss -- resumes from
the last completed cell instead of starting over.

Layout and keying
-----------------

The store is content-addressed: a cell's file name is the SHA-256 of a
canonical key string over everything that determines its result::

    v1|scale=8|instructions=400000|seed=1|cores=4|benchmark=mcf|technique=sampler

so checkpoints written under one configuration can never be mistaken for
another's (change the seed, the scale, or the budget and every key --
hence every path -- changes).  Files live under ``<root>/cells/`` as
pickles of ``{"key": <key string>, "result": <stripped RunResult>}``;
the embedded key is verified on load, which turns both hash collisions
and hand-misplaced files into cache misses rather than silent
corruption.  Writes go through a temporary file and ``os.replace`` so a
crash mid-write leaves either the old bytes or the new, never a torn
file; unreadable or torn checkpoints are treated as missing (and
re-running the cell rewrites them).

Results are stored stripped of their cache and observers, exactly as
they cross a worker-process boundary: sweeps only consume stats, timing,
and hit vectors, and policies hold arbitrarily rich (and arbitrarily
unpicklable) state.

The store root comes from, in priority order: an explicit path, the
``REPRO_CHECKPOINT_DIR`` environment variable (see
:func:`resolve_checkpoint_dir`), or nothing (checkpointing disabled).
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import threading
from pathlib import Path
from typing import Optional, Union

from repro.harness.runner import ExperimentConfig
from repro.sim.system import RunResult

__all__ = [
    "CheckpointStore",
    "resolve_checkpoint_dir",
    "result_from_wire",
    "result_to_wire",
]

_FORMAT = "v1"


def result_to_wire(result: RunResult) -> bytes:
    """Serialize one cell result for transport (fleet completions).

    Strips the cache and observers exactly as :meth:`CheckpointStore.store`
    does -- the wire carries stats, timing, and hit vectors, never live
    simulator state -- so a result that crossed the fleet protocol is
    byte-for-byte the result a local checkpoint write would have stored.
    """
    stripped = copy.copy(result)
    stripped.cache = None
    stripped.observers = ()
    return pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL)


def result_from_wire(data: bytes) -> RunResult:
    """Decode a :func:`result_to_wire` payload.

    Raises ValueError on anything that does not decode to a
    :class:`RunResult` -- a torn transfer or a confused sender must
    surface as a protocol error, never land in the checkpoint store.
    """
    try:
        payload = pickle.loads(data)
    except Exception as exc:
        raise ValueError(
            f"undecodable result payload: {type(exc).__name__}: {exc}"
        ) from None
    if not isinstance(payload, RunResult):
        raise ValueError(
            f"result payload decoded to {type(payload).__name__}, "
            "expected RunResult"
        )
    return payload


def resolve_checkpoint_dir(
    explicit: Union[str, Path, None] = None
) -> Optional[Path]:
    """The checkpoint root: explicit argument, else ``REPRO_CHECKPOINT_DIR``,
    else None (checkpointing disabled)."""
    if explicit is not None:
        return Path(explicit)
    raw = os.environ.get("REPRO_CHECKPOINT_DIR")
    if raw is None or not raw.strip():
        return None
    return Path(raw)


class CheckpointStore:
    """Content-addressed on-disk store of completed sweep cells."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._cells = self.root / "cells"
        self._cells.mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_env(
        cls, explicit: Union[str, Path, None] = None
    ) -> Optional["CheckpointStore"]:
        """A store rooted per :func:`resolve_checkpoint_dir`, or None."""
        root = resolve_checkpoint_dir(explicit)
        return cls(root) if root is not None else None

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    @staticmethod
    def cell_key(
        config: ExperimentConfig,
        benchmark: str,
        technique_key: Optional[str],
    ) -> str:
        """Canonical key string for one cell (``technique_key=None`` is
        the LRU baseline cell)."""
        technique = technique_key if technique_key is not None else "<baseline>"
        return (
            f"{_FORMAT}|scale={config.scale}|instructions={config.instructions}"
            f"|seed={config.seed}|cores={config.num_cores}"
            f"|benchmark={benchmark}|technique={technique}"
        )

    def cell_path(
        self,
        config: ExperimentConfig,
        benchmark: str,
        technique_key: Optional[str],
    ) -> Path:
        """Where the cell's checkpoint lives (whether or not it exists)."""
        key = self.cell_key(config, benchmark, technique_key)
        digest = hashlib.sha256(key.encode("ascii")).hexdigest()
        return self._cells / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def store(
        self,
        config: ExperimentConfig,
        benchmark: str,
        technique_key: Optional[str],
        result: RunResult,
    ) -> Path:
        """Persist one completed cell (atomically; returns the path)."""
        key = self.cell_key(config, benchmark, technique_key)
        path = self.cell_path(config, benchmark, technique_key)
        stripped = copy.copy(result)
        stripped.cache = None
        stripped.observers = ()
        payload = pickle.dumps(
            {"key": key, "result": stripped}, protocol=pickle.HIGHEST_PROTOCOL
        )
        # The tmp name must be unique per *writer*, not just per process:
        # the experiment service stores cells from a dispatcher thread
        # while sweep code may store from the main thread, and two
        # writers sharing one tmp path could publish a torn file.  With
        # distinct tmp files, concurrent same-key writers each replace
        # atomically and last-rename-wins with complete bytes.
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        return path

    def load(
        self,
        config: ExperimentConfig,
        benchmark: str,
        technique_key: Optional[str],
    ) -> Optional[RunResult]:
        """The checkpointed result for a cell, or None.

        Missing, torn, unpicklable, or key-mismatched files all read as
        None: a bad checkpoint costs one cell re-run, never a wrong
        sweep.
        """
        path = self.cell_path(config, benchmark, technique_key)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            return None
        except Exception:
            return None  # torn or corrupt: treat as missing
        if (
            not isinstance(payload, dict)
            or payload.get("key") != self.cell_key(config, benchmark, technique_key)
            or not isinstance(payload.get("result"), RunResult)
        ):
            return None
        return payload["result"]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Count of stored cells."""
        return sum(1 for _ in self._cells.glob("*.pkl"))

    def clear(self) -> None:
        """Delete every stored cell (the root directory is kept)."""
        for path in self._cells.glob("*.pkl"):
            path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.root)!r}, {len(self)} cells)"
