"""Fault tolerance for experiment sweeps.

A long sweep is a grid of independent (benchmark, technique) cells, and
the failure of any one cell -- a crashed worker, an OOM kill, a policy
bug that wedges a replay -- must not destroy the hours of completed work
around it.  This module supplies the pieces
:mod:`repro.harness.parallel` composes into a fault-tolerant runner:

* a structured error taxonomy (:class:`CellTimeout`, :class:`CellCrashed`,
  :class:`SweepAborted`) whose members carry the failing cell's identity,
  so a failure report can say *which* cell died and why;
* :class:`FaultPolicy` -- the timeout / retry / degradation knobs, each
  overridable from the environment (``REPRO_CELL_TIMEOUT``,
  ``REPRO_CELL_RETRIES``, ``REPRO_RETRY_BACKOFF``);
* :func:`run_cells_supervised` -- the supervision loop: rounds of
  ``imap_unordered`` over the not-yet-completed cells with a parent-side
  watchdog (catches workers that die without reporting), bounded retry
  with exponential backoff between rounds, then graceful degradation to
  serial in-process execution of whatever still fails, and only then a
  partial result or :class:`SweepAborted`;
* a deterministic fault-injection hook (``REPRO_FAULT_INJECT``) used by
  the tests to kill, stall, or fault workers on demand.

Per-cell timeouts are enforced *inside* the worker with ``SIGALRM``
(each worker is a separate process, so its main thread can take the
alarm); a worker that dies outright never reports, which the parent's
watchdog converts into :class:`CellCrashed` for every cell that was
still outstanding.  Retried and resumed sweeps stay bit-identical to an
uninterrupted serial run because cells are pure functions of
``(config, seed, benchmark, technique)`` -- supervision decides only
*whether* a cell's result was obtained, never *what* it is.

Fault injection syntax: ``REPRO_FAULT_INJECT=crash:0.1,hang:0.05``.
Modes: ``crash`` (the worker calls ``os._exit``), ``hang`` (the worker
sleeps until its deadline), ``raise`` (the worker raises a transient
exception).  Whether a given (cell, attempt) pair faults is a pure hash
of the mode, cell identity, and attempt number, so injected failure
patterns are reproducible and retries can deterministically succeed.

The fleet dispatch path (docs/service.md) has its own chaos harness,
``REPRO_CHAOS``, extending the same deterministic-draw idea across the
service: ``REPRO_CHAOS=kill:1@1,heartbeat:0.5,slow:0.2,blob:1``.
Modes: ``kill`` (a fleet worker ``os._exit``\\ s before executing a
leased cell), ``heartbeat`` (the worker silently skips heartbeat
sends), ``slow`` (the worker stalls past its lease TTL before a cell,
forcing expiry and split-brain re-dispatch while still computing), and
``blob`` (the *server* truncates a stream-blob transfer so the client
exercises torn-transfer detection).  Each mode takes an optional
``@N`` attempt cap: ``kill:1@1`` fires only on a cell's first dispatch
attempt, so the re-dispatch deterministically survives.  See
:class:`ChaosSpec`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CellCrashed",
    "CellError",
    "CellTimeout",
    "ChaosRule",
    "ChaosSpec",
    "FaultPolicy",
    "SweepAborted",
    "cell_label",
    "drain_cleanup_hooks",
    "maybe_inject_fault",
    "parse_chaos_spec",
    "parse_fault_spec",
    "run_cells_supervised",
]

#: A cell identity: (benchmark, technique key or None for the baseline).
Cell = Tuple[str, Optional[str]]


def cell_label(cell: Cell) -> str:
    """Human-readable ``benchmark/technique`` label for a cell."""
    benchmark, technique_key = cell
    return f"{benchmark}/{technique_key if technique_key is not None else 'lru(baseline)'}"


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
class CellError(Exception):
    """A single (benchmark, technique) cell failed.

    Attributes:
        benchmark / technique_key: the failing cell's identity
            (``technique_key=None`` is the LRU baseline cell).
        attempts: how many executions were tried before giving up.
        detail: free-form diagnostic (exception text, timeout value...).
    """

    def __init__(
        self,
        benchmark: str,
        technique_key: Optional[str],
        attempts: int = 1,
        detail: str = "",
    ) -> None:
        self.benchmark = benchmark
        self.technique_key = technique_key
        self.attempts = attempts
        self.detail = detail
        super().__init__(str(self))

    @property
    def cell(self) -> Cell:
        return (self.benchmark, self.technique_key)

    def __str__(self) -> str:
        text = f"{cell_label(self.cell)}: {type(self).__name__}"
        if self.detail:
            text += f" ({self.detail})"
        if self.attempts > 1:
            text += f" after {self.attempts} attempts"
        return text


class CellTimeout(CellError):
    """The cell exceeded its wall-clock budget (``REPRO_CELL_TIMEOUT``)."""


class CellCrashed(CellError):
    """The cell's worker raised, died, or never reported a result."""


class SweepAborted(Exception):
    """The sweep could not complete and partial results were not allowed.

    Carries the unrecovered :class:`CellError` list and the count of
    cells that *did* complete (and were checkpointed, when a checkpoint
    store is attached) so callers know a resume is worthwhile.
    """

    def __init__(self, failures: Sequence[CellError], completed: int = 0) -> None:
        self.failures = tuple(failures)
        self.completed = completed
        lines = "; ".join(str(f) for f in self.failures)
        super().__init__(
            f"sweep aborted with {len(self.failures)} failed cell(s) "
            f"({completed} completed): {lines}"
        )


# ----------------------------------------------------------------------
# policy knobs
# ----------------------------------------------------------------------
def _env_float(name: str, allow_zero: bool = False) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value < 0 or (value == 0 and not allow_zero):
        kind = "non-negative" if allow_zero else "positive"
        raise ValueError(f"{name} must be {kind}, got {value}")
    return value


def _env_int_nonneg(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


@dataclass(frozen=True)
class FaultPolicy:
    """Supervision knobs for one sweep.

    Attributes:
        cell_timeout: per-cell wall-clock budget in seconds, enforced in
            the worker via ``SIGALRM``; ``None`` disables the alarm.
        max_retries: parallel re-execution rounds after the first
            (``0`` = a cell gets exactly one parallel attempt).
        backoff: base of the exponential backoff slept between retry
            rounds (``backoff * 2**(round-1)`` seconds); ``0`` disables.
        degrade_serially: after the retry rounds, re-run still-failed
            cells serially in the parent process (no pool, no injection)
            before giving up.
        allow_partial: if cells remain failed after degradation, return
            a partial result carrying the failure report instead of
            raising :class:`SweepAborted`.
        watchdog: parent-side no-progress window in seconds.  When no
            result arrives for this long the round's outstanding cells
            are declared lost (:class:`CellCrashed`).  ``None`` derives
            a generous default from ``cell_timeout``.
    """

    cell_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.1
    degrade_serially: bool = True
    allow_partial: bool = False
    watchdog: Optional[float] = None

    @classmethod
    def from_env(cls) -> "FaultPolicy":
        """Build from ``REPRO_CELL_TIMEOUT`` / ``REPRO_CELL_RETRIES`` /
        ``REPRO_RETRY_BACKOFF`` (defaults where unset)."""
        policy = cls(
            cell_timeout=_env_float("REPRO_CELL_TIMEOUT"),
            max_retries=_env_int_nonneg("REPRO_CELL_RETRIES", 2),
        )
        backoff = _env_float("REPRO_RETRY_BACKOFF", allow_zero=True)
        if backoff is not None:
            policy = replace(policy, backoff=backoff)
        return policy

    def effective_watchdog(self) -> float:
        """The parent's no-progress window (always finite: a sweep must
        never wedge just because a worker died silently)."""
        if self.watchdog is not None:
            return self.watchdog
        if self.cell_timeout is not None:
            return self.cell_timeout * 2 + 30.0
        return 900.0


# ----------------------------------------------------------------------
# deterministic fault injection (test hook)
# ----------------------------------------------------------------------
_FAULT_MODES = ("crash", "hang", "raise")


def parse_fault_spec(text: Optional[str]) -> Dict[str, float]:
    """Parse ``"crash:0.1,hang:0.05"`` into ``{mode: probability}``.

    Raises ValueError on unknown modes or probabilities outside [0, 1].
    """
    spec: Dict[str, float] = {}
    if not text or not text.strip():
        return spec
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        mode, _, prob_text = part.partition(":")
        mode = mode.strip()
        if mode not in _FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {mode!r} "
                f"(valid: {', '.join(_FAULT_MODES)})"
            )
        try:
            probability = float(prob_text) if prob_text.strip() else 1.0
        except ValueError:
            raise ValueError(
                f"bad fault probability {prob_text!r} for mode {mode!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {probability}"
            )
        spec[mode] = probability
    return spec


def _fault_roll(mode: str, benchmark: str, technique_key: Optional[str], attempt: int) -> float:
    """Deterministic pseudo-uniform draw in [0, 1) for one (cell, attempt)."""
    text = f"{mode}|{benchmark}|{technique_key}|{attempt}"
    digest = hashlib.sha256(text.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def maybe_inject_fault(
    benchmark: str,
    technique_key: Optional[str],
    attempt: int,
    spec: Optional[Dict[str, float]] = None,
) -> None:
    """Test hook: fault this worker according to ``REPRO_FAULT_INJECT``.

    Called only from the *parallel worker* wrapper, never from serial or
    degraded in-process execution, so ``crash`` cannot take down the
    parent.  Whether a fault fires is a pure function of (mode, cell,
    attempt): re-running the same attempt reproduces the fault, while a
    retry (higher attempt number) redraws.
    """
    if spec is None:
        spec = parse_fault_spec(os.environ.get("REPRO_FAULT_INJECT"))
    if not spec:
        return
    if _fault_roll("crash", benchmark, technique_key, attempt) < spec.get("crash", 0.0):
        os._exit(66)  # simulate an OOM kill: no exception, no cleanup
    if _fault_roll("hang", benchmark, technique_key, attempt) < spec.get("hang", 0.0):
        time.sleep(3600.0)  # wedge until the cell deadline / watchdog fires
    if _fault_roll("raise", benchmark, technique_key, attempt) < spec.get("raise", 0.0):
        raise RuntimeError(
            f"injected transient fault ({cell_label((benchmark, technique_key))}, "
            f"attempt {attempt})"
        )


# ----------------------------------------------------------------------
# fleet chaos harness (REPRO_CHAOS)
# ----------------------------------------------------------------------
_CHAOS_MODES = ("kill", "heartbeat", "slow", "blob")


@dataclass(frozen=True)
class ChaosRule:
    """One chaos mode's firing rule.

    ``probability`` is the per-draw chance; ``max_attempt`` (when set)
    limits firing to dispatch attempts ``<= max_attempt``, which is how
    ``kill:1@1`` kills a worker on a cell's first dispatch while the
    re-dispatched attempt deterministically survives.
    """

    probability: float
    max_attempt: Optional[int] = None


def parse_chaos_spec(text: Optional[str]) -> Dict[str, ChaosRule]:
    """Parse ``"kill:1@1,heartbeat:0.5,blob"`` into ``{mode: rule}``.

    Syntax per entry: ``mode[:probability][@max_attempt]``; probability
    defaults to 1.0.  Raises ValueError on unknown modes, probabilities
    outside [0, 1], or non-positive attempt caps.
    """
    spec: Dict[str, ChaosRule] = {}
    if not text or not text.strip():
        return spec
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        body, _, cap_text = part.partition("@")
        mode, _, prob_text = body.partition(":")
        mode = mode.strip()
        if mode not in _CHAOS_MODES:
            raise ValueError(
                f"unknown chaos mode {mode!r} "
                f"(valid: {', '.join(_CHAOS_MODES)})"
            )
        try:
            probability = float(prob_text) if prob_text.strip() else 1.0
        except ValueError:
            raise ValueError(
                f"bad chaos probability {prob_text!r} for mode {mode!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"chaos probability must be in [0, 1], got {probability}"
            )
        max_attempt: Optional[int] = None
        if cap_text.strip():
            try:
                max_attempt = int(cap_text)
            except ValueError:
                raise ValueError(
                    f"bad chaos attempt cap {cap_text!r} for mode {mode!r}"
                ) from None
            if max_attempt < 1:
                raise ValueError(
                    f"chaos attempt cap must be >= 1, got {max_attempt}"
                )
        spec[mode] = ChaosRule(probability, max_attempt)
    return spec


@dataclass(frozen=True)
class ChaosSpec:
    """The parsed ``REPRO_CHAOS`` harness for one process.

    Firing is a pure function of ``(mode, identity, attempt)`` -- the
    same sha256 draw scheme as ``REPRO_FAULT_INJECT`` -- so a chaos run
    is exactly reproducible: the same worker processing the same cell
    on the same dispatch attempt always makes the same draw, while a
    re-dispatch (higher attempt) redraws.
    """

    rules: Tuple[Tuple[str, ChaosRule], ...] = ()

    @classmethod
    def from_env(cls, explicit: Optional[str] = None) -> "ChaosSpec":
        text = explicit if explicit is not None else os.environ.get("REPRO_CHAOS")
        return cls(rules=tuple(sorted(parse_chaos_spec(text).items())))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def rule(self, mode: str) -> Optional[ChaosRule]:
        for name, rule in self.rules:
            if name == mode:
                return rule
        return None

    def fires(self, mode: str, identity: str, attempt: int = 1) -> bool:
        """Whether ``mode`` fires for this (identity, attempt) draw."""
        rule = self.rule(mode)
        if rule is None:
            return False
        if rule.max_attempt is not None and attempt > rule.max_attempt:
            return False
        text = f"chaos|{mode}|{identity}|{attempt}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw < rule.probability


# ----------------------------------------------------------------------
# in-worker deadline
# ----------------------------------------------------------------------
class DeadlineExceeded(Exception):
    """Raised inside a worker when its cell overruns ``cell_timeout``."""


class cell_deadline:
    """Context manager arming a ``SIGALRM`` wall-clock deadline.

    A no-op when ``seconds`` is None or the platform lacks ``SIGALRM``
    (the parent watchdog still bounds the sweep in that case).
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self._armed = False
        self._previous = None

    def __enter__(self) -> "cell_deadline":
        if self.seconds is not None and hasattr(signal, "SIGALRM"):
            def _on_alarm(signum, frame):
                raise DeadlineExceeded(f"cell exceeded {self.seconds}s")

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self._armed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)


# ----------------------------------------------------------------------
# supervised cleanup hooks
# ----------------------------------------------------------------------
def drain_cleanup_hooks(
    hooks: Sequence[Callable[[], None]],
    on_error: Optional[Callable[[str], None]] = None,
) -> List[Exception]:
    """Run cleanup hooks in LIFO order, tolerating hooks that raise.

    Resource owners register hooks in acquisition order, so teardown
    must run in reverse (a shared-memory export created after a pool
    must be unlinked before the pool's teardown can assume it is gone).
    A raising hook is recorded and *reported* -- via ``on_error`` when
    given, else one line on stderr -- and the remaining hooks still run:
    one broken hook must never leak every resource registered before it.

    Returns the exceptions raised, in execution (LIFO) order; empty when
    every hook succeeded.
    """
    errors: List[Exception] = []
    for hook in reversed(list(hooks)):
        try:
            hook()
        except Exception as exc:
            errors.append(exc)
            name = getattr(hook, "__name__", repr(hook))
            message = (
                f"cleanup hook {name} raised "
                f"{type(exc).__name__}: {exc}; continuing with remaining hooks"
            )
            if on_error is not None:
                on_error(message)
            else:
                print(f"[cleanup] {message}", file=sys.stderr)
    return errors


# ----------------------------------------------------------------------
# the supervision loop
# ----------------------------------------------------------------------
#: Wire format a supervised worker returns:
#: (benchmark, technique_key, status, payload, timing) with status "ok"
#: carrying the cell result, "timeout"/"error" carrying a diagnostic
#: string.  ``timing`` is ``{"wall_seconds": ..., "cpu_seconds": ...}``
#: measured inside the worker (None when the cell never ran to a
#: measurable end); it feeds the sweep's events and run manifest.
WireResult = Tuple[str, Optional[str], str, object, Optional[Dict[str, float]]]


def run_cells_supervised(
    make_pool: Callable[[], multiprocessing.pool.Pool],
    worker: Callable[..., WireResult],
    cells: Sequence[Cell],
    policy: FaultPolicy,
    on_success: Callable[[Cell, object], None],
    serial_fallback: Optional[Callable[[Cell], object]] = None,
    on_event: Optional[Callable[..., None]] = None,
    cleanup: Union[Callable[[], None], Sequence[Callable[[], None]], None] = None,
) -> List[CellError]:
    """Drive ``cells`` through supervised parallel rounds.

    Args:
        make_pool: builds a fresh worker pool for each round (a round
            whose pool was poisoned by dead workers is terminated, never
            reused).
        worker: picklable task function taking
            ``(benchmark, technique_key, attempt, cell_timeout)`` and
            returning a :data:`WireResult`.  It must convert its own
            exceptions and deadline overruns into non-"ok" statuses;
            only a hard worker death leaves a cell unreported.
        cells: the work list, in deterministic order.
        policy: timeout / retry / degradation knobs.
        on_success: called once per completed cell, in completion order
            (checkpoint persistence hooks in here).
        serial_fallback: in-process executor for graceful degradation;
            ``None`` disables degradation regardless of the policy.
        on_event: optional progress callback ``(kind, cell_label,
            **payload)`` -- see
            :meth:`repro.telemetry.events.SweepTelemetry.on_event` for
            the kinds.  Purely observational: a raising callback is a
            caller bug, not a supervised fault.
        cleanup: a hook -- or a sequence of hooks, registered in
            acquisition order -- run exactly once when supervision ends,
            however it ends: success, partial failure,
            :class:`SweepAborted`, or an unexpected exception.  Resource
            owners (the shared-memory workload export, most importantly)
            hook their teardown here so a crashed or timed-out sweep can
            never leak segments.  Hooks drain in LIFO order via
            :func:`drain_cleanup_hooks`; a hook that raises is reported
            and the remaining hooks still run, so one broken hook cannot
            skip a later shm unlink.

    Returns the list of unrecovered failures, in work-list order; empty
    on full success.  Raises :class:`SweepAborted` when failures remain
    and ``policy.allow_partial`` is false.
    """
    try:
        return _run_cells_supervised(
            make_pool, worker, cells, policy, on_success,
            serial_fallback, on_event,
        )
    finally:
        if cleanup is not None:
            hooks = [cleanup] if callable(cleanup) else list(cleanup)
            drain_cleanup_hooks(hooks)


def _run_cells_supervised(
    make_pool: Callable[[], multiprocessing.pool.Pool],
    worker: Callable[..., WireResult],
    cells: Sequence[Cell],
    policy: FaultPolicy,
    on_success: Callable[[Cell, object], None],
    serial_fallback: Optional[Callable[[Cell], object]] = None,
    on_event: Optional[Callable[..., None]] = None,
) -> List[CellError]:
    pending: List[Cell] = list(cells)
    completed = 0
    failures: Dict[Cell, CellError] = {}
    watchdog = policy.effective_watchdog()

    def emit(kind: str, cell: Optional[Cell], **payload) -> None:
        if on_event is not None:
            on_event(kind, cell_label(cell) if cell is not None else "", **payload)

    for attempt in range(policy.max_retries + 1):
        if not pending:
            break
        if attempt:
            for cell in pending:
                prior = failures.get(cell)
                emit(
                    "retried", cell,
                    reason=prior.detail if prior is not None else "",
                    attempt=attempt + 1,
                )
            if policy.backoff > 0:
                time.sleep(policy.backoff * 2.0 ** (attempt - 1))
        tasks = [
            (benchmark, key, attempt, policy.cell_timeout)
            for benchmark, key in pending
        ]
        pool = make_pool()
        try:
            results = pool.imap_unordered(worker, tasks)
            received = 0
            while received < len(tasks):
                try:
                    benchmark, key, status, payload, timing = results.next(
                        timeout=watchdog
                    )
                except StopIteration:  # pragma: no cover - defensive
                    break
                except multiprocessing.TimeoutError:
                    # No result for a full watchdog window: the round is
                    # wedged (lost workers).  Abandon it; outstanding
                    # cells are recorded as crashed below.
                    break
                received += 1
                cell = (benchmark, key)
                if status == "ok":
                    pending.remove(cell)
                    failures.pop(cell, None)
                    completed += 1
                    on_success(cell, payload)
                    emit("finished", cell, status="ok", timing=timing)
                elif status == "timeout":
                    failures[cell] = CellTimeout(
                        benchmark, key, attempts=attempt + 1, detail=str(payload)
                    )
                    emit(
                        "timed_out", cell,
                        timeout_seconds=policy.cell_timeout,
                    )
                else:
                    failures[cell] = CellCrashed(
                        benchmark, key, attempts=attempt + 1, detail=str(payload)
                    )
        finally:
            # terminate(), not close(): a wedged round must not block the
            # parent on workers that will never finish.
            pool.terminate()
            pool.join()
        # Cells that never reported (worker died) get a crash record;
        # a cell that reported a failure this round keeps that record.
        for cell in pending:
            existing = failures.get(cell)
            if existing is None or existing.attempts <= attempt:
                failures[cell] = CellCrashed(
                    cell[0], cell[1], attempts=attempt + 1,
                    detail="worker died without reporting",
                )

    # Graceful degradation: whatever still fails runs serially in the
    # parent, with no pool and no fault injection in the way.
    if pending and policy.degrade_serially and serial_fallback is not None:
        emit(
            "degraded", None,
            reason=f"{len(pending)} cell(s) failed in parallel; "
            "re-running serially in the parent",
        )
        for cell in list(pending):
            emit("started", cell)
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            try:
                payload = serial_fallback(cell)
            except Exception as exc:
                failures[cell] = CellCrashed(
                    cell[0], cell[1],
                    attempts=policy.max_retries + 2,
                    detail=f"serial fallback failed: {type(exc).__name__}: {exc}",
                )
            else:
                pending.remove(cell)
                failures.pop(cell, None)
                completed += 1
                on_success(cell, payload)
                emit(
                    "finished", cell, status="ok",
                    timing={
                        "wall_seconds": time.perf_counter() - wall_start,
                        "cpu_seconds": time.process_time() - cpu_start,
                    },
                )

    unrecovered = [failures[cell] for cell in cells if cell in failures]
    for failure in unrecovered:
        emit("finished", failure.cell, status="failed", timing=None)
    if unrecovered and not policy.allow_partial:
        raise SweepAborted(unrecovered, completed=completed)
    return unrecovered
