"""Structured sweep progress events (NDJSON) and a live renderer.

A long parallel sweep should not be a black box.  The supervised runner
(:func:`repro.harness.faults.run_cells_supervised`) reports every cell
outcome to an ``on_event`` callback; this module turns those callbacks
into:

* an **NDJSON sink** (``--events-file`` / ``REPRO_EVENTS_FILE``): one
  JSON object per line, append-only, machine-readable;
* a **progress renderer** (``--progress`` / ``REPRO_PROGRESS``): one
  human line per event on stderr with completion counts and a running
  ETA.

Event schema (all events share the envelope)::

    {"event": <type>, "seq": <int>, "elapsed_seconds": <float>, ...}

Types and their extra payload:

``sweep_started``   total_cells, benchmarks, technique_keys, jobs
``cell_resumed``    cell, benchmark, technique   (checkpoint hit)
``cell_started``    cell, benchmark, technique   (serial path only --
                    parallel workers run in other processes, so starts
                    are not observable from the parent)
``cell_finished``   cell, benchmark, technique, status ("ok"|"failed"),
                    wall_seconds, cpu_seconds, done, total, eta_seconds
``cell_retried``    cell, benchmark, technique, reason, attempt
``cell_timed_out``  cell, benchmark, technique, timeout_seconds
``sweep_degraded``  reason                       (parallel -> serial)
``sweep_finished``  status ("ok"|"partial"|"aborted"), done, total,
                    wall_seconds

Timestamps are relative (``elapsed_seconds`` since sweep start); the
absolute wall-clock anchor lives in the run manifest.  The ETA is the
simple-rate estimate ``elapsed / done * remaining`` -- deliberately
unsophisticated, monotone inputs, good enough to decide whether to get
coffee.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, IO, List, Optional

__all__ = ["EventLog", "ProgressRenderer", "SweepTelemetry", "read_events"]


class EventLog:
    """Append-only NDJSON event sink.

    Accepts either a path (opened append, line-buffered flushes) or an
    open file object (not closed on :meth:`close`; useful for tests and
    stdout).  Each :meth:`emit` writes exactly one line and flushes, so
    a crashed sweep still leaves a readable prefix.
    """

    def __init__(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            self._file: Optional[IO[str]] = path_or_file
            self._owns = False
            self.path = getattr(path_or_file, "name", None)
        else:
            self._file = open(path_or_file, "a", encoding="utf-8")
            self._owns = True
            self.path = path_or_file
        self.seq = 0

    def emit(self, event: Dict[str, Any]) -> None:
        if self._file is None:
            return
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._owns and self._file is not None:
            self._file.close()
        self._file = None


class ProgressRenderer:
    """One human-readable line per event, on ``stream`` (default stderr)."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: Dict[str, Any]) -> None:
        line = self._render(event)
        if line:
            print(line, file=self.stream, flush=True)

    @staticmethod
    def _eta(event: Dict[str, Any]) -> str:
        eta = event.get("eta_seconds")
        if eta is None:
            return ""
        return f" eta {eta:.0f}s"

    def _render(self, event: Dict[str, Any]) -> Optional[str]:
        kind = event.get("event")
        cell = event.get("cell", "?")
        if kind == "sweep_started":
            return (
                f"[sweep] {event.get('total_cells', '?')} cells, "
                f"jobs={event.get('jobs', '?')}"
            )
        if kind == "cell_resumed":
            return f"[resume] {cell}"
        if kind == "cell_started":
            return f"[start] {cell}"
        if kind == "cell_finished":
            status = event.get("status", "?")
            wall = event.get("wall_seconds")
            timing = f" {wall:.2f}s" if wall is not None else ""
            return (
                f"[{status}] {cell}{timing} "
                f"({event.get('done', '?')}/{event.get('total', '?')})"
                f"{self._eta(event)}"
            )
        if kind == "cell_retried":
            return (
                f"[retry] {cell} attempt {event.get('attempt', '?')}: "
                f"{event.get('reason', '')}"
            )
        if kind == "cell_timed_out":
            return f"[timeout] {cell} after {event.get('timeout_seconds', '?')}s"
        if kind == "sweep_degraded":
            return f"[degrade] {event.get('reason', 'falling back to serial')}"
        if kind == "sweep_finished":
            wall = event.get("wall_seconds")
            timing = f" in {wall:.1f}s" if wall is not None else ""
            return (
                f"[sweep {event.get('status', '?')}] "
                f"{event.get('done', '?')}/{event.get('total', '?')}{timing}"
            )
        return None


class SweepTelemetry:
    """Fans sweep events out to sinks and tracks progress/ETA.

    The harness calls the ``sweep_*``/``cell_*`` methods; this class
    stamps the envelope (``seq``, ``elapsed_seconds``), computes
    ``done``/``total``/``eta_seconds``, and forwards the finished event
    to every sink.  It is also the bridge into the run manifest: cell
    outcomes and timings recorded here land in
    :meth:`repro.telemetry.manifest.RunManifest.record_cell`.
    """

    def __init__(self, sinks=(), manifest=None, clock=time.monotonic) -> None:
        self.sinks = list(sinks)
        self.manifest = manifest
        self._clock = clock
        self._start = clock()
        self._seq = 0
        self.total = 0
        self.done = 0
        self._retries: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # envelope plumbing
    # ------------------------------------------------------------------
    def _emit(self, kind: str, **payload: Any) -> None:
        event = {
            "event": kind,
            "seq": self._seq,
            "elapsed_seconds": round(self._clock() - self._start, 6),
        }
        event.update(payload)
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)

    @staticmethod
    def _split(cell: str):
        benchmark, _, technique = cell.partition("/")
        return benchmark, technique

    def _cell_payload(self, cell: str) -> Dict[str, Any]:
        benchmark, technique = self._split(cell)
        return {"cell": cell, "benchmark": benchmark, "technique": technique}

    # ------------------------------------------------------------------
    # sweep lifecycle (called by the harness)
    # ------------------------------------------------------------------
    def sweep_started(
        self,
        total_cells: int,
        benchmarks: List[str],
        technique_keys: List[str],
        jobs: int,
    ) -> None:
        self.total = total_cells
        self._emit(
            "sweep_started",
            total_cells=total_cells,
            benchmarks=list(benchmarks),
            technique_keys=list(technique_keys),
            jobs=jobs,
        )

    def cell_resumed(self, cell: str) -> None:
        self.done += 1
        self._emit("cell_resumed", **self._cell_payload(cell))
        if self.manifest is not None:
            self.manifest.record_cell(cell, "ok", resumed=True)

    def cell_started(self, cell: str) -> None:
        self._emit("cell_started", **self._cell_payload(cell))

    def cell_finished(
        self, cell: str, status: str, timing: Optional[Dict[str, float]] = None
    ) -> None:
        self.done += 1
        remaining = max(0, self.total - self.done)
        elapsed = self._clock() - self._start
        eta = elapsed / self.done * remaining if self.done else None
        payload = self._cell_payload(cell)
        payload.update(
            status=status,
            wall_seconds=(timing or {}).get("wall_seconds"),
            cpu_seconds=(timing or {}).get("cpu_seconds"),
            done=self.done,
            total=self.total,
            eta_seconds=round(eta, 3) if eta is not None else None,
        )
        self._emit("cell_finished", **payload)
        if self.manifest is not None:
            self.manifest.record_cell(
                cell, status, timing=timing, retries=self._retries.get(cell, 0)
            )

    def cell_retried(self, cell: str, reason: str, attempt: int) -> None:
        self._retries[cell] = attempt
        payload = self._cell_payload(cell)
        payload.update(reason=reason, attempt=attempt)
        self._emit("cell_retried", **payload)

    def cell_timed_out(self, cell: str, timeout_seconds: float) -> None:
        payload = self._cell_payload(cell)
        payload.update(timeout_seconds=timeout_seconds)
        self._emit("cell_timed_out", **payload)

    def sweep_degraded(self, reason: str) -> None:
        self._emit("sweep_degraded", reason=reason)

    def sweep_finished(self, status: str) -> None:
        wall = self._clock() - self._start
        self._emit(
            "sweep_finished",
            status=status,
            done=self.done,
            total=self.total,
            wall_seconds=round(wall, 6),
        )

    # ------------------------------------------------------------------
    # on_event adapter for run_cells_supervised
    # ------------------------------------------------------------------
    def on_event(self, kind: str, cell: str, **payload: Any) -> None:
        """Dispatch a ``(kind, cell, ...)`` callback from the runner."""
        handler = {
            "resumed": self.cell_resumed,
            "started": self.cell_started,
        }.get(kind)
        if handler is not None:
            handler(cell)
        elif kind == "finished":
            self.cell_finished(
                cell, payload.get("status", "ok"), payload.get("timing")
            )
        elif kind == "retried":
            self.cell_retried(
                cell, payload.get("reason", ""), payload.get("attempt", 1)
            )
        elif kind == "timed_out":
            self.cell_timed_out(cell, payload.get("timeout_seconds", 0.0))
        elif kind == "degraded":
            self.sweep_degraded(payload.get("reason", ""))

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse an NDJSON events file back into a list of dicts.

    Blank lines are skipped; a malformed line raises ``ValueError`` with
    its line number (truncated *final* lines from a crash mid-write are
    impossible by construction -- each emit is a single flushed line).
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: invalid event line") from error
    return events
