"""Time-series exporters and the text report renderer.

Takes the per-epoch samples an
:class:`~repro.telemetry.probe.IntervalRecorder` collected and turns
them into:

* **NDJSON** (:func:`write_ndjson`): one JSON object per epoch, with a
  leading ``{"kind": "context", ...}`` header row carrying run metadata;
* **CSV** (:func:`write_csv`): one row per epoch over the union of
  columns (epochs missing a column leave it blank);
* **sparkline tables** (:func:`render_report`): a terminal-friendly
  phase plot -- one row per metric, the epoch series compressed into a
  Unicode block-character strip with min/mean/max, which is how the
  ``repro report --timeseries`` CLI shows phase behaviour at a glance.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "render_report",
    "sparkline",
    "write_csv",
    "write_ndjson",
]

#: Eight-level block ramp; NaN/None render as a space.
_BLOCKS = "▁▂▃▄▅▆▇█"

#: Metrics shown by the default report, in display order.  Only the
#: columns actually present in the samples are rendered, so the same
#: list works for runs with and without an accuracy observer.
DEFAULT_REPORT_METRICS = (
    "miss_rate",
    "mpki",
    "coverage",
    "false_positive_rate",
    "bypass_rate",
    "sampler_occupancy",
    "sampler_eviction_per_epoch",
    "table_saturation",
)


def _rows(recorder) -> List[Dict[str, Any]]:
    return [sample.to_dict() for sample in recorder.samples]


def write_ndjson(recorder, path_or_file) -> None:
    """Dump the recorder's series as NDJSON (context header + epoch rows)."""
    rows = _rows(recorder)
    header = {"kind": "context"}
    header.update(recorder.context)
    header["epochs"] = len(rows)

    def _write(handle) -> None:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(handle)


def write_csv(recorder, path_or_file) -> None:
    """Dump the recorder's series as CSV over the union of columns."""
    rows = _rows(recorder)
    fields = recorder.fields()

    def _write(handle) -> None:
        writer = csv.DictWriter(handle, fieldnames=fields, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        # newline="" per the csv module contract.
        with open(path_or_file, "w", encoding="utf-8", newline="") as handle:
            _write(handle)


def sparkline(values: Sequence[Optional[float]], width: Optional[int] = None) -> str:
    """Compress a numeric series into a block-character strip.

    ``None`` values render as spaces.  With ``width`` set, the series is
    bucketed by averaging so long runs still fit a terminal row.  A flat
    (or single-point) series renders at mid-height rather than dividing
    by a zero range.
    """
    series: List[Optional[float]] = list(values)
    if width is not None and width > 0 and len(series) > width:
        bucketed: List[Optional[float]] = []
        for bucket in range(width):
            start = bucket * len(series) // width
            stop = (bucket + 1) * len(series) // width
            chunk = [value for value in series[start:stop] if value is not None]
            bucketed.append(sum(chunk) / len(chunk) if chunk else None)
        series = bucketed
    present = [value for value in series if value is not None]
    if not present:
        return " " * len(series)
    low, high = min(present), max(present)
    span = high - low
    out = []
    for value in series:
        if value is None:
            out.append(" ")
        elif span == 0:
            out.append(_BLOCKS[len(_BLOCKS) // 2])
        else:
            index = int((value - low) / span * (len(_BLOCKS) - 1))
            out.append(_BLOCKS[index])
    return "".join(out)


def _stats(values: Sequence[Optional[float]]):
    present = [value for value in values if value is not None]
    if not present:
        return None
    return min(present), sum(present) / len(present), max(present)


def render_report(
    recorder,
    metrics: Sequence[str] = DEFAULT_REPORT_METRICS,
    width: int = 48,
) -> str:
    """Render one run's time series as a sparkline table.

    One row per metric that exists in the samples: name, sparkline over
    epochs, and min/mean/max.  Returns the table as a string (caller
    prints); an empty recorder yields an explanatory one-liner.
    """
    if not recorder.samples:
        return "(no samples recorded)"
    context = recorder.context
    title_bits = [
        str(context.get("workload", "?")),
        str(context.get("technique", "?")),
        f"{len(recorder.samples)} epochs",
    ]
    accesses = recorder.total_accesses
    if accesses:
        title_bits.append(f"{accesses} LLC accesses")
    lines = ["  ".join(title_bits)]

    available = set(recorder.fields())
    name_width = max(
        (len(metric) for metric in metrics if metric in available), default=6
    )
    for metric in metrics:
        if metric not in available:
            continue
        series = recorder.series(metric)
        summary = _stats(series)
        if summary is None:
            continue
        low, mean, high = summary
        lines.append(
            f"  {metric:<{name_width}}  {sparkline(series, width)}  "
            f"min {low:.4g}  mean {mean:.4g}  max {high:.4g}"
        )
    if len(lines) == 1:
        lines.append("  (none of the requested metrics were recorded)")
    return "\n".join(lines)
