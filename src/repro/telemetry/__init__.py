"""Observability for the reproduction: probes, manifests, events, exports.

Four layers, each usable on its own:

* :mod:`repro.telemetry.probe` -- near-zero-overhead interval probes
  that turn one replay into a per-epoch time series;
* :mod:`repro.telemetry.manifest` -- atomic run manifests recording
  config, seeds, git SHA, ``REPRO_*`` knobs, and per-cell timings;
* :mod:`repro.telemetry.events` -- structured NDJSON sweep progress
  events with a live stderr renderer and ETA;
* :mod:`repro.telemetry.export` -- NDJSON/CSV series dumps and
  sparkline text reports.

See ``docs/observability.md`` for the end-to-end tour.
"""

from repro.telemetry.events import (
    EventLog,
    ProgressRenderer,
    SweepTelemetry,
    read_events,
)
from repro.telemetry.export import (
    render_report,
    sparkline,
    write_csv,
    write_ndjson,
)
from repro.telemetry.manifest import RunManifest, collect_environment, git_revision
from repro.telemetry.probe import (
    NULL_PROBE,
    IntervalRecorder,
    IntervalSample,
    NullProbe,
    TelemetryProbe,
)

__all__ = [
    "EventLog",
    "IntervalRecorder",
    "IntervalSample",
    "NULL_PROBE",
    "NullProbe",
    "ProgressRenderer",
    "RunManifest",
    "SweepTelemetry",
    "TelemetryProbe",
    "collect_environment",
    "git_revision",
    "read_events",
    "render_report",
    "sparkline",
    "write_csv",
    "write_ndjson",
]
