"""Run manifests: what exactly produced a results file.

A sweep that ran overnight is worthless if nobody can say which config,
seed, code revision, and environment produced it.  A
:class:`RunManifest` stamps every sweep with:

* the experiment config (scale, instructions, seed, cores) and the
  technique keys and benchmarks swept;
* the git SHA (and a dirty flag) of the working tree, when available;
* every ``REPRO_*`` environment knob that was set;
* interpreter and relevant library versions;
* wall-clock duration plus per-cell wall/CPU timings measured inside
  the workers;
* the compiled-workload-store configuration and hit/miss counters
  (sweep-level summary in ``stream_store``, per-cell ``store_hits`` /
  ``store_misses``), so a results file can prove whether its workloads
  came off the warm path (see docs/performance.md).

Manifests are written atomically (temp file + ``os.replace``) next to
the checkpoint store by default, so a manifest on disk always describes
a complete write -- the same discipline
:class:`repro.harness.checkpoint.CheckpointStore` uses for cells.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunManifest", "collect_environment", "git_revision"]

MANIFEST_VERSION = 1

#: Libraries whose presence/version can change results or performance.
_INTERESTING_LIBRARIES = ("numpy", "pytest", "hypothesis", "pytest_benchmark")


def git_revision(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Best-effort git identity of the working tree.

    Returns ``{"sha": ..., "dirty": ...}``; outside a git checkout (or
    without a git binary) the values are ``None`` rather than failing --
    a manifest must never break a sweep.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout
        return {"sha": sha, "dirty": bool(status.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def _library_versions() -> Dict[str, Optional[str]]:
    versions: Dict[str, Optional[str]] = {}
    for name in _INTERESTING_LIBRARIES:
        try:
            module = __import__(name)
            versions[name] = getattr(module, "__version__", None)
        except ImportError:
            versions[name] = None
    return versions


def collect_environment() -> Dict[str, Any]:
    """Interpreter, platform, ``REPRO_*`` knobs, and library versions."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "repro_env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        "libraries": _library_versions(),
    }


@dataclass
class RunManifest:
    """Accumulates sweep provenance, then writes one atomic JSON file.

    The harness creates the manifest at sweep start, records each cell's
    outcome as it lands (including retries and failures, mirroring the
    PR 2 supervision taxonomy), and finalizes with the total wall time.
    ``cells`` maps ``"benchmark/technique"`` labels to outcome dicts:
    ``{"status": "ok"|"failed"|..., "wall_seconds": ..., "cpu_seconds":
    ..., "retries": ..., "resumed": ...}``.
    """

    command: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    technique_keys: List[str] = field(default_factory=list)
    benchmarks: List[str] = field(default_factory=list)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    git: Dict[str, Any] = field(default_factory=git_revision)
    environment: Dict[str, Any] = field(default_factory=collect_environment)
    jobs: Optional[int] = None
    checkpoint_root: Optional[str] = None
    stream_store: Optional[Dict[str, Any]] = None
    status: str = "running"
    cells: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def record_cell(
        self,
        label: str,
        status: str,
        timing: Optional[Dict[str, float]] = None,
        retries: int = 0,
        resumed: bool = False,
    ) -> None:
        """Record one cell outcome (latest write for a label wins)."""
        entry: Dict[str, Any] = {"status": status, "retries": retries}
        if resumed:
            entry["resumed"] = True
        if timing:
            entry.update(
                {
                    key: timing[key]
                    for key in (
                        "wall_seconds",
                        "cpu_seconds",
                        "store_hits",
                        "store_misses",
                        "kernel",
                        "kernel_fallback",
                    )
                    if key in timing
                }
            )
        self.cells[label] = entry

    def finalize(self, status: str, finished_at: Optional[float] = None) -> None:
        self.status = status
        self.finished_at = finished_at

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        wall = None
        if self.started_at is not None and self.finished_at is not None:
            wall = self.finished_at - self.started_at
        return {
            "manifest_version": MANIFEST_VERSION,
            "command": self.command,
            "status": self.status,
            "config": self.config,
            "technique_keys": list(self.technique_keys),
            "benchmarks": list(self.benchmarks),
            "jobs": self.jobs,
            "checkpoint_root": self.checkpoint_root,
            "stream_store": self.stream_store,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": wall,
            "git": self.git,
            "environment": self.environment,
            "cells": self.cells,
        }

    def write(self, path: str) -> str:
        """Atomically serialize to ``path`` (temp file + ``os.replace``)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> Dict[str, Any]:
        """Read a manifest back as a plain dict (schema-checked lightly)."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "manifest_version" not in data:
            raise ValueError(f"{path} is not a run manifest")
        return data
