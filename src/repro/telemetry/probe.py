"""The telemetry probe API: interval time-series instrumentation.

The paper's dead-block predictor is a *phase* mechanism -- coverage,
false-positive rate, and bypass rate swing as a workload moves between
phases (Section VII-C discusses exactly such dynamics) -- yet end-of-run
aggregates average those swings away.  A probe attached to a cache turns
one replay into a per-epoch time series without perturbing it.

Design constraints, in priority order:

1. **Transparency**: probes are strictly observational.  Replay results
   (hit vectors, statistics, block and policy state) are bit-identical
   with any probe attached or not; ``tests/test_telemetry_transparency.py``
   pins this.
2. **Probes-off is free**: the default :data:`NULL_PROBE` is checked once
   per *replay*, not once per access -- the fast path of
   :func:`repro.sim.replay.replay` is byte-for-byte the code that runs
   without telemetry (``make bench-smoke`` guards the throughput).
3. **Pull, not push**: instead of per-event callbacks, the
   :class:`IntervalRecorder` reads cumulative counters
   (:class:`~repro.cache.stats.CacheStats`, the accuracy observer, and
   any component exposing ``telemetry_snapshot()``) at epoch boundaries
   and differences them.  Hot loops never see the probe.

Component gauges
----------------

Any object reachable as ``cache.policy`` may expose
``telemetry_snapshot() -> Dict[str, float]`` (see
:meth:`repro.replacement.base.ReplacementPolicy.telemetry_snapshot`).
Keys ending in ``_count`` are treated as cumulative counters and emitted
as per-epoch deltas under ``<key minus _count>_per_epoch``; every other
key is a point-in-time gauge and passes through raw.  The shipped
components report:

* sampler: ``sampler_occupancy`` plus access/hit/eviction counts
  (:meth:`repro.core.sampler.Sampler.telemetry_snapshot`);
* skewed tables: ``table_saturation`` / ``table_mean_counter``
  (:meth:`repro.core.skewed.SkewedCounterTable.telemetry_snapshot`).

Coverage and false positives need ground truth an aggregate counter
cannot supply; when an
:class:`~repro.analysis.accuracy.AccuracyObserver` is attached to the
cache the recorder differences its counters into per-epoch ``coverage``
and ``false_positive_rate`` series (recognized structurally, so the
probe layer imports nothing from the analysis layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "NULL_PROBE",
    "IntervalRecorder",
    "IntervalSample",
    "NullProbe",
    "TelemetryProbe",
]

#: Stats counters differenced into every sample, in export order.
STAT_FIELDS = (
    "accesses",
    "hits",
    "misses",
    "fills",
    "evictions",
    "writebacks",
    "bypasses",
    "dead_block_victims",
)

#: Suffix marking a ``telemetry_snapshot`` key as a cumulative counter.
_COUNT_SUFFIX = "_count"


class TelemetryProbe:
    """Interface the replay engine drives; the base class is inert.

    ``enabled`` is a class attribute checked exactly once per replay: a
    disabled probe costs one attribute read per replayed stream.  When
    enabled, the replay engine calls :meth:`begin_run` before the first
    access, :meth:`on_epoch` at every epoch boundary (the final boundary
    always lands on the end of the stream), and :meth:`end_run` after
    the last -- on both the inlined fast path and the observer/subclass
    reference path.
    """

    enabled = False

    def resolve_epoch(self, total_accesses: int) -> int:
        """Epoch length in LLC accesses for a stream of ``total_accesses``."""
        return max(1, total_accesses)

    def set_context(self, **context: Any) -> None:
        """Attach run metadata (workload, technique, instruction count)."""

    def begin_run(self, cache, total_accesses: int) -> None:
        """The replay of ``total_accesses`` accesses is about to start."""

    def on_epoch(self, cache, position: int) -> None:
        """``position`` accesses have been replayed (epoch boundary)."""

    def end_run(self, cache, position: int) -> None:
        """The replay finished at ``position`` accesses."""


class NullProbe(TelemetryProbe):
    """The default probe: does nothing, costs nothing."""


#: Shared inert probe; ``Cache`` uses it when no probe is supplied, so
#: ``cache.probe`` is always a valid object and never needs a None check.
NULL_PROBE = NullProbe()


@dataclass
class IntervalSample:
    """One epoch of a replayed stream.

    Counter fields are per-epoch deltas of the cache statistics;
    ``gauges`` carries component snapshots (see the module docstring for
    the counter-vs-gauge convention) plus, when an accuracy observer is
    attached, per-epoch ``coverage`` and ``false_positive_rate``.
    """

    epoch: int
    start: int  # stream position of the epoch's first access
    end: int    # one past the epoch's last access
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    bypasses: int = 0
    dead_block_victims: int = 0
    instructions_est: Optional[float] = None
    gauges: Dict[str, float] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        """Demand miss ratio within the epoch."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def bypass_rate(self) -> float:
        """Fraction of the epoch's misses that bypassed the LLC."""
        return self.bypasses / self.misses if self.misses else 0.0

    @property
    def mpki(self) -> Optional[float]:
        """Epoch MPKI against the estimated instruction share, or None."""
        if not self.instructions_est:
            return None
        return self.misses * 1000.0 / self.instructions_est

    def to_dict(self) -> Dict[str, Any]:
        """Flat, JSON-ready row (derived rates included)."""
        row: Dict[str, Any] = {"epoch": self.epoch, "start": self.start, "end": self.end}
        for name in STAT_FIELDS:
            row[name] = getattr(self, name)
        row["miss_rate"] = self.miss_rate
        row["bypass_rate"] = self.bypass_rate
        if self.instructions_est is not None:
            row["instructions_est"] = self.instructions_est
            row["mpki"] = self.mpki
        row.update(self.gauges)
        return row


class IntervalRecorder(TelemetryProbe):
    """Records per-epoch :class:`IntervalSample` rows during a replay.

    Args:
        epochs: target number of epochs per run; the epoch length is
            derived from the stream length (at least one access each).
        epoch_accesses: fixed epoch length in LLC accesses, overriding
            ``epochs``.

    One recorder observes one run at a time; a new :meth:`begin_run`
    starts a fresh sample list (reuse across techniques would silently
    splice unrelated series).  The completed series is in ``samples``
    and the run metadata in ``context``.
    """

    enabled = True

    def __init__(self, epochs: int = 32, epoch_accesses: Optional[int] = None) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if epoch_accesses is not None and epoch_accesses < 1:
            raise ValueError(
                f"epoch_accesses must be positive, got {epoch_accesses}"
            )
        self.epochs = epochs
        self.epoch_accesses = epoch_accesses
        self.context: Dict[str, Any] = {}
        self.samples: List[IntervalSample] = []
        self.total_accesses = 0
        self._stats_floor = None
        self._accuracy_floor: Optional[Dict[str, int]] = None
        self._gauge_floor: Dict[str, float] = {}
        self._position = 0

    # ------------------------------------------------------------------
    # probe interface
    # ------------------------------------------------------------------
    def resolve_epoch(self, total_accesses: int) -> int:
        if self.epoch_accesses is not None:
            return self.epoch_accesses
        return max(1, -(-total_accesses // self.epochs))  # ceil division

    def set_context(self, **context: Any) -> None:
        self.context.update(context)

    def begin_run(self, cache, total_accesses: int) -> None:
        self.samples = []
        self.total_accesses = total_accesses
        self._position = 0
        self._stats_floor = cache.stats.snapshot()
        self._accuracy_floor = self._accuracy_counters(cache)
        self._gauge_floor = self._component_snapshot(cache)

    def on_epoch(self, cache, position: int) -> None:
        stats = cache.stats
        floor = self._stats_floor
        sample = IntervalSample(
            epoch=len(self.samples), start=self._position, end=position
        )
        for name in STAT_FIELDS:
            setattr(sample, name, getattr(stats, name) - getattr(floor, name))
        instructions = self.context.get("instructions")
        if instructions and self.total_accesses:
            sample.instructions_est = (
                instructions * sample.accesses / self.total_accesses
            )
        self._attach_accuracy(cache, sample)
        self._attach_gauges(cache, sample)
        self.samples.append(sample)
        self._position = position
        self._stats_floor = stats.snapshot()

    def end_run(self, cache, position: int) -> None:
        if position > self._position:
            # Trailing partial epoch (reference path streams whose length
            # is not a multiple of the epoch).
            self.on_epoch(cache, position)

    # ------------------------------------------------------------------
    # counter sources
    # ------------------------------------------------------------------
    @staticmethod
    def _accuracy_counters(cache) -> Optional[Dict[str, int]]:
        """Cumulative counters of an attached accuracy observer, or None.

        Recognized structurally (``positives`` / ``false_positives`` /
        ``accesses`` attributes) so this module never imports the
        analysis layer.
        """
        for observer in getattr(cache, "_observers", ()):
            positives = getattr(observer, "positives", None)
            false_positives = getattr(observer, "false_positives", None)
            accesses = getattr(observer, "accesses", None)
            if None not in (positives, false_positives, accesses):
                return {
                    "positives": positives,
                    "false_positives": false_positives,
                    "accesses": accesses,
                }
        return None

    def _attach_accuracy(self, cache, sample: IntervalSample) -> None:
        now = self._accuracy_counters(cache)
        floor = self._accuracy_floor
        if now is None or floor is None:
            return
        accesses = now["accesses"] - floor["accesses"]
        if accesses > 0:
            sample.gauges["coverage"] = (
                now["positives"] - floor["positives"]
            ) / accesses
            sample.gauges["false_positive_rate"] = (
                now["false_positives"] - floor["false_positives"]
            ) / accesses
        self._accuracy_floor = now

    @staticmethod
    def _component_snapshot(cache) -> Dict[str, float]:
        snapshot = getattr(cache.policy, "telemetry_snapshot", None)
        return dict(snapshot()) if snapshot is not None else {}

    def _attach_gauges(self, cache, sample: IntervalSample) -> None:
        snapshot = self._component_snapshot(cache)
        floor = self._gauge_floor
        for key, value in snapshot.items():
            if key.endswith(_COUNT_SUFFIX):
                delta = value - floor.get(key, 0)
                sample.gauges[key[: -len(_COUNT_SUFFIX)] + "_per_epoch"] = delta
            else:
                sample.gauges[key] = value
        self._gauge_floor = snapshot

    # ------------------------------------------------------------------
    # series access
    # ------------------------------------------------------------------
    def fields(self) -> List[str]:
        """Union of row columns across samples, in first-seen order."""
        seen: Dict[str, None] = {}
        for sample in self.samples:
            for key in sample.to_dict():
                seen.setdefault(key)
        return list(seen)

    def series(self, name: str) -> List[Optional[float]]:
        """One column across epochs (None where a sample lacks it)."""
        return [sample.to_dict().get(name) for sample in self.samples]

    def __repr__(self) -> str:
        label = self.context.get("workload", "?")
        return (
            f"IntervalRecorder({label}, {len(self.samples)} samples, "
            f"epochs={self.epochs})"
        )
