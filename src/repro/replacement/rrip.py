"""Re-Reference Interval Prediction (RRIP) replacement.

Jaleel et al., ISCA 2010 -- the strongest contemporaneous baseline in the
paper (Figures 4, 5, and the multi-core variant in Figure 10a; the paper
reports RRIP reducing single-thread misses by 8.1% and speeding up 4.1%).

Each block carries an M-bit re-reference prediction value (RRPV):

* RRPV 0 = predicted "near-immediate" re-reference;
* RRPV ``2**M - 1`` = predicted "distant" re-reference (eviction candidate).

**SRRIP** inserts at ``max-1`` ("long" interval) and promotes to 0 on a hit
(hit-priority).  **BRRIP** inserts at ``max`` most of the time and at
``max-1`` for 1/32 of fills, which resists thrashing the way BIP does.
**DRRIP** set-duels SRRIP against BRRIP; the thread-aware variant used for
shared caches duels per core (this is the "multi-core version of RRIP" the
paper compares against).
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["BRRIPPolicy", "DRRIPPolicy", "SRRIPPolicy"]


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with hit priority (SRRIP-HP).

    Args:
        rrpv_bits: width of the re-reference prediction value (paper: 2).
    """

    def __init__(self, rrpv_bits: int = 2) -> None:
        super().__init__()
        if rrpv_bits < 1:
            raise ValueError(f"rrpv_bits must be >= 1, got {rrpv_bits}")
        self.rrpv_max = (1 << rrpv_bits) - 1
        self._rrpv: List[List[int]] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        self._rrpv = [
            [self.rrpv_max] * cache.geometry.associativity
            for _ in range(cache.geometry.num_sets)
        ]

    # ------------------------------------------------------------------
    # insertion RRPV, overridden by BRRIP/DRRIP
    # ------------------------------------------------------------------
    def insertion_rrpv(self, set_index: int, access: "CacheAccess") -> int:
        return self.rrpv_max - 1  # "long" re-reference interval

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._rrpv[set_index][way] = self.insertion_rrpv(set_index, access)

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        """Evict the leftmost block at max RRPV, aging the set as needed."""
        rrpvs = self._rrpv[set_index]
        maximum = self.rrpv_max
        while True:
            for way, value in enumerate(rrpvs):
                if value >= maximum:
                    return way
            # Nobody is distant yet: age everyone by the smallest deficit.
            deficit = maximum - max(rrpvs)
            for way in range(len(rrpvs)):
                rrpvs[way] += deficit


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: distant insertion, with rare long insertions."""

    def __init__(self, rrpv_bits: int = 2, epsilon_inverse: int = 32) -> None:
        super().__init__(rrpv_bits)
        self.epsilon_inverse = epsilon_inverse
        self._fill_count = 0

    def insertion_rrpv(self, set_index: int, access: "CacheAccess") -> int:
        self._fill_count += 1
        if self._fill_count % self.epsilon_inverse == 0:
            return self.rrpv_max - 1
        return self.rrpv_max


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.

    With ``num_cores > 1`` the dueling is per core (thread-aware DRRIP),
    which is the configuration the paper's Figure 10a calls "RRIP".
    """

    _FOLLOWER = -1

    #: leader sets per policy per core per this many cache sets.
    LEADER_RATIO = 64

    def __init__(
        self,
        rrpv_bits: int = 2,
        num_cores: int = 1,
        leader_sets: int = None,
        psel_bits: int = 10,
        epsilon_inverse: int = 32,
    ) -> None:
        super().__init__(rrpv_bits)
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psels: List[int] = [1 << (psel_bits - 1)] * num_cores
        self.epsilon_inverse = epsilon_inverse
        self._fill_count = 0
        self._leader_owner: List[int] = []
        self._leader_is_brrip: List[bool] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        num_sets = cache.geometry.num_sets
        self._leader_owner = [self._FOLLOWER] * num_sets
        self._leader_is_brrip = [False] * num_sets
        target = self.leader_sets
        if target is None:
            target = max(1, num_sets // self.LEADER_RATIO)
        per_core = max(1, min(target, num_sets // (2 * self.num_cores)))
        interval = max(1, num_sets // (per_core * self.num_cores * 2))
        position = 0
        for _ in range(per_core):
            for core in range(self.num_cores):
                for is_brrip in (False, True):
                    set_index = position % num_sets
                    self._leader_owner[set_index] = core
                    self._leader_is_brrip[set_index] = is_brrip
                    position += interval

    def _brrip_wins(self, core: int) -> bool:
        """High PSEL means SRRIP leaders missed more, so BRRIP wins."""
        return self.psels[core] > self.psel_max // 2

    def on_miss(self, set_index: int, access: "CacheAccess") -> None:
        owner = self._leader_owner[set_index]
        if owner == self._FOLLOWER:
            return
        if self.num_cores > 1 and owner != access.core % self.num_cores:
            return
        if self._leader_is_brrip[set_index]:
            if self.psels[owner] > 0:
                self.psels[owner] -= 1
        else:
            if self.psels[owner] < self.psel_max:
                self.psels[owner] += 1

    def _brrip_insertion(self) -> int:
        self._fill_count += 1
        if self._fill_count % self.epsilon_inverse == 0:
            return self.rrpv_max - 1
        return self.rrpv_max

    def insertion_rrpv(self, set_index: int, access: "CacheAccess") -> int:
        core = access.core % self.num_cores
        owner = self._leader_owner[set_index]
        if owner == core or (self.num_cores == 1 and owner != self._FOLLOWER):
            if self._leader_is_brrip[set_index]:
                return self._brrip_insertion()
            return self.rrpv_max - 1
        if self._brrip_wins(core):
            return self._brrip_insertion()
        return self.rrpv_max - 1
