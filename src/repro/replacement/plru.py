"""Tree pseudo-LRU replacement.

Not evaluated in the paper's figures, but included because the paper's core
argument for the random-default configuration is that *true* LRU is too
expensive at 16 ways; tree PLRU is the structure real LLCs actually ship
with, so it is the natural third default policy to study with DBRB.  The
example scripts and extension benches use it.

The per-set state is ``associativity - 1`` tree bits.  Bit semantics: 0
means "the LRU side is the left subtree", 1 means "the LRU side is the
right subtree"; an access flips the bits on its root-to-leaf path to point
*away* from itself.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.replacement.base import ReplacementPolicy
from repro.utils.bits import ilog2, is_power_of_two

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["TreePLRUPolicy"]


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU; requires power-of-two associativity."""

    def __init__(self) -> None:
        super().__init__()
        self._trees: List[List[int]] = []
        self._levels = 0

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        associativity = cache.geometry.associativity
        if not is_power_of_two(associativity):
            raise ValueError(
                f"tree PLRU needs power-of-two associativity, got {associativity}"
            )
        self._levels = ilog2(associativity)
        self._trees = [
            [0] * (associativity - 1) for _ in range(cache.geometry.num_sets)
        ]

    def _touch(self, set_index: int, way: int) -> None:
        """Point every bit on the way's path away from the accessed way."""
        tree = self._trees[set_index]
        node = 0
        for level in range(self._levels - 1, -1, -1):
            went_right = (way >> level) & 1
            # Point at the *other* subtree: 0 means left is LRU side.
            tree[node] = 0 if went_right else 1
            node = 2 * node + 1 + went_right

    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._touch(set_index, way)

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        """Follow the tree bits toward the pseudo-LRU leaf."""
        tree = self._trees[set_index]
        node = 0
        way = 0
        for _ in range(self._levels):
            go_right = tree[node]
            way = (way << 1) | go_right
            node = 2 * node + 1 + go_right
        return way
