"""Replacement, insertion, and bypass policies.

The paper evaluates its sampling predictor against the strongest cache
management proposals of its era; all of them live here:

* :class:`LRUPolicy` -- the baseline every figure normalizes to.
* :class:`RandomPolicy` -- the cheap default policy of Section V-A/VII-B.
* :class:`TreePLRUPolicy` -- the practical LRU approximation (extension).
* :class:`DIPPolicy` -- dynamic insertion with set dueling (Qureshi et al.).
* :class:`TADIPPolicy` -- thread-aware DIP for shared caches (Jaleel et al.).
* :class:`SRRIPPolicy` / :class:`DRRIPPolicy` -- re-reference interval
  prediction (Jaleel et al.), including the thread-aware multi-core variant.
* :class:`OptimalPolicy` -- Belady's MIN enhanced with bypass, the paper's
  upper bound (Section VI-B).

The dead-block replacement and bypass policy itself is in
:mod:`repro.core.policy` because it is part of the paper's contribution.
"""

from repro.replacement.base import ReplacementPolicy
from repro.replacement.dip import BIPPolicy, DIPPolicy
from repro.replacement.lru import LRUPolicy
from repro.replacement.optimal import OptimalPolicy, annotate_next_use
from repro.replacement.plru import TreePLRUPolicy
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.replacement.ship import SHiPPolicy
from repro.replacement.tadip import TADIPPolicy

__all__ = [
    "BIPPolicy",
    "BRRIPPolicy",
    "DIPPolicy",
    "DRRIPPolicy",
    "LRUPolicy",
    "OptimalPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "TADIPPolicy",
    "TreePLRUPolicy",
    "annotate_next_use",
]
