"""Thread-Aware Dynamic Insertion Policy (TADIP).

Jaleel et al., PACT 2008 -- the paper's shared-cache insertion baseline
(Figure 10a; the paper reports a 7.6% geometric-mean normalized weighted
speedup for TADIP on the quad-core mixes).

Each core gets its own group of leader sets and its own PSEL counter, so a
thrashing thread can switch to BIP insertion while a cache-friendly
co-runner keeps MRU insertion.  This implements the feedback variant
(TADIP-F) in the simplified form commonly used in replacement studies: in
core *c*'s LRU-leader sets, core *c* inserts at MRU (and others follow
their own PSELs); in its BIP-leader sets it inserts bimodally; everywhere
else every core follows its own PSEL.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.replacement.lru import LRUPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["TADIPPolicy"]


class TADIPPolicy(LRUPolicy):
    """Per-thread set-dueling insertion policy for shared caches.

    Args:
        num_cores: number of threads sharing the cache.
        leader_sets: dedicated sets per policy *per core* (default 32 split
            across cores when the cache is small).
        psel_bits: policy selector width, per core.
        epsilon_inverse: BIP throttle.
    """

    _FOLLOWER = -1

    #: leader sets per policy per core per this many cache sets.
    LEADER_RATIO = 64

    def __init__(
        self,
        num_cores: int,
        leader_sets: int = None,
        psel_bits: int = 10,
        epsilon_inverse: int = 32,
    ) -> None:
        super().__init__()
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psels: List[int] = [1 << (psel_bits - 1)] * num_cores
        self.epsilon_inverse = epsilon_inverse
        self._fill_count = 0
        # _leader_owner[s] = core owning set s as a leader, or _FOLLOWER.
        # _leader_is_bip[s] = True when set s is a BIP leader.
        self._leader_owner: List[int] = []
        self._leader_is_bip: List[bool] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        num_sets = cache.geometry.num_sets
        self._leader_owner = [self._FOLLOWER] * num_sets
        self._leader_is_bip = [False] * num_sets
        # Each core needs 2 * leader_sets dedicated sets; shrink for tiny caches.
        target = self.leader_sets
        if target is None:
            target = max(1, num_sets // self.LEADER_RATIO)
        per_core = max(1, min(target, num_sets // (2 * self.num_cores)))
        interval = num_sets // (per_core * self.num_cores * 2)
        interval = max(1, interval)
        position = 0
        for constituency in range(per_core):
            for core in range(self.num_cores):
                for is_bip in (False, True):
                    set_index = position % num_sets
                    self._leader_owner[set_index] = core
                    self._leader_is_bip[set_index] = is_bip
                    position += interval

    # ------------------------------------------------------------------
    def _bip_wins(self, core: int) -> bool:
        return self.psels[core] > self.psel_max // 2

    def on_miss(self, set_index: int, access: "CacheAccess") -> None:
        owner = self._leader_owner[set_index]
        if owner == self._FOLLOWER or owner != access.core:
            return
        if self._leader_is_bip[set_index]:
            if self.psels[owner] > 0:
                self.psels[owner] -= 1
        else:
            if self.psels[owner] < self.psel_max:
                self.psels[owner] += 1

    def _bip_insertion(self) -> int:
        self._fill_count += 1
        if self._fill_count % self.epsilon_inverse == 0:
            return 0
        return self.cache.geometry.associativity - 1

    def insertion_position(self, set_index: int, access: "CacheAccess") -> int:
        core = access.core % self.num_cores
        owner = self._leader_owner[set_index]
        if owner == core:
            if self._leader_is_bip[set_index]:
                return self._bip_insertion()
            return 0
        if self._bip_wins(core):
            return self._bip_insertion()
        return 0
