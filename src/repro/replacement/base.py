"""The replacement policy interface.

A policy is bound to exactly one :class:`repro.cache.Cache` and receives a
callback for every event on the access path.  All callbacks except
:meth:`choose_victim` default to no-ops, so simple policies only implement
what they need.

Event order for a miss that fills:

    ``on_miss`` -> ``should_bypass`` (False) -> ``choose_victim`` (only when
    the set is full) -> ``on_evict`` (only when a victim was displaced) ->
    ``on_fill``

Event order for a bypassed miss:

    ``on_miss`` -> ``should_bypass`` (True)
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["ReplacementPolicy"]


class ReplacementPolicy:
    """Base class for all replacement/insertion/bypass policies."""

    #: Shared registry of array replay kernels, keyed by *exact* policy
    #: class (see :meth:`register_array_kernel`).
    _array_kernels: Dict[type, object] = {}

    def __init__(self) -> None:
        self.cache: "Cache" = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, cache: "Cache") -> None:
        """Attach to a cache; allocate per-set state here.

        Subclasses overriding this must call ``super().bind(cache)`` first.
        """
        if self.cache is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to {self.cache.name}; "
                "policies are single-cache objects"
            )
        self.cache = cache

    # ------------------------------------------------------------------
    # array replay kernels (repro.sim.replay_array)
    # ------------------------------------------------------------------
    @classmethod
    def register_array_kernel(cls, kernel: object) -> None:
        """Register a batched array replay kernel for exactly ``cls``.

        The registry is looked up by *exact* type, never by inheritance:
        a kernel hard-codes its policy's insertion/promotion/victim logic
        (that is where its speed comes from), so a subclass overriding
        any hook -- BIP/DIP over LRU, BRRIP/DRRIP over SRRIP -- must not
        silently inherit the parent's kernel.  Subclasses without a
        registration of their own simply take the object-substrate
        fallback path.
        """
        ReplacementPolicy._array_kernels[cls] = kernel

    def array_kernel(self) -> Optional[object]:
        """The array kernel registered for exactly ``type(self)``, or
        ``None`` (the replay engine then falls back to the object
        kernel)."""
        return ReplacementPolicy._array_kernels.get(type(self))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        """The access hit the block in ``(set_index, way)``."""

    def on_miss(self, set_index: int, access: "CacheAccess") -> None:
        """The access missed in ``set_index`` (called before bypass/victim)."""

    def should_bypass(self, set_index: int, access: "CacheAccess") -> bool:
        """Return True to skip placing the missing block.  Default: place."""
        return False

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        """Return the way to evict.  Only called when the set is full."""
        raise NotImplementedError

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        """The missing block was installed at ``(set_index, way)``."""

    def on_evict(self, set_index: int, way: int, access: "CacheAccess") -> None:
        """The occupant of ``(set_index, way)`` is about to be invalidated."""

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> Dict[str, float]:
        """Flat metric dict read by the interval recorder at epoch ends.

        Keys ending in ``_count`` are cumulative counters (reported as
        per-epoch deltas); everything else is a point-in-time gauge.
        Strictly observational -- must not mutate any policy state.  The
        base class has nothing to report.
        """
        return {}

    # ------------------------------------------------------------------
    # paranoid-mode self-checking
    # ------------------------------------------------------------------
    def check_integrity(self, set_index: int) -> None:
        """Validate this policy's internal metadata for one set.

        Called by the cache's paranoid mode (``REPRO_PARANOID``) after
        every access; raise on any inconsistency (e.g. a recency stack
        that is no longer a permutation of the ways).  The base class has
        no per-set state, so the default is a no-op.
        """

    def __repr__(self) -> str:
        return type(self).__name__
