"""Belady's MIN replacement enhanced with optimal bypass.

Section VI-B of the paper: the upper bound ("Optimal") in Figure 4 and
Table III is Belady's MIN [Belady 1966] extended with a bypass rule --
*refuse to place a block when its next access will not occur until after
the next accesses to all blocks currently in the set*.  Like the paper, we
compute it trace-driven over the exact sequence of LLC accesses the
out-of-order model produced, and report it only for miss reduction (not
speedup).

Usage contract: the policy needs the future, so the caller must

1. build the full LLC access stream,
2. call :func:`annotate_next_use` on it,
3. construct :class:`OptimalPolicy` with the result, and
4. replay the stream with ``access.seq`` equal to each access's position.
"""

from __future__ import annotations

from typing import List, Sequence, TYPE_CHECKING

from repro.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess
    from repro.cache.geometry import CacheGeometry

__all__ = ["NEVER", "OptimalPolicy", "annotate_next_use"]

#: Sentinel "never referenced again"; larger than any real stream position.
NEVER = 1 << 62


def annotate_next_use(
    accesses: Sequence["CacheAccess"], geometry: "CacheGeometry"
) -> List[int]:
    """For each access, the stream position of the next access to the same
    block, or :data:`NEVER`.

    A single backward pass; O(n) time, O(working set) space.
    """
    next_use = [NEVER] * len(accesses)
    last_seen = {}
    for position in range(len(accesses) - 1, -1, -1):
        block = geometry.block_address(accesses[position].address)
        previous = last_seen.get(block)
        if previous is not None:
            next_use[position] = previous
        last_seen[block] = position
    return next_use


class OptimalPolicy(ReplacementPolicy):
    """MIN + bypass with perfect future knowledge.

    Args:
        next_use: the per-position next-use array from
            :func:`annotate_next_use`.
        bypass: enable the optimal bypass rule (the paper's configuration).
            With ``bypass=False`` this is plain Belady MIN.
    """

    def __init__(self, next_use: Sequence[int], bypass: bool = True) -> None:
        super().__init__()
        self._next_use = next_use
        self.bypass = bypass
        self._frame_next: List[List[int]] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        self._frame_next = [
            [NEVER] * cache.geometry.associativity
            for _ in range(cache.geometry.num_sets)
        ]

    def _future_of(self, access: "CacheAccess") -> int:
        seq = access.seq
        if not 0 <= seq < len(self._next_use):
            raise IndexError(
                f"access seq {seq} outside the prepared stream of "
                f"{len(self._next_use)} accesses; OptimalPolicy requires "
                "seq to be the stream position"
            )
        return self._next_use[seq]

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._frame_next[set_index][way] = self._future_of(access)

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._frame_next[set_index][way] = self._future_of(access)

    def should_bypass(self, set_index: int, access: "CacheAccess") -> bool:
        if not self.bypass:
            return False
        blocks = self.cache.sets[set_index]
        if any(not block.valid for block in blocks):
            return False  # free frame: placing can never hurt
        incoming = self._future_of(access)
        return all(incoming > resident for resident in self._frame_next[set_index])

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        """Evict the block whose next use is farthest in the future."""
        frame_next = self._frame_next[set_index]
        victim = 0
        farthest = -1
        for way, position in enumerate(frame_next):
            if position > farthest:
                farthest = position
                victim = way
        return victim
