"""Dynamic Insertion Policy (DIP) and its BIP component.

Qureshi et al., ISCA 2007 -- one of the paper's head-to-head baselines
(Figures 4 and 5; paper reports DIP reducing misses 6.1% and speeding up
3.1% on the single-thread suite).

DIP observes that thrashing workloads are better served by inserting new
blocks at the *LRU* position (so they are evicted quickly unless re-used)
while friendly workloads want classic MRU insertion.  It chooses between
the two at runtime with **set dueling**:

* a few *leader sets* always use LRU insertion;
* a few other leader sets always use BIP (bimodal insertion: LRU position,
  except every 1/32nd fill goes to MRU so the working set can rotate);
* a saturating policy-selector counter (PSEL) counts which leader group
  misses more, and all remaining *follower* sets adopt the winner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replacement.lru import LRUPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["BIPPolicy", "DIPPolicy"]


class BIPPolicy(LRUPolicy):
    """Bimodal insertion: new blocks land at LRU, except 1/``epsilon_inverse``
    of fills which land at MRU.

    The throttle is deterministic (a modulo counter), matching the hardware
    proposal, so simulations are reproducible.
    """

    def __init__(self, epsilon_inverse: int = 32) -> None:
        super().__init__()
        if epsilon_inverse < 1:
            raise ValueError(
                f"epsilon_inverse must be >= 1, got {epsilon_inverse}"
            )
        self.epsilon_inverse = epsilon_inverse
        self._fill_count = 0

    def insertion_position(self, set_index: int, access: "CacheAccess") -> int:
        self._fill_count += 1
        if self._fill_count % self.epsilon_inverse == 0:
            return 0  # the rare MRU insertion
        return self.cache.geometry.associativity - 1


class DIPPolicy(LRUPolicy):
    """DIP with set dueling between LRU insertion and BIP insertion.

    Args:
        leader_sets: dedicated sets *per policy*; the DIP paper uses 32 for
            a 2,048-set cache.  ``None`` (the default) scales that ratio to
            the bound cache -- one leader pair per 64 sets -- so scaled-down
            simulation machines keep the paper's dedicated-set fraction.
            Clamped to half the cache's sets for tiny test caches.
        psel_bits: width of the policy selector counter (paper: 10).
        epsilon_inverse: BIP throttle (paper: 1/32).
    """

    # Sentinels for per-set roles.
    _FOLLOWER, _LRU_LEADER, _BIP_LEADER = 0, 1, 2

    #: leader sets per policy per this many cache sets (32 / 2048).
    LEADER_RATIO = 64

    def __init__(
        self,
        leader_sets: int = None,
        psel_bits: int = 10,
        epsilon_inverse: int = 32,
    ) -> None:
        super().__init__()
        if leader_sets is not None and leader_sets < 1:
            raise ValueError(f"need at least one leader set, got {leader_sets}")
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psel = 1 << (psel_bits - 1)  # start at the midpoint
        self.epsilon_inverse = epsilon_inverse
        self._fill_count = 0
        self._set_role = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        leader_sets = self.leader_sets
        if leader_sets is None:
            leader_sets = max(1, cache.geometry.num_sets // self.LEADER_RATIO)
        self._set_role = self._assign_roles(cache.geometry.num_sets, leader_sets)

    @classmethod
    def _assign_roles(cls, num_sets: int, leader_sets: int):
        """Spread leader sets evenly: constituency i dedicates its first set
        to LRU and its middle set to BIP."""
        leader_sets = max(1, min(leader_sets, num_sets // 2))
        roles = [cls._FOLLOWER] * num_sets
        interval = num_sets // leader_sets
        for constituency in range(leader_sets):
            base = constituency * interval
            roles[base] = cls._LRU_LEADER
            roles[base + interval // 2] = cls._BIP_LEADER
        return roles

    # ------------------------------------------------------------------
    # set dueling
    # ------------------------------------------------------------------
    def _bip_wins(self) -> bool:
        """High PSEL means the LRU leaders missed more, so BIP wins."""
        return self.psel > self.psel_max // 2

    def on_miss(self, set_index: int, access: "CacheAccess") -> None:
        role = self._set_role[set_index]
        if role == self._LRU_LEADER:
            if self.psel < self.psel_max:
                self.psel += 1
        elif role == self._BIP_LEADER:
            if self.psel > 0:
                self.psel -= 1

    def _bip_insertion(self) -> int:
        self._fill_count += 1
        if self._fill_count % self.epsilon_inverse == 0:
            return 0
        return self.cache.geometry.associativity - 1

    def insertion_position(self, set_index: int, access: "CacheAccess") -> int:
        role = self._set_role[set_index]
        if role == self._LRU_LEADER:
            return 0
        if role == self._BIP_LEADER:
            return self._bip_insertion()
        if self._bip_wins():
            return self._bip_insertion()
        return 0
