"""SHiP: Signature-based Hit Predictor insertion (follow-on work).

Wu, Jaleel, Hasenplaugh, Martonosi, Steely, Emer -- MICRO 2011.  SHiP is
the most influential direct descendant of the sampling dead block
predictor: it keeps this paper's idea of learning *per-PC-signature* reuse
behaviour from a sampled subset of sets, but applies it to the RRIP
*insertion* decision instead of to replacement/bypass.  Including it here
shows the sampler's lineage and gives the benchmark suite a post-2010
comparison point.

Mechanics (SHiP-PC flavour):

* blocks carry their fill PC's 14-bit signature plus an "outcome" bit
  (was the block re-referenced?) -- tracked only for blocks in *sampled
  sets*, as in the original;
* a Signature History Counter Table (SHCT) of 2-bit saturating counters:
  incremented when a sampled block is re-referenced, decremented when a
  sampled block is evicted without re-reference;
* insertion: a block whose signature's counter is zero (never re-used
  lately) inserts at distant RRPV (evicted quickly); everything else
  inserts at the usual SRRIP "long" position.  Hits promote to RRPV 0.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.replacement.rrip import SRRIPPolicy
from repro.utils.hashing import fold_xor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["SHiPPolicy"]


class SHiPPolicy(SRRIPPolicy):
    """SHiP-PC insertion on an SRRIP-managed cache.

    Args:
        rrpv_bits: RRPV width (2, as in SRRIP).
        signature_bits: PC signature width (paper: 14).
        shct_bits: counter width in the SHCT (paper: 2 or 3).
        sampled_set_ratio: one sampled set per this many cache sets
            (the original uses ~64, matching Khan et al.'s sampler).
    """

    def __init__(
        self,
        rrpv_bits: int = 2,
        signature_bits: int = 14,
        shct_bits: int = 2,
        sampled_set_ratio: int = 64,
    ) -> None:
        super().__init__(rrpv_bits)
        if sampled_set_ratio < 1:
            raise ValueError(
                f"sampled_set_ratio must be >= 1, got {sampled_set_ratio}"
            )
        self.signature_bits = signature_bits
        self.shct_max = (1 << shct_bits) - 1
        self.sampled_set_ratio = sampled_set_ratio
        # SHCT: start counters weakly reusing so cold signatures insert long.
        self.shct: List[int] = [1] * (1 << signature_bits)
        # Per-sampled-frame bookkeeping: signature and outcome bit.
        self._signature: Dict[tuple, int] = {}
        self._reused: Dict[tuple, bool] = {}

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        num_sets = cache.geometry.num_sets
        self._sample_interval = max(1, min(self.sampled_set_ratio, num_sets))

    # ------------------------------------------------------------------
    def _signature_of(self, pc: int) -> int:
        return fold_xor(pc, self.signature_bits)

    def _is_sampled(self, set_index: int) -> bool:
        return set_index % self._sample_interval == 0

    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        super().on_hit(set_index, way, access)
        if not self._is_sampled(set_index):
            return
        frame = (set_index, way)
        if frame in self._signature and not self._reused.get(frame, False):
            self._reused[frame] = True
            signature = self._signature[frame]
            if self.shct[signature] < self.shct_max:
                self.shct[signature] += 1

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        super().on_fill(set_index, way, access)
        if self._is_sampled(set_index):
            frame = (set_index, way)
            self._signature[frame] = self._signature_of(access.pc)
            self._reused[frame] = False

    def on_evict(self, set_index: int, way: int, access: "CacheAccess") -> None:
        super().on_evict(set_index, way, access)
        if not self._is_sampled(set_index):
            return
        frame = (set_index, way)
        signature = self._signature.pop(frame, None)
        reused = self._reused.pop(frame, False)
        if signature is not None and not reused:
            if self.shct[signature] > 0:
                self.shct[signature] -= 1

    def insertion_rrpv(self, set_index: int, access: "CacheAccess") -> int:
        if self.shct[self._signature_of(access.pc)] == 0:
            return self.rrpv_max      # predicted no-reuse: distant
        return self.rrpv_max - 1      # default SRRIP long interval
