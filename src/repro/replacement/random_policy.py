"""Random replacement.

Section V-A of the paper argues that true LRU is "prohibitively expensive"
for a highly associative LLC and shows that the sampling predictor can
rescue a cache whose *default* policy is random: on a miss the DBRB policy
evicts a predicted-dead block if one exists, falling back to a uniformly
random victim otherwise (Figures 7, 8, 10b).

The generator is an explicitly seeded xorshift so runs are reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replacement.base import ReplacementPolicy
from repro.utils.rng import XorShift64

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import CacheAccess

__all__ = ["RandomPolicy"]


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way; no state is kept per block."""

    def __init__(self, seed: int = 0xDEADBEEF) -> None:
        super().__init__()
        self._rng = XorShift64(seed)

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        return self._rng.randrange(self.cache.geometry.associativity)
