"""True least-recently-used replacement.

LRU is the baseline of every figure in the paper and also the policy of the
*sampler* tag array (paper Section III-B: the sampler stays LRU even when
the LLC itself is randomly replaced, because a deterministic policy is
easier to learn from).

The recency state is a per-set list of ways ordered MRU -> LRU.  The class
exposes the insertion position so that DIP/TADIP (which are "LRU with a
different insertion point") can subclass it.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Classic LRU: hits and fills promote to MRU; the LRU way is evicted."""

    def __init__(self) -> None:
        super().__init__()
        self._stacks: List[List[int]] = []

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        associativity = cache.geometry.associativity
        self._stacks = [
            list(range(associativity)) for _ in range(cache.geometry.num_sets)
        ]

    # ------------------------------------------------------------------
    # recency maintenance
    # ------------------------------------------------------------------
    def _promote(self, set_index: int, way: int, position: int) -> None:
        """Move ``way`` to ``position`` in the recency stack (0 = MRU)."""
        stack = self._stacks[set_index]
        # Re-touching the block already at the target position (the common
        # case on hit-heavy streams) is the identity move.
        if stack[position] == way:
            return
        stack.remove(way)
        stack.insert(position, way)

    def recency_order(self, set_index: int) -> List[int]:
        """Ways of ``set_index`` ordered MRU first.  (Read-only copy.)"""
        return list(self._stacks[set_index])

    def stack_position(self, set_index: int, way: int) -> int:
        """Recency position of ``way`` (0 = MRU, assoc-1 = LRU)."""
        return self._stacks[set_index].index(way)

    def check_integrity(self, set_index: int) -> None:
        """Paranoid-mode hook: the recency stack must remain a
        permutation of the ways (no way lost, duplicated, or invented)."""
        stack = self._stacks[set_index]
        associativity = self.cache.geometry.associativity
        if sorted(stack) != list(range(associativity)):
            from repro.cache.cache import ParanoidViolation

            raise ParanoidViolation(
                f"{type(self).__name__}: set {set_index} recency stack "
                f"{stack} is not a permutation of 0..{associativity - 1}"
            )

    # ------------------------------------------------------------------
    # insertion points, overridable by DIP-family subclasses
    # ------------------------------------------------------------------
    def insertion_position(self, set_index: int, access: "CacheAccess") -> int:
        """Recency position for a newly filled block.  LRU inserts at MRU."""
        return 0

    def promotion_position(self, set_index: int, access: "CacheAccess") -> int:
        """Recency position for a block that just hit.  LRU promotes to MRU."""
        return 0

    # ------------------------------------------------------------------
    # policy events
    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._promote(set_index, way, self.promotion_position(set_index, access))

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        return self._stacks[set_index][-1]

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self._promote(set_index, way, self.insertion_position(set_index, access))
