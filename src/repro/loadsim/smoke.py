"""Smoke gate for the load simulator (``make loadsim-smoke``).

A tiny two-tenant scenario -- skewed Zipf traffic under Poisson
arrivals next to a bursty tenant under MMPP bursts -- run under DBRB
(sampler) and LRU.  The gate asserts the loadsim promises end-to-end:

1. **Determinism**: re-running a (scenario, technique) pair yields a
   byte-identical event-log digest and latency series.
2. **Technique-independent traffic**: both techniques see the same
   arrivals (same arrived counts per tenant) -- latency deltas are
   attributable to the replacement policy, not to divergent load.
3. **Non-degenerate latency distribution**: requests completed,
   p50 <= p95 <= p99, all positive, and the LLC actually saw traffic.

Sits under a hard ``SIGALRM`` deadline so a wedged event loop fails
``make check`` loudly instead of hanging it.

Exit status: 0 on success, 1 on any violated promise.
"""

from __future__ import annotations

import signal
import sys

from repro.harness.runner import ExperimentConfig, WorkloadCache
from repro.loadsim.sim import LoadScenario, prepare_scenario
from repro.loadsim.tenants import TenantSpec

HARD_DEADLINE_SECONDS = 120.0
CONFIG = ExperimentConfig(scale=32, instructions=20_000, seed=1, num_cores=2)
TENANTS = (
    TenantSpec(workload="zipf(a=1.2)", arrival="poisson(rate=2)"),
    TenantSpec(workload="bursty", arrival="bursty(rate=1,burst=6)"),
)
SCENARIO = LoadScenario(tenants=TENANTS, duration=40_000.0, seed=7, epochs=8)


def _fail(message: str) -> int:
    print(f"loadsim-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    if hasattr(signal, "SIGALRM"):
        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"loadsim-smoke exceeded its {HARD_DEADLINE_SECONDS}s deadline"
            )

        signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, HARD_DEADLINE_SECONDS)

    prepared = prepare_scenario(WorkloadCache(CONFIG), SCENARIO)
    results = {}
    for technique in ("sampler", "lru"):
        first = prepared.run(technique)
        second = prepared.run(technique)
        if first.event_log_digest() != second.event_log_digest():
            return _fail(f"{technique}: event log not deterministic across runs")
        if first.latency_series != second.latency_series:
            return _fail(f"{technique}: latency series not deterministic")
        results[technique] = first

    sampler, lru = results["sampler"], results["lru"]
    arrivals = [
        (t.arrived, t.workload) for t in sampler.tenants
    ]
    if arrivals != [(t.arrived, t.workload) for t in lru.tenants]:
        return _fail(
            "techniques saw different arrival streams: "
            f"sampler={arrivals} lru={[t.arrived for t in lru.tenants]}"
        )
    for technique, result in results.items():
        completed = sum(t.completed for t in result.tenants)
        if completed == 0:
            return _fail(f"{technique}: no requests completed")
        if result.llc_stats.accesses == 0:
            return _fail(f"{technique}: the shared LLC saw no traffic")
        p50, p95, p99 = result.p50, result.p95, result.p99
        if not (0 < p50 <= p95 <= p99):
            return _fail(
                f"{technique}: degenerate percentiles "
                f"p50={p50} p95={p95} p99={p99}"
            )
        if not result.recorder.samples:
            return _fail(f"{technique}: no telemetry epochs recorded")

    print(
        "loadsim-smoke: OK -- 2-tenant scenario deterministic "
        f"(digest {sampler.event_log_digest()[:12]}), identical arrivals "
        "across techniques, sampler p99 "
        f"{sampler.p99:.0f}cy vs lru p99 {lru.p99:.0f}cy, fairness "
        f"{sampler.fairness:.3f}/{lru.fairness:.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
