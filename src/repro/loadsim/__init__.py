"""Service-level load simulation over the shared-LLC model.

The paper evaluates dead-block replacement-and-bypass by MPKI and
weighted speedup on fixed multiprogrammed mixes; this subsystem drives
the same shared LLC with *open-loop tenant traffic* (Poisson and MMPP
bursts over the suite's workload specs) through a deterministic
discrete-event engine, and reports what a service operator would ask
for: p50/p95/p99 request latency, per-tenant MPKI, throughput, and
Jain fairness -- with every run a pure function of
``(tenants, arrivals, seed, technique)``.

See ``docs/loadsim.md`` for the model and CLI walkthrough.
"""

from repro.loadsim.arrivals import (
    ArrivalProcess,
    ArrivalSpecError,
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
    parse_arrival_spec,
)
from repro.loadsim.engine import EventLoop
from repro.loadsim.sim import (
    DEFAULT_ARRIVAL,
    DEFAULT_TENANT_WORKLOADS,
    LoadScenario,
    LoadSimResult,
    PreparedScenario,
    TenantReport,
    prepare_scenario,
    resolve_tenant_specs,
    write_csv,
    write_ndjson,
)
from repro.loadsim.tenants import (
    DEFAULT_OPS,
    TENANT_ADDRESS_SHIFT,
    PreparedTenant,
    TenantSpec,
    split_specs,
)

__all__ = [
    "ArrivalProcess",
    "ArrivalSpecError",
    "BurstyArrivals",
    "DEFAULT_ARRIVAL",
    "DEFAULT_OPS",
    "DEFAULT_TENANT_WORKLOADS",
    "EventLoop",
    "LoadScenario",
    "LoadSimResult",
    "PoissonArrivals",
    "PreparedScenario",
    "PreparedTenant",
    "TENANT_ADDRESS_SHIFT",
    "TenantReport",
    "TenantSpec",
    "UniformArrivals",
    "parse_arrival_spec",
    "prepare_scenario",
    "resolve_tenant_specs",
    "split_specs",
    "write_csv",
    "write_ndjson",
]
