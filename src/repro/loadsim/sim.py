"""The service-level load simulator: a shared LLC under live traffic.

The paper evaluates dead-block replacement-and-bypass on fixed quad-core
mixes by weighted speedup; this subsystem asks the production-shaped
question instead -- *what request latency does a multi-tenant service
deliver* with DBRB on vs off, under contention, bursts, and skew at
load.

Model
-----

N tenants issue requests open-loop (arrival processes from
:mod:`repro.loadsim.arrivals`).  A request is ``ops`` consecutive memory
references of the tenant's workload (:mod:`repro.loadsim.tenants`);
its latency decomposes as

    ``latency = private + wait + service``

where *private* is the resolved L1/L2 cycles of the request's filtered
references (fixed per request, precomputed), *service* is the sum of
LLC-hit / DRAM latencies of its LLC-bound references -- resolved live
against the shared LLC built with the technique under test -- and *wait*
is the queueing delay at the shared LLC/memory station, modeled as a
single FIFO server (busy from a request's service start to its end, in
global arrival order).

Determinism: the event engine breaks ties by scheduling order, every
tenant owns a seeded RNG, and arrivals are open-loop, so the LLC access
interleaving is a pure function of ``(tenants, arrival specs, seed)``
and **identical across techniques** -- the same contention pattern hits
LRU and DBRB, which makes latency deltas attributable to the policy.
Completion times feed back into nothing.

Metrics: p50/p95/p99 request latency (nearest-rank,
:func:`repro.sim.metrics.percentiles`), per-tenant MPKI, throughput in
the arrival window, Jain's fairness index over per-tenant mean latency,
and a per-epoch interval series recorded through the standard telemetry
:class:`~repro.telemetry.probe.IntervalRecorder` convention (epoch
boundaries are simulated-time slices of the arrival window).
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import Cache
from repro.cache.stats import CacheStats
from repro.harness.techniques import resolve_technique
from repro.loadsim.arrivals import parse_arrival_spec
from repro.loadsim.engine import EventLoop
from repro.loadsim.tenants import (
    DEFAULT_OPS,
    TENANT_ADDRESS_SHIFT,
    PreparedTenant,
    TenantSpec,
    split_specs,
)
from repro.sim.metrics import jain_fairness_index, percentiles
from repro.telemetry.probe import IntervalRecorder

__all__ = [
    "DEFAULT_ARRIVAL",
    "DEFAULT_TENANT_WORKLOADS",
    "LoadScenario",
    "LoadSimResult",
    "PreparedScenario",
    "TenantReport",
    "prepare_scenario",
    "resolve_tenant_specs",
    "write_csv",
    "write_ndjson",
]

#: Default arrival process for tenants that do not name one.  The rate
#: sits just under one-server saturation for typical suite workloads
#: (~20 LLC references per request at ~190 cycles each), so default
#: runs exercise queueing without running away.
DEFAULT_ARRIVAL = "poisson(rate=0.05)"

#: Workload rotation used when ``--tenants`` is a plain count: skewed,
#: bursty, hot-spotted, and streaming traffic -- the distribution shapes
#: the variability-aware reuse literature flags as predictor-hostile.
DEFAULT_TENANT_WORKLOADS = (
    "zipf(a=1.2)",
    "bursty",
    "hotspot",
    "seq",
)

#: Latency percentile points reported everywhere.
LATENCY_POINTS = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class LoadScenario:
    """One load-simulation scenario (technique-independent)."""

    tenants: Tuple[TenantSpec, ...]
    duration: float = 200_000.0
    seed: int = 1
    ops: int = DEFAULT_OPS
    epochs: int = 16

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a load scenario needs at least one tenant")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")

    def describe(self) -> str:
        parts = ", ".join(t.describe() for t in self.tenants)
        return (
            f"{len(self.tenants)} tenants [{parts}], "
            f"{self.duration:.0f} cycles, seed {self.seed}, "
            f"{self.ops} refs/request"
        )


def resolve_tenant_specs(
    tenants: str, arrival: Optional[str] = None
) -> Tuple[TenantSpec, ...]:
    """Tenant specs from CLI-style arguments.

    ``tenants`` is either a plain count (rotate through
    :data:`DEFAULT_TENANT_WORKLOADS`) or a top-level-comma-separated
    list of workload specs.  ``arrival`` is one arrival spec for all
    tenants or a matching comma-separated list.
    """
    text = (tenants or "").strip()
    if text.isdigit():
        count = int(text)
        if count < 1:
            raise ValueError("tenant count must be >= 1")
        workloads = [
            DEFAULT_TENANT_WORKLOADS[i % len(DEFAULT_TENANT_WORKLOADS)]
            for i in range(count)
        ]
    else:
        workloads = split_specs(text)
        if not workloads:
            raise ValueError(f"no tenant workloads in {tenants!r}")
    arrivals = split_specs(arrival) if arrival else [DEFAULT_ARRIVAL]
    if len(arrivals) == 1:
        arrivals = arrivals * len(workloads)
    if len(arrivals) != len(workloads):
        raise ValueError(
            f"{len(arrivals)} arrival specs for {len(workloads)} tenants "
            "(pass one spec, or one per tenant)"
        )
    # Validate and canonicalize the arrival specs up front so a typo
    # fails here, with the spec named, not deep inside a prepared run.
    return tuple(
        TenantSpec(workload=w, arrival=parse_arrival_spec(a).spec)
        for w, a in zip(workloads, arrivals)
    )


@dataclass
class TenantReport:
    """Per-tenant outcome of one simulated run."""

    workload: str
    arrival: str
    arrived: int
    completed: int
    completed_in_window: int
    instructions: int
    llc_accesses: int
    llc_misses: int
    mpki: float
    mean_latency: float
    p99_latency: float
    throughput: float  # completions inside the window, per kilocycle

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class LoadSimResult:
    """Outcome of one (scenario, technique) load-simulation run."""

    technique: str
    scenario: str
    tenants: Tuple[TenantReport, ...]
    duration: float
    seed: int
    latency_series: List[float]          # completion order
    latency_percentiles: Dict[float, float]
    mean_latency: float
    throughput: float                    # completions in window / kilocycle
    fairness: float                      # Jain over per-tenant mean latency
    llc_stats: CacheStats
    recorder: IntervalRecorder
    events: List[Tuple] = field(default_factory=list, repr=False)

    @property
    def p50(self) -> float:
        return self.latency_percentiles[50.0]

    @property
    def p95(self) -> float:
        return self.latency_percentiles[95.0]

    @property
    def p99(self) -> float:
        return self.latency_percentiles[99.0]

    def event_log_digest(self) -> str:
        """Content digest of the processed event log.

        Every event renders its time and payload through ``repr``, so
        two runs agree on the digest iff they agree bit-for-bit on every
        simulated event -- the determinism contract the tests pin.
        """
        blob = "\n".join(
            " ".join(repr(part) for part in event) for event in self.events
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the NDJSON header row)."""
        return {
            "kind": "loadsim",
            "technique": self.technique,
            "scenario": self.scenario,
            "duration": self.duration,
            "seed": self.seed,
            "requests_arrived": sum(t.arrived for t in self.tenants),
            "requests_completed": sum(t.completed for t in self.tenants),
            "latency_p50": self.p50,
            "latency_p95": self.p95,
            "latency_p99": self.p99,
            "latency_mean": self.mean_latency,
            "throughput_per_kcycle": self.throughput,
            "fairness": self.fairness,
            "llc_miss_rate": self.llc_stats.miss_rate,
            "llc_bypasses": self.llc_stats.bypasses,
            "event_log_digest": self.event_log_digest(),
        }


class PreparedScenario:
    """A scenario with its tenants prepared against one machine.

    Preparation (trace generation, L1/L2 filtering, request tables,
    relocated LLC streams) is paid once; :meth:`run` replays the same
    scenario under any technique.
    """

    def __init__(self, scenario: LoadScenario, machine, tenants: List[PreparedTenant],
                 geometry) -> None:
        self.scenario = scenario
        self.machine = machine
        self.tenants = tenants
        self.geometry = geometry

    # ------------------------------------------------------------------
    def run(self, technique_key: str = "sampler",
            record_events: bool = True) -> LoadSimResult:
        """Simulate the scenario under one LLC technique."""
        technique = resolve_technique(technique_key)
        if technique_key == "optimal":
            raise ValueError(
                "the optimal policy needs the full future access stream; "
                "a live load simulation cannot provide one"
            )
        scenario = self.scenario
        for tenant in self.tenants:
            tenant.reset(scenario.seed)
        policy = technique.build(self.geometry, (), num_cores=len(self.tenants))
        cache = Cache(self.geometry, policy, name="loadsim-LLC")
        recorder = IntervalRecorder(epochs=scenario.epochs)
        recorder.set_context(
            workload="+".join(t.spec.workload for t in self.tenants),
            technique=technique_key,
            tenants=len(self.tenants),
            duration=scenario.duration,
            seed=scenario.seed,
        )
        recorder.begin_run(cache, 0)

        loop = EventLoop()
        duration = scenario.duration
        llc_latency = self.machine.llc_latency
        memory_latency = self.machine.memory_latency
        events: List[Tuple] = []
        latency_series: List[float] = []
        state = {"station_free": 0.0, "access_seq": 0, "llc_count": 0,
                 "completed_in_window": 0}

        def complete(time: float, tenant: PreparedTenant, req_id: int,
                     latency: float) -> None:
            tenant.completed += 1
            tenant.latencies.append(latency)
            latency_series.append(latency)
            if time <= duration:
                tenant.completed_in_window += 1
                state["completed_in_window"] += 1
            if record_events:
                events.append(("fin", time, tenant.index, req_id, latency))

        def arrive(time: float, tenant: PreparedTenant) -> None:
            if time >= duration:
                return
            req_id, instructions, private, llc_lo, llc_hi = tenant.next_request()
            tenant.arrived += 1
            tenant.instructions += instructions
            if record_events:
                events.append(("arr", time, tenant.index, req_id))
            service = 0.0
            accesses = tenant.stream.accesses
            for position in range(llc_lo, llc_hi):
                access = accesses[position]
                access.seq = state["access_seq"]
                state["access_seq"] += 1
                state["llc_count"] += 1
                tenant.llc_accesses += 1
                if cache.access(access):
                    service += llc_latency
                else:
                    service += memory_latency
                    tenant.llc_misses += 1
            if llc_hi > llc_lo:
                start = max(time + private, state["station_free"])
                completion = start + service
                state["station_free"] = completion
            else:
                completion = time + private
            latency = completion - time
            loop.schedule_at(
                completion,
                lambda now, t=tenant, r=req_id, lat=latency: complete(now, t, r, lat),
            )
            gap = tenant.next_gap()
            if time + gap < duration:
                loop.schedule_at(
                    time + gap, lambda now, t=tenant: arrive(now, t)
                )

        # Epoch boundaries slice the arrival window by simulated time;
        # they are scheduled up-front so their tie-breaking order never
        # depends on the traffic.
        epoch_length = duration / scenario.epochs
        for boundary in range(1, scenario.epochs + 1):
            loop.schedule_at(
                boundary * epoch_length,
                lambda now: recorder.on_epoch(cache, state["llc_count"]),
            )
        for tenant in self.tenants:
            first = tenant.next_gap()
            if first < duration:
                loop.schedule_at(first, lambda now, t=tenant: arrive(now, t))
        loop.run()
        recorder.end_run(cache, state["llc_count"])

        if latency_series:
            latency_percentiles = percentiles(latency_series, LATENCY_POINTS)
            mean_latency = sum(latency_series) / len(latency_series)
        else:
            latency_percentiles = {point: 0.0 for point in LATENCY_POINTS}
            mean_latency = 0.0
        active = [t.mean_latency for t in self.tenants if t.completed]
        fairness = jain_fairness_index(active) if active else 1.0
        reports = tuple(
            TenantReport(
                workload=t.spec.workload,
                arrival=t.arrival.spec,
                arrived=t.arrived,
                completed=t.completed,
                completed_in_window=t.completed_in_window,
                instructions=t.instructions,
                llc_accesses=t.llc_accesses,
                llc_misses=t.llc_misses,
                mpki=t.mpki,
                mean_latency=t.mean_latency,
                p99_latency=(
                    percentiles(t.latencies, (99.0,))[99.0] if t.latencies else 0.0
                ),
                throughput=t.completed_in_window / (duration / 1000.0),
            )
            for t in self.tenants
        )
        return LoadSimResult(
            technique=technique_key,
            scenario=scenario.describe(),
            tenants=reports,
            duration=duration,
            seed=scenario.seed,
            latency_series=latency_series,
            latency_percentiles=latency_percentiles,
            mean_latency=mean_latency,
            throughput=state["completed_in_window"] / (duration / 1000.0),
            fairness=fairness,
            llc_stats=cache.stats,
            recorder=recorder,
            events=events,
        )


def prepare_scenario(workload_cache, scenario: LoadScenario) -> PreparedScenario:
    """Prepare every tenant of a scenario against the cache's machine.

    ``workload_cache`` is the standard
    :class:`~repro.harness.runner.WorkloadCache`, so trace generation and
    L1/L2 filtering are shared with every other experiment (and with the
    compiled stream store when one is attached).  The shared LLC is
    sized like the multicore model's: per-core capacity times the tenant
    count.
    """
    machine = workload_cache.machine
    geometry = machine.shared_llc(len(scenario.tenants))
    tenants: List[PreparedTenant] = []
    for index, spec in enumerate(scenario.tenants):
        filtered = workload_cache.filtered(spec.workload)
        stream = filtered.llc_stream(
            geometry,
            address_offset=index << TENANT_ADDRESS_SHIFT,
            core=index,
        )
        tenants.append(
            PreparedTenant(
                index=index,
                spec=spec,
                filtered=filtered,
                stream=stream,
                l1_latency=machine.l1_latency,
                l2_latency=machine.l2_latency,
                ops=scenario.ops,
            )
        )
    return PreparedScenario(scenario, machine, tenants, geometry)


# ----------------------------------------------------------------------
# exporters (NDJSON / CSV, mirroring the telemetry exporters' shape)
# ----------------------------------------------------------------------
def write_ndjson(result: LoadSimResult, path_or_file) -> None:
    """Dump a run as NDJSON: summary header, tenant rows, epoch rows."""

    def _write(handle) -> None:
        handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        for report in result.tenants:
            row = {"kind": "tenant"}
            row.update(report.to_dict())
            handle.write(json.dumps(row, sort_keys=True) + "\n")
        for sample in result.recorder.samples:
            row = {"kind": "epoch"}
            row.update(sample.to_dict())
            handle.write(json.dumps(row, sort_keys=True) + "\n")

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _write(handle)


def write_csv(result: LoadSimResult, path_or_file) -> None:
    """Dump the per-tenant table as CSV."""
    fields = [
        "workload", "arrival", "arrived", "completed", "completed_in_window",
        "instructions", "llc_accesses", "llc_misses", "mpki",
        "mean_latency", "p99_latency", "throughput",
    ]

    def _write(handle) -> None:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for report in result.tenants:
            writer.writerow(report.to_dict())

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8", newline="") as handle:
            _write(handle)
