"""Tenants: workload-derived request generators for the load simulator.

A tenant couples one *workload spec* -- any name the suite resolves:
suite benchmarks (``mcf``), parameterized patterns (``zipf(a=1.2)``),
imported traces (``trace(name)``) -- with one *arrival spec*
(:mod:`repro.loadsim.arrivals`).  Every existing workload is therefore a
valid tenant profile with zero special-casing, the same contract the
sweep harness and service already rely on.

The memory behaviour comes straight from the reproduction's pipeline:
the tenant's trace is filtered through private L1/L2 once
(:class:`~repro.sim.hierarchy.FilteredTrace`, shared with every other
experiment via the :class:`~repro.harness.runner.WorkloadCache` memo),
and its record stream is chopped into fixed-size *requests* of ``ops``
consecutive memory references.  Per request everything that does not
depend on the shared LLC is precomputed: the instruction count, the
resolved L1/L2 cycles, and the span of LLC-bound accesses in the
tenant's prepared stream (relocated into a disjoint address range per
tenant, as the multicore model does).  Requests are consumed cyclically,
so an open-loop arrival stream never exhausts its tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.loadsim.arrivals import ArrivalProcess, parse_arrival_spec
from repro.sim.hierarchy import L1_HIT, L2_HIT, FilteredTrace, PreparedStream
from repro.utils.rng import XorShift64

__all__ = ["PreparedTenant", "TenantSpec", "split_specs"]

#: Address bits keeping per-tenant address spaces disjoint in the shared
#: LLC (tenants are multiprogrammed, not shared-memory) -- the same
#: relocation the multicore model applies per core.
TENANT_ADDRESS_SHIFT = 44

#: Default memory references per request.
DEFAULT_OPS = 32


def split_specs(text: str) -> List[str]:
    """Split a comma-separated spec list at *top-level* commas only.

    Workload and arrival specs carry commas inside parentheses
    (``zipf(a=1.2,seed=7)``), so a naive ``split(',')`` would shred
    them.
    """
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            part = "".join(current).strip()
            if part:
                parts.append(part)
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a scenario: a workload under an arrival process."""

    workload: str
    arrival: str

    def describe(self) -> str:
        return f"{self.workload} @ {self.arrival}"


class PreparedTenant:
    """A tenant's precomputed request table plus its live run state.

    The request table (instructions / private cycles / LLC span per
    request) is a pure function of the filtered trace and ``ops``; the
    run state (RNG, cyclic request cursor, per-tenant counters) is reset
    per simulation via :meth:`reset` so one prepared tenant serves every
    technique of a comparison identically.
    """

    def __init__(
        self,
        index: int,
        spec: TenantSpec,
        filtered: FilteredTrace,
        stream: PreparedStream,
        l1_latency: int,
        l2_latency: int,
        ops: int = DEFAULT_OPS,
    ) -> None:
        if ops < 1:
            raise ValueError(f"ops per request must be positive, got {ops}")
        self.index = index
        self.spec = spec
        self.arrival: ArrivalProcess = parse_arrival_spec(spec.arrival)
        self.stream = stream
        self.ops = ops
        self.requests: List[Tuple[int, float, int, int]] = []  # (instr, private, llc_lo, llc_hi)
        self._build_table(filtered, l1_latency, l2_latency)
        # ---- per-run state (reset() before every simulation) ----
        self.rng = XorShift64()
        self.cursor = 0
        self.arrived = 0
        self.completed = 0
        self.completed_in_window = 0
        self.instructions = 0
        self.llc_accesses = 0
        self.llc_misses = 0
        self.latencies: List[float] = []

    # ------------------------------------------------------------------
    def _build_table(self, filtered: FilteredTrace,
                     l1_latency: int, l2_latency: int) -> None:
        records = filtered.trace.records
        levels = filtered.levels
        ops = self.ops
        llc_cursor = 0
        for start in range(0, len(records), ops):
            stop = min(start + ops, len(records))
            instructions = 0
            private = 0.0
            llc_lo = llc_cursor
            for position in range(start, stop):
                instructions += records[position].gap + 1
                level = levels[position]
                if level == L1_HIT:
                    private += l1_latency
                elif level == L2_HIT:
                    private += l2_latency
                else:
                    llc_cursor += 1
            self.requests.append((instructions, private, llc_lo, llc_cursor))
        if not self.requests:
            raise ValueError(
                f"tenant workload {self.spec.workload!r} produced an empty trace"
            )

    # ------------------------------------------------------------------
    def reset(self, seed: int) -> None:
        """Rewind the tenant for a fresh simulation run.

        The RNG seed folds the scenario seed with the tenant index, so
        tenants draw independent arrival streams while the whole
        scenario stays a pure function of one seed.  The arrival process
        is re-parsed so stateful processes (MMPP burst state) restart
        cold.
        """
        self.rng = XorShift64((seed << 8) ^ (self.index + 1) ^ 0x5DEECE66D)
        self.arrival = parse_arrival_spec(self.spec.arrival)
        self.cursor = 0
        self.arrived = 0
        self.completed = 0
        self.completed_in_window = 0
        self.instructions = 0
        self.llc_accesses = 0
        self.llc_misses = 0
        self.latencies = []

    def next_request(self) -> Tuple[int, int, float, int, int]:
        """The next request (cyclic): ``(req_id, instr, private, lo, hi)``."""
        req_id = self.cursor
        table = self.requests
        entry = table[req_id % len(table)]
        self.cursor = req_id + 1
        return (req_id,) + entry

    def next_gap(self) -> float:
        return self.arrival.next_gap(self.rng)

    # ------------------------------------------------------------------
    @property
    def mpki(self) -> float:
        """Shared-LLC misses per kilo-instruction of *arrived* work."""
        if not self.instructions:
            return 0.0
        return self.llc_misses * 1000.0 / self.instructions

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)
