"""Deterministic discrete-event engine for the service-level simulator.

A minimal calendar-queue event loop: events are ``(time, seq, action)``
entries in a :mod:`heapq` heap, popped in ``(time, seq)`` order.  The
``seq`` counter breaks same-cycle ties by *scheduling order*, which makes
the processing order a pure function of the schedule -- no wall clock,
no iteration-order hazards, no global RNG.  Everything downstream
(arrival draws, cache evolution, latency series) inherits that
determinism, which the loadsim reproducibility tests pin byte-for-byte.

Time is measured in simulated CPU cycles (floats: exponential
inter-arrival draws are real-valued).  The engine knows nothing about
caches or tenants; :mod:`repro.loadsim.sim` composes it with the shared
LLC model.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

__all__ = ["EventLoop"]

#: An event action; receives the firing time.
Action = Callable[[float], None]


class EventLoop:
    """A heapq calendar queue with deterministic tie-breaking."""

    __slots__ = ("_heap", "_seq", "now", "processed")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Action]] = []
        self._seq = 0
        #: Current simulated time (cycles); updated as events fire.
        self.now = 0.0
        #: Number of events processed (the bench's throughput unit).
        self.processed = 0

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` at absolute simulated ``time``.

        Scheduling in the past (before the event being processed) is a
        simulator bug, never a property of the scenario.
        """
        if time < self.now:
            raise ValueError(
                f"event scheduled at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, action))
        self._seq += 1

    def schedule_after(self, delay: float, action: Action) -> None:
        """Schedule ``action`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative event delay {delay}")
        self.schedule_at(self.now + delay, action)

    def __len__(self) -> int:
        return len(self._heap)

    def run(self) -> int:
        """Process events until the calendar is empty.

        Returns the number of events processed.  Termination is the
        scenario's responsibility: arrival processes must stop
        rescheduling themselves past the horizon (open-loop sources
        drain; nothing in the engine runs forever on its own).
        """
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            time, _, action = pop(heap)
            self.now = time
            action(time)
            processed += 1
        self.processed += processed
        return processed
