"""Open-loop arrival processes for simulated tenants.

Three families, each a deterministic function of its own
:class:`~repro.utils.rng.XorShift64` stream (seeded per tenant by the
simulator, never from a global source):

* ``poisson(rate=R)`` -- memoryless arrivals; exponential inter-arrival
  gaps with mean ``1000 / R`` cycles (``rate`` is in requests per
  kilocycle, the natural unit at LLC latencies).
* ``bursty(rate=R, burst=B, on=ON, off=OFF)`` -- a two-state Markov
  modulated Poisson process (MMPP-2): the process alternates between a
  *base* state emitting at ``R`` and a *burst* state emitting at
  ``R * B``; state holding times are exponential with means ``OFF`` and
  ``ON`` cycles.  This is the classic open-systems burst model -- the
  long-run average rate stays moderate while short windows overload the
  shared LLC, which is exactly the regime where dead-block bypass must
  not fall apart.
* ``uniform(rate=R)`` -- a deterministic metronome (constant gap
  ``1000 / R``); draws nothing from the RNG.  Golden tests use it to pin
  percentile values without any sampling noise.

Specs follow the workload-pattern grammar (``family(key=value,...)``);
:func:`parse_arrival_spec` returns the process *factory* plus the
canonical spec string with every parameter explicit, so two textual
variants of one process share an identity in logs and digests.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, Tuple

from repro.utils.rng import XorShift64

__all__ = [
    "ArrivalProcess",
    "ArrivalSpecError",
    "BurstyArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "parse_arrival_spec",
]


class ArrivalSpecError(ValueError):
    """A malformed or unknown arrival spec."""


class ArrivalProcess:
    """Base class: a stream of inter-arrival gaps in cycles."""

    #: Canonical spec, filled by :func:`parse_arrival_spec`.
    spec = ""

    def next_gap(self, rng: XorShift64) -> float:
        raise NotImplementedError


def _exponential(rng: XorShift64, mean: float) -> float:
    """An exponential draw with the given mean, strictly positive."""
    # 1 - random() is in (0, 1], so the log argument never hits zero.
    return -mean * math.log(1.0 - rng.random())


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` requests per kilocycle."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ArrivalSpecError(f"poisson rate must be positive, got {rate}")
        self.rate = rate
        self.mean_gap = 1000.0 / rate

    def next_gap(self, rng: XorShift64) -> float:
        return _exponential(rng, self.mean_gap)


class UniformArrivals(ArrivalProcess):
    """A metronome: constant gap, no randomness."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ArrivalSpecError(f"uniform rate must be positive, got {rate}")
        self.rate = rate
        self.gap = 1000.0 / rate

    def next_gap(self, rng: XorShift64) -> float:
        return self.gap


class BurstyArrivals(ArrivalProcess):
    """MMPP-2: Poisson at ``rate``, bursts at ``rate * burst``.

    State holding times are exponential (mean ``off`` cycles in the base
    state, ``on`` cycles in the burst state).  The state machine advances
    lazily as gaps are drawn, consuming RNG values in a fixed order, so
    the whole arrival sequence is a pure function of the tenant seed.
    """

    def __init__(self, rate: float, burst: float = 8.0,
                 on: float = 2000.0, off: float = 8000.0) -> None:
        if rate <= 0:
            raise ArrivalSpecError(f"bursty rate must be positive, got {rate}")
        if burst < 1:
            raise ArrivalSpecError(f"burst multiplier must be >= 1, got {burst}")
        if on <= 0 or off <= 0:
            raise ArrivalSpecError(
                f"burst durations must be positive, got on={on} off={off}"
            )
        self.rate = rate
        self.burst = burst
        self.on = on
        self.off = off
        self._bursting = False
        self._state_left = 0.0  # remaining cycles in the current state
        self._primed = False

    def next_gap(self, rng: XorShift64) -> float:
        if not self._primed:
            self._state_left = _exponential(rng, self.off)
            self._primed = True
        gap = 0.0
        while True:
            rate = self.rate * (self.burst if self._bursting else 1.0)
            draw = _exponential(rng, 1000.0 / rate)
            if draw <= self._state_left:
                self._state_left -= draw
                return gap + draw
            # The state expires before the next arrival: advance time to
            # the state boundary and redraw in the new state.
            gap += self._state_left
            self._bursting = not self._bursting
            self._state_left = _exponential(
                rng, self.on if self._bursting else self.off
            )


#: family -> ((param, default) ..., factory).  Declaration order is the
#: canonical parameter order.
_FAMILIES: Dict[str, Tuple[Tuple[Tuple[str, float], ...], Callable]] = {
    "poisson": ((("rate", 2.0),), PoissonArrivals),
    "uniform": ((("rate", 2.0),), UniformArrivals),
    "bursty": (
        (("rate", 2.0), ("burst", 8.0), ("on", 2000.0), ("off", 8000.0)),
        BurstyArrivals,
    ),
}

_SPEC_RE = re.compile(r"^\s*([a-z]+)\s*(?:\(\s*(.*?)\s*\))?\s*$")


def _format_value(value: float) -> str:
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def parse_arrival_spec(spec: str) -> ArrivalProcess:
    """Build an arrival process from a spec string.

    Returns the process with its ``spec`` attribute set to the canonical
    form (family defaults filled, declaration order), which is what the
    simulator records in results and event-log digests.
    """
    match = _SPEC_RE.match(spec or "")
    if match is None:
        raise ArrivalSpecError(f"malformed arrival spec {spec!r}")
    family, raw_args = match.group(1), match.group(2)
    entry = _FAMILIES.get(family)
    if entry is None:
        raise ArrivalSpecError(
            f"unknown arrival family {family!r} "
            f"(known: {', '.join(sorted(_FAMILIES))})"
        )
    params, factory = entry
    values = {name: default for name, default in params}
    if raw_args:
        for part in raw_args.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, raw = part.partition("=")
            key = key.strip()
            if not eq or key not in values:
                raise ArrivalSpecError(
                    f"arrival spec {spec!r}: unknown parameter {part!r} "
                    f"(valid for {family}: "
                    f"{', '.join(name for name, _ in params)})"
                )
            try:
                values[key] = float(raw.strip())
            except ValueError:
                raise ArrivalSpecError(
                    f"arrival spec {spec!r}: {key} must be a number, "
                    f"got {raw.strip()!r}"
                ) from None
    process = factory(**values)
    rendered = ",".join(
        f"{name}={_format_value(values[name])}" for name, _ in params
    )
    process.spec = f"{family}({rendered})"
    return process
