"""Low-level utilities shared across the reproduction.

This subpackage deliberately contains only dependency-free helpers:

* :mod:`repro.utils.bits` -- power-of-two arithmetic and bit-field extraction
  used everywhere addresses are decomposed into tag/index/offset.
* :mod:`repro.utils.hashing` -- the hash family used by the skewed predictor
  tables and by the baseline predictors to fold PCs and addresses into
  fixed-width signatures.
* :mod:`repro.utils.counters` -- saturating counters, the basic storage cell
  of every dead block predictor in the paper.
* :mod:`repro.utils.rng` -- a tiny deterministic xorshift generator so that
  random replacement and synthetic workloads are reproducible without
  depending on global :mod:`random` state.
"""

from repro.utils.bits import (
    bit_field,
    ilog2,
    is_power_of_two,
    mask,
    sign_extend,
)
from repro.utils.counters import SaturatingCounter
from repro.utils.hashing import (
    fold_xor,
    hash_combine,
    mix64,
    skewed_hash,
)
from repro.utils.rng import XorShift64

__all__ = [
    "SaturatingCounter",
    "XorShift64",
    "bit_field",
    "fold_xor",
    "hash_combine",
    "ilog2",
    "is_power_of_two",
    "mask",
    "mix64",
    "sign_extend",
    "skewed_hash",
]
