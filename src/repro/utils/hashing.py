"""Hash functions used by the predictors.

The paper's skewed predictor (Section III-E) indexes three counter tables with
*different* hashes of the same 15-bit signature, following the skewed-cache
idea of Seznec and the skewed branch predictors of Michaud et al.  The exact
hash family is not specified in the paper; what matters is that the three
functions are (a) cheap, (b) pairwise decorrelated, so that two signatures
that conflict in one table are unlikely to conflict in the other two.

We use a multiply-xorshift mixer (a 64-bit finalizer in the murmur/splitmix
family) salted per table.  The mixer is deterministic and dependency-free, so
every simulation is exactly reproducible.
"""

from __future__ import annotations

__all__ = ["fold_xor", "hash_combine", "mix64", "skewed_hash"]

_MASK64 = (1 << 64) - 1

# Odd 64-bit constants from splitmix64 / murmur3 finalizers.
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB

# Per-table salts for the skewed organization.  Three large odd constants;
# any fixed decorrelated values work.
_SKEW_SALTS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
)


def mix64(value: int) -> int:
    """A 64-bit finalizing mixer (splitmix64 style).

    Bijective on 64-bit integers, so it never *introduces* collisions; all
    collisions come from the final fold to table width.
    """
    value &= _MASK64
    value ^= value >> 30
    value = (value * _MIX_MULT_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_MULT_2) & _MASK64
    value ^= value >> 31
    return value


def fold_xor(value: int, width: int) -> int:
    """Fold an integer to ``width`` bits by xoring ``width``-wide chunks.

    This is the classic hardware-friendly way to reduce a PC or block address
    to a short signature (the paper's 15-bit signatures are of this kind).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    chunk_mask = (1 << width) - 1
    folded = 0
    value &= _MASK64
    while value:
        folded ^= value & chunk_mask
        value >>= width
    return folded


def hash_combine(a: int, b: int) -> int:
    """Combine two integers into one 64-bit hash value."""
    return mix64((a & _MASK64) ^ mix64(b))


def skewed_hash(signature: int, table: int, index_bits: int) -> int:
    """Index for skewed table ``table`` given a prediction ``signature``.

    Args:
        signature: the (already folded, e.g. 15-bit) prediction signature.
        table: which of the skewed tables is being indexed (0, 1, 2, ...).
        index_bits: log2 of the table size.

    Returns:
        an index in ``[0, 2**index_bits)``.
    """
    if table < 0:
        raise ValueError(f"table must be non-negative, got {table}")
    salt = _SKEW_SALTS[table % len(_SKEW_SALTS)] + table
    return fold_xor(mix64(signature ^ salt), index_bits)
