"""Deterministic pseudo-random number generation.

Both the random replacement policy (Section V-A of the paper evaluates the
sampler on a *randomly replaced* LLC) and the synthetic workload generators
need random numbers.  Using Python's global :mod:`random` would make results
depend on import order and on unrelated consumers, so each component owns an
independent :class:`XorShift64` seeded explicitly.  The same seeds therefore
always produce the same simulation, which the test suite relies on.
"""

from __future__ import annotations

__all__ = ["XorShift64"]

_MASK64 = (1 << 64) - 1


class XorShift64:
    """Marsaglia xorshift64* generator.

    Small, fast, and more than random enough for victim selection and
    workload synthesis.  Not cryptographic, and not meant to be.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        # A zero state would get stuck at zero; remap it.
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned value."""
        x = self._state
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def randrange(self, bound: int) -> int:
        """Return a value in ``[0, bound)``.

        Uses the high bits of the 64-bit output, which are the best-mixed
        bits of xorshift64*.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return (self.next_u64() >> 11) % bound

    def random(self) -> float:
        """Return a float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """Return a uniformly random element of a non-empty sequence."""
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates shuffle of a mutable sequence."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def fork(self) -> "XorShift64":
        """Return a new independent generator seeded from this one.

        Handy for giving each of many workload phases its own stream while
        still deriving everything from one top-level seed.
        """
        return XorShift64(self.next_u64())
