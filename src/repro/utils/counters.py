"""Saturating counters.

Two-bit saturating counters are the storage cell of every predictor in the
paper: the reftrace predictor's 2\\ :sup:`15`-entry table, the counting
predictor's confidence bits, and the sampling predictor's three skewed
tables all hold small saturating counts.
"""

from __future__ import annotations

__all__ = ["SaturatingCounter"]


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    The class is intentionally tiny; hot loops in the predictors operate on
    raw integer lists for speed and only use this class at module boundaries
    and in tests, where readability wins.

    Attributes:
        value: current counter value, always in ``[0, maximum]``.
        maximum: largest representable value (``2**bits - 1``).
    """

    __slots__ = ("maximum", "value")

    def __init__(self, bits: int = 2, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.maximum = (1 << bits) - 1
        if not 0 <= initial <= self.maximum:
            raise ValueError(
                f"initial value {initial} out of range [0, {self.maximum}]"
            )
        self.value = initial

    def increment(self) -> int:
        """Increment, saturating at the maximum.  Returns the new value."""
        if self.value < self.maximum:
            self.value += 1
        return self.value

    def decrement(self) -> int:
        """Decrement, saturating at zero.  Returns the new value."""
        if self.value > 0:
            self.value -= 1
        return self.value

    def is_saturated(self) -> bool:
        """True when the counter sits at its maximum."""
        return self.value == self.maximum

    def reset(self, value: int = 0) -> None:
        """Set the counter to ``value`` (must be in range)."""
        if not 0 <= value <= self.maximum:
            raise ValueError(f"value {value} out of range [0, {self.maximum}]")
        self.value = value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"SaturatingCounter(value={self.value}, max={self.maximum})"
