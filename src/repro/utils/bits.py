"""Bit manipulation helpers for address decomposition.

Cache simulators spend their lives slicing addresses into block offsets, set
indices, and tags.  Keeping that arithmetic in one tested place avoids the
classic off-by-one-shift bugs.
"""

from __future__ import annotations

__all__ = ["bit_field", "ilog2", "is_power_of_two", "mask", "sign_extend"]


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.  Cache
            geometries in this project are always powers of two, so a
            non-power-of-two here is a configuration bug worth failing on.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


def mask(width: int) -> int:
    """Return a bit mask with ``width`` low-order ones.

    ``mask(0)`` is 0, matching a zero-width field.
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_field(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    >>> bit_field(0b101100, low=2, width=3)
    3
    """
    if low < 0:
        raise ValueError(f"low bit must be non-negative, got {low}")
    return (value >> low) & mask(width)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement int.

    Used by workload generators that compute strided deltas in fixed-width
    arithmetic.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit
