"""A cache whose live victims retire into dead frames of a partner set.

Mechanics (a faithful miniature of the PACT 2010 virtual victim cache):

* sets are paired: set *s* partners with set *s XOR 1*;
* when a demand fill evicts a block that is **not** predicted dead, and
  the partner set has an invalid or predicted-dead frame, the victim is
  *relocated* there instead of dropped (its frame remembers the home set
  and original tag, since the partner set's index bits differ);
* a demand miss probes the partner set for a relocated block before
  going to memory; a *VVC hit* promotes the block back to its home set.

Relocated blocks are marked and never relocated a second time, which
bounds the extra traffic and prevents ping-pong.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import Cache, CacheAccess

__all__ = ["VVCStats", "VictimRelocationCache"]

_HOME_KEY = "vvc_home_set"
_TAG_KEY = "vvc_home_tag"

#: Frame tag used for relocated blocks.  A block parked in set s^1 keeps
#: the tag it had in set s, which can equal a *different* block's tag in
#: the partner set (the index bits differ); hardware extends the stored
#: tag with the index bit to disambiguate.  We store an impossible tag
#: instead -- native lookups can never match it -- and keep the real
#: identity in the frame's metadata.
_RELOCATED_TAG = -1


@dataclass
class VVCStats:
    """Victim-relocation event counters."""

    relocations: int = 0
    vvc_hits: int = 0
    promotions: int = 0


class VictimRelocationCache(Cache):
    """A :class:`~repro.cache.Cache` with dead-frame victim relocation.

    Works with any policy; pairing requires at least two sets.  The
    predicted-dead bit that gates relocation targets is maintained by the
    DBRB policy (or can be driven by any predictor through it).
    """

    def __init__(self, geometry, policy, name: str = "vvc-cache") -> None:
        if geometry.num_sets < 2:
            raise ValueError("victim relocation needs at least two sets")
        super().__init__(geometry, policy, name)
        self.vvc_stats = VVCStats()

    # ------------------------------------------------------------------
    @staticmethod
    def partner_of(set_index: int) -> int:
        return set_index ^ 1

    # ------------------------------------------------------------------
    def access(self, access: CacheAccess) -> bool:
        geometry = self.geometry
        set_index = geometry.set_index(access.address)
        tag = geometry.tag(access.address)

        # A relocated copy must be promoted *before* the normal lookup
        # runs, so the miss path (bypass decisions, victim choice) never
        # fires for a block the VVC actually holds.
        if self.find(set_index, tag) is None:
            if self._promote_from_partner(set_index, tag, access):
                self.vvc_stats.vvc_hits += 1

        return super().access(access)

    def _promote_from_partner(
        self, home_set: int, tag: int, access: CacheAccess
    ) -> bool:
        """Find a relocated copy in the partner set; move it back home."""
        partner = self.partner_of(home_set)
        for way, block in enumerate(self.sets[partner]):
            if (
                block.valid
                and block.meta.get(_HOME_KEY) == home_set
                and block.meta.get(_TAG_KEY) == tag
            ):
                was_dirty = block.dirty
                # Remove the relocated copy silently: the data moves, it
                # does not leave the cache, so neither eviction stats nor
                # the predictor's "dead" training fire.
                self._clear_frame(partner, way)
                # Reinstall at home through the normal fill machinery.
                home_way = self._frame_for_fill(home_set, access)
                if self.sets[home_set][home_way].valid:
                    self._evict(home_set, home_way, access)
                home_block = self._install_frame(
                    home_set, home_way, tag, access.seq, access.is_write
                )
                home_block.dirty = home_block.dirty or was_dirty
                self.policy.on_fill(home_set, home_way, access)
                self.vvc_stats.promotions += 1
                return True
        return False

    # ------------------------------------------------------------------
    def _evict(self, set_index: int, way: int, access: CacheAccess) -> None:
        block = self.sets[set_index][way]
        if (
            block.valid
            and not block.predicted_dead
            and _HOME_KEY not in block.meta
            and self._relocate(set_index, way, access)
        ):
            return  # victim parked in the partner set, not evicted
        super()._evict(set_index, way, access)

    def _relocate(self, set_index: int, way: int, access: CacheAccess) -> bool:
        """Move a live victim into a dead/invalid partner frame."""
        partner = self.partner_of(set_index)
        target_way = None
        for candidate, block in enumerate(self.sets[partner]):
            if not block.valid:
                target_way = candidate
                break
            if block.predicted_dead and _HOME_KEY not in block.meta:
                target_way = candidate
                break
        if target_way is None:
            return False
        victim = self.sets[set_index][way]
        if self.sets[partner][target_way].valid:
            super()._evict(partner, target_way, access)
        home_tag = victim.tag
        was_dirty = victim.dirty
        target = self._install_frame(
            partner, target_way, _RELOCATED_TAG, access.seq, is_write=False
        )
        target.dirty = was_dirty
        target.meta[_HOME_KEY] = set_index
        target.meta[_TAG_KEY] = home_tag
        self.policy.on_fill(partner, target_way, access)
        # The victim frame empties without a true eviction: the block is
        # still cached (in the partner set), so no "dead" training fires.
        self._clear_frame(set_index, way)
        self.vvc_stats.relocations += 1
        return True
