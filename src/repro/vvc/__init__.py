"""The virtual victim cache (extension).

Khan, Jiménez, Falsafi, and Burger's PACT 2010 proposal, cited in the
paper's related work (Section II-A.1): use the pool of predicted-dead
blocks as a *virtual victim cache* -- LRU victims from hot sets are
parked in dead frames of a partner set instead of being dropped, and
probed there on a miss.  The sampling paper defers such "optimizations
other than replacement and bypass" to future work (Section VIII); this
package implements one on top of the sampling predictor.
"""

from repro.vvc.cache import VictimRelocationCache, VVCStats

__all__ = ["VVCStats", "VictimRelocationCache"]
