"""Synthetic SPEC-CPU-2006-like workloads.

The paper evaluates on SimPoint traces of the 29 SPEC CPU 2006 benchmarks
(Table III), with a memory-intensive 19-benchmark subset for the
single-thread figures and ten quad-core mixes (Table IV).  Those traces
are not redistributable, so this package provides *synthetic analogues*:
one generator per benchmark, each reproducing the memory-behaviour
archetype the benchmark is known for -- streaming, pointer chasing,
scan-thrash, hot/cold skew, stencil planes, or unpredictable reference
patterns -- with working sets expressed as multiples of the LLC capacity
and PC-correlated last-touch behaviour (the statistic dead block
predictors live on).

See DESIGN.md Section 4 for why this substitution preserves the paper's
comparisons, and :mod:`repro.workloads.suite` for the per-benchmark
parameterization.
"""

from repro.workloads.base import TraceBuilder, WorkloadGenerator
from repro.workloads.generators import (
    HotColdGenerator,
    MixedPhaseGenerator,
    PointerChaseGenerator,
    ScanReuseGenerator,
    SmallFootprintGenerator,
    StencilGenerator,
    StreamingGenerator,
    ThrashGenerator,
    UnpredictableGenerator,
)
from repro.workloads.mixes import MIX_NAMES, MIXES, build_mix_traces
from repro.workloads.suite import (
    ALL_BENCHMARKS,
    SINGLE_THREAD_SUBSET,
    build_trace,
    generator_for,
)

__all__ = [
    "ALL_BENCHMARKS",
    "HotColdGenerator",
    "MIXES",
    "MIX_NAMES",
    "MixedPhaseGenerator",
    "PointerChaseGenerator",
    "SINGLE_THREAD_SUBSET",
    "ScanReuseGenerator",
    "SmallFootprintGenerator",
    "StencilGenerator",
    "StreamingGenerator",
    "ThrashGenerator",
    "TraceBuilder",
    "UnpredictableGenerator",
    "WorkloadGenerator",
    "build_mix_traces",
    "build_trace",
    "generator_for",
]
