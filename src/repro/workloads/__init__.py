"""Synthetic SPEC-CPU-2006-like workloads.

The paper evaluates on SimPoint traces of the 29 SPEC CPU 2006 benchmarks
(Table III), with a memory-intensive 19-benchmark subset for the
single-thread figures and ten quad-core mixes (Table IV).  Those traces
are not redistributable, so this package provides *synthetic analogues*:
one generator per benchmark, each reproducing the memory-behaviour
archetype the benchmark is known for -- streaming, pointer chasing,
scan-thrash, hot/cold skew, stencil planes, or unpredictable reference
patterns -- with working sets expressed as multiples of the LLC capacity
and PC-correlated last-touch behaviour (the statistic dead block
predictors live on).

See DESIGN.md Section 4 for why this substitution preserves the paper's
comparisons, and :mod:`repro.workloads.suite` for the per-benchmark
parameterization.
"""

from repro.workloads.base import TraceBuilder, WorkloadGenerator
from repro.workloads.generators import (
    HotColdGenerator,
    MixedPhaseGenerator,
    PointerChaseGenerator,
    ScanReuseGenerator,
    SmallFootprintGenerator,
    StencilGenerator,
    StreamingGenerator,
    ThrashGenerator,
    UnpredictableGenerator,
)
from repro.workloads.mixes import MIX_NAMES, MIXES, build_mix_traces, mix_members
from repro.workloads.patterns import (
    PATTERN_FAMILIES,
    BurstyPattern,
    ComposedPattern,
    HotspotPattern,
    PatternWorkload,
    SequentialPattern,
    UniformRandomPattern,
    WorkloadSpecError,
    ZipfianPattern,
    compose,
    parse_workload_spec,
    register_pattern_family,
)
from repro.workloads.replay import (
    TraceLibrary,
    TraceReplayWorkload,
    default_trace_library,
    trace_content_digest,
)
from repro.workloads.suite import (
    ALL_BENCHMARKS,
    SINGLE_THREAD_SUBSET,
    UnknownWorkloadError,
    build_trace,
    generator_for,
    resolve_workload,
    validate_workloads,
    workload_spec,
    workload_spec_digest,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BurstyPattern",
    "ComposedPattern",
    "HotColdGenerator",
    "HotspotPattern",
    "MIXES",
    "MIX_NAMES",
    "MixedPhaseGenerator",
    "PATTERN_FAMILIES",
    "PatternWorkload",
    "PointerChaseGenerator",
    "SINGLE_THREAD_SUBSET",
    "ScanReuseGenerator",
    "SequentialPattern",
    "SmallFootprintGenerator",
    "StencilGenerator",
    "StreamingGenerator",
    "ThrashGenerator",
    "TraceBuilder",
    "TraceLibrary",
    "TraceReplayWorkload",
    "UniformRandomPattern",
    "UnknownWorkloadError",
    "UnpredictableGenerator",
    "WorkloadGenerator",
    "WorkloadSpecError",
    "ZipfianPattern",
    "build_mix_traces",
    "build_trace",
    "compose",
    "default_trace_library",
    "generator_for",
    "mix_members",
    "parse_workload_spec",
    "register_pattern_family",
    "resolve_workload",
    "trace_content_digest",
    "validate_workloads",
    "workload_spec",
    "workload_spec_digest",
]
