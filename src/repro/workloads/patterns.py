"""Parameterized traffic-pattern workload families.

The 29 suite benchmarks model *specific programs*; this module opens the
workload space along explicit axes instead: Zipfian skew, hotspot
concentration, burstiness, stream count, and uniform-random pressure,
plus a :func:`compose` combinator for phased or blended mixtures.  Every
family is a :class:`~repro.workloads.base.WorkloadGenerator` whose full
parameterization is carried by an explicit, hashable **spec string** --
``zipf(a=1.2,seed=7)`` -- which doubles as the workload's *name*
throughout the system: checkpoint cell keys, stream-store keys, service
job specs, and fleet leases all treat the spec as an opaque benchmark
name, so parameterized instances flow end-to-end with zero
special-casing.

Spec grammar::

    spec   := family | family "(" args ")"
    args   := arg ("," arg)*
    arg    := key "=" value | spec          (positional specs: compose)
    value  := int | float | bool | ratio | bare-word
    ratio  := number (":" number)+          (e.g. weights=2:1)

Omitted parameters take the family defaults; :meth:`PatternWorkload.spec`
renders the **canonical** form with *every* parameter explicit (defaults
filled, declaration order, seed last), so two textual variants of one
workload -- ``zipf(a=1.2)`` and ``zipf(seed=1,a=1.2)`` -- share one
canonical spec, one spec digest, and therefore one compiled-stream blob.
The digest also shifts whenever a family's *default* changes, which is
exactly what must invalidate previously stored streams.

Families registered here: ``zipf``, ``hotspot``, ``bursty``, ``seq``,
``uniform``, ``phased``, ``blend``; :mod:`repro.workloads.replay` adds
``trace`` (external trace replay).  See docs/workloads.md for the
catalog and the predictor-relevant statistics of each family.
"""

from __future__ import annotations

import bisect
import difflib
import hashlib
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.trace import Trace, TraceRecord
from repro.utils.hashing import mix64
from repro.workloads.base import TraceBuilder, WorkloadGenerator

__all__ = [
    "PATTERN_FAMILIES",
    "BurstyPattern",
    "ComposedPattern",
    "HotspotPattern",
    "PatternWorkload",
    "SequentialPattern",
    "UniformRandomPattern",
    "WorkloadSpecError",
    "ZipfianPattern",
    "compose",
    "parse_workload_spec",
    "register_pattern_family",
    "spec_digest",
]


class WorkloadSpecError(ValueError):
    """A malformed, unknown, or unresolvable workload spec."""


# A family factory receives the parsed keyword params, the positional
# sub-generators (compose families only), and the default seed.
FamilyFactory = Callable[[Dict[str, object], List[WorkloadGenerator], int], WorkloadGenerator]

PATTERN_FAMILIES: Dict[str, FamilyFactory] = {}


def register_pattern_family(name: str, factory: FamilyFactory) -> None:
    """Register a spec-grammar family (``replay`` registers ``trace``)."""
    PATTERN_FAMILIES[name] = factory


def _suggest(name: str, candidates: Sequence[str]) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=1)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # repr() round-trips and renders 1.2 as "1.2", not "1.2000...".
        text = repr(value)
        if "e" in text or "E" in text:
            # Exponent forms do not survive the strict spec grammar;
            # render tiny/huge values in fixed point instead.
            integer, _, fraction = format(value, ".16f").partition(".")
            text = f"{integer}.{fraction.rstrip('0') or '0'}"
        return text[:-2] if text.endswith(".0") else text
    return str(value)


def spec_digest(canonical_spec: str) -> str:
    """The 16-hex content digest of a canonical workload spec."""
    return hashlib.sha256(canonical_spec.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# the family base class
# ----------------------------------------------------------------------
class PatternWorkload(WorkloadGenerator):
    """Base class for parameterized pattern families.

    Subclasses declare ``family`` and ``PARAMS`` -- ``(name, type,
    default)`` triples in canonical order -- and implement
    :meth:`generate`.  The constructor validates and default-fills the
    parameters; :meth:`spec` renders the canonical spec, which is also
    the generator's ``name`` (so PC pools, data-region offsets, and the
    per-trace RNG are all derived from the *canonical* identity, making
    textual spec variants byte-identical).
    """

    family: str = ""
    PARAMS: Tuple[Tuple[str, type, object], ...] = ()

    def __init__(self, seed: int = 1, **params: object) -> None:
        declared = {name: (kind, default) for name, kind, default in self.PARAMS}
        for key in params:
            if key not in declared:
                raise WorkloadSpecError(
                    f"{self.family}: unknown parameter {key!r} "
                    f"(valid: {', '.join(sorted(declared))}"
                    f"{_suggest(key, list(declared))})"
                )
        self.params: Dict[str, object] = {}
        for name, kind, default in self.PARAMS:
            value = params.get(name, default)
            try:
                if kind is float:
                    value = float(value)
                elif kind is int:
                    if isinstance(value, float) and not value.is_integer():
                        raise ValueError(value)
                    value = int(value)
                elif kind is bool:
                    if not isinstance(value, bool):
                        raise ValueError(value)
            except (TypeError, ValueError):
                raise WorkloadSpecError(
                    f"{self.family}: parameter {name}={value!r} is not "
                    f"a valid {kind.__name__}"
                ) from None
            self.params[name] = value
        self._check_params()
        super().__init__(self._canonical(seed), seed)

    def _check_params(self) -> None:
        """Subclass hook: range-check ``self.params`` (raise
        :class:`WorkloadSpecError` on nonsense)."""

    def _require_positive(self, *names: str) -> None:
        for name in names:
            if self.params[name] <= 0:  # type: ignore[operator]
                raise WorkloadSpecError(
                    f"{self.family}: parameter {name} must be positive, "
                    f"got {self.params[name]!r}"
                )

    def _require_fraction(self, *names: str) -> None:
        for name in names:
            value = self.params[name]
            if not 0.0 <= value <= 1.0:  # type: ignore[operator]
                raise WorkloadSpecError(
                    f"{self.family}: parameter {name} must be in [0, 1], "
                    f"got {value!r}"
                )

    def _canonical(self, seed: int) -> str:
        inner = [f"{name}={_format_value(self.params[name])}" for name, _, _ in self.PARAMS]
        inner.append(f"seed={seed}")
        return f"{self.family}({','.join(inner)})"

    def spec(self) -> str:
        """The canonical spec: every parameter explicit, seed last."""
        return self.name

    def spec_digest(self) -> str:
        """Digest of the canonical spec (folded into stream-store keys)."""
        return spec_digest(self.spec())

    def _maybe_store(
        self, builder: TraceBuilder, rng, pc: int, address: int, gap: int
    ) -> None:
        """Emit a load or -- with probability ``write`` -- a store."""
        if self.params.get("write", 0.0) and rng.random() < self.params["write"]:
            builder.store(pc, address, gap)
        else:
            builder.load(pc, address, gap)


# ----------------------------------------------------------------------
# the families
# ----------------------------------------------------------------------
class ZipfianPattern(PatternWorkload):
    """Zipf-distributed block popularity over a footprint.

    Rank *r* of ``N`` blocks is referenced with probability proportional
    to ``1 / (r+1)**a``; ranks scatter over the footprint through a
    mixing hash so popularity is uncorrelated with address.  PCs are
    assigned per popularity band (``pcs`` bands), so hot data keeps a
    stable, learnable PC population while the cold tail churns --
    sweeping ``a`` moves the workload continuously between uniform
    pressure (``a=0``) and a cache-resident hot set (``a>=1.5``).
    """

    family = "zipf"
    PARAMS = (
        ("a", float, 1.2),
        ("footprint", float, 4.0),
        ("gap", int, 4),
        ("write", float, 0.0),
        ("pcs", int, 16),
    )

    def _check_params(self) -> None:
        if self.params["a"] < 0:
            raise WorkloadSpecError(f"zipf: skew a must be >= 0, got {self.params['a']!r}")
        self._require_positive("footprint", "gap", "pcs")
        self._require_fraction("write")

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        blocks = self.region_blocks(llc_bytes, self.params["footprint"])
        skew = self.params["a"]
        gap = self.params["gap"]
        pcs = self.params["pcs"]
        # Cumulative Zipf weights over ranks; sampled by bisection.
        cumulative: List[float] = []
        total = 0.0
        for rank in range(blocks):
            total += 1.0 / float(rank + 1) ** skew
            cumulative.append(total)
        base = self.data_region(0)
        salt = (self.seed << 8) ^ 0x5bd1
        rng = self._rng()
        builder = TraceBuilder(self.name, instructions)
        while not builder.exhausted:
            rank = bisect.bisect_left(cumulative, rng.random() * total)
            if rank >= blocks:
                rank = blocks - 1
            block = mix64(rank ^ salt) % blocks
            pc = self.pc(min(rank, pcs - 1))
            self._maybe_store(builder, rng, pc, base + block * 64, gap)
        return builder.build()


class HotspotPattern(PatternWorkload):
    """A hot fraction of the footprint takes most of the traffic.

    With probability ``p`` an access falls uniformly in the hot region
    (``hot`` of the footprint), else uniformly in the cold remainder.
    Hot and cold accesses use disjoint PC pools, so cold-region deadness
    is perfectly PC-correlated -- the clean DBRB-bypass case -- while
    the two-level distribution stresses the sampler's set sampling.
    """

    family = "hotspot"
    PARAMS = (
        ("hot", float, 0.1),
        ("p", float, 0.9),
        ("footprint", float, 2.0),
        ("gap", int, 4),
        ("write", float, 0.0),
    )

    def _check_params(self) -> None:
        self._require_positive("footprint", "gap")
        self._require_fraction("p", "write")
        if not 0.0 < self.params["hot"] < 1.0:
            raise WorkloadSpecError(
                f"hotspot: hot fraction must be in (0, 1), got {self.params['hot']!r}"
            )

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        blocks = self.region_blocks(llc_bytes, self.params["footprint"])
        hot_blocks = max(1, int(blocks * self.params["hot"]))
        cold_blocks = max(1, blocks - hot_blocks)
        probability = self.params["p"]
        gap = self.params["gap"]
        base = self.data_region(0)
        rng = self._rng()
        builder = TraceBuilder(self.name, instructions)
        while not builder.exhausted:
            if rng.random() < probability:
                block = rng.randrange(hot_blocks)
                pc = self.pc(block % 8)
            else:
                block = hot_blocks + rng.randrange(cold_blocks)
                pc = self.pc(8 + block % 8)
            self._maybe_store(builder, rng, pc, base + block * 64, gap)
        return builder.build()


class BurstyPattern(PatternWorkload):
    """On/off traffic: dense bursts inside a small jumping window.

    Each burst issues ``burst`` back-to-back accesses confined to a
    window of ``window`` x footprint, then idles for ``idle`` non-memory
    instructions before the window jumps.  Burst-local reuse is deep and
    then dies wholesale -- the window's blocks are dead the instant the
    burst ends -- so prediction quality shows up directly as how fast
    the abandoned window is evicted or bypassed.
    """

    family = "bursty"
    PARAMS = (
        ("burst", int, 64),
        ("window", float, 0.02),
        ("idle", int, 200),
        ("footprint", float, 4.0),
        ("gap", int, 2),
        ("write", float, 0.0),
    )

    def _check_params(self) -> None:
        self._require_positive("burst", "footprint", "gap")
        self._require_fraction("write")
        if self.params["idle"] < 0:
            raise WorkloadSpecError(
                f"bursty: idle must be >= 0, got {self.params['idle']!r}"
            )
        if not 0.0 < self.params["window"] <= 1.0:
            raise WorkloadSpecError(
                f"bursty: window must be in (0, 1], got {self.params['window']!r}"
            )

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        blocks = self.region_blocks(llc_bytes, self.params["footprint"])
        window = max(1, int(blocks * self.params["window"]))
        burst = self.params["burst"]
        idle = self.params["idle"]
        gap = self.params["gap"]
        base = self.data_region(0)
        rng = self._rng()
        builder = TraceBuilder(self.name, instructions)
        while not builder.exhausted:
            start = rng.randrange(max(1, blocks - window))
            for index in range(burst):
                if builder.exhausted:
                    break
                block = start + rng.randrange(window)
                self._maybe_store(
                    builder, rng, self.pc(index % 8), base + block * 64, gap
                )
            builder.compute(idle)
        return builder.build()


class SequentialPattern(PatternWorkload):
    """Interleaved sequential streams marching over the footprint.

    ``streams`` pointers advance round-robin through disjoint shares of
    the footprint, wrapping at the end -- pure streaming: every block is
    dead after its touch, with one perfectly learnable PC per stream.
    """

    family = "seq"
    PARAMS = (
        ("streams", int, 4),
        ("footprint", float, 8.0),
        ("gap", int, 4),
        ("write", float, 0.0),
    )

    def _check_params(self) -> None:
        self._require_positive("streams", "footprint", "gap")
        self._require_fraction("write")

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        streams = self.params["streams"]
        blocks = max(streams, self.region_blocks(llc_bytes, self.params["footprint"]))
        share = blocks // streams
        gap = self.params["gap"]
        rng = self._rng()
        builder = TraceBuilder(self.name, instructions)
        cursors = [0] * streams
        while not builder.exhausted:
            for stream in range(streams):
                if builder.exhausted:
                    break
                block = cursors[stream]
                cursors[stream] = (block + 1) % max(1, share)
                address = self.data_region(stream) + block * 64
                self._maybe_store(builder, rng, self.pc(stream), address, gap)
        return builder.build()


class UniformRandomPattern(PatternWorkload):
    """Uniform random references over the footprint.

    The zero-information baseline: deadness carries no PC signal at all,
    so any predictor coverage above chance is overfitting -- the
    pattern-space analogue of the suite's ``astar``.
    """

    family = "uniform"
    PARAMS = (
        ("footprint", float, 2.0),
        ("gap", int, 4),
        ("write", float, 0.0),
        ("pcs", int, 16),
    )

    def _check_params(self) -> None:
        self._require_positive("footprint", "gap", "pcs")
        self._require_fraction("write")

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        blocks = self.region_blocks(llc_bytes, self.params["footprint"])
        gap = self.params["gap"]
        pcs = self.params["pcs"]
        base = self.data_region(0)
        rng = self._rng()
        builder = TraceBuilder(self.name, instructions)
        while not builder.exhausted:
            block = rng.randrange(blocks)
            self._maybe_store(
                builder, rng, self.pc(rng.randrange(pcs)), base + block * 64, gap
            )
        return builder.build()


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
class ComposedPattern(WorkloadGenerator):
    """Phased or blended mixture of pattern workloads.

    ``phased`` cycles through the parts in weight-proportional slices
    (non-stationary behaviour for predictors to track, like the suite's
    :class:`~repro.workloads.generators.MixedPhaseGenerator`); ``blend``
    interleaves the parts' records access-by-access with a deterministic
    smooth weighted round-robin (stationary superposition, like
    co-running tenants sharing one core's stream).
    """

    def __init__(
        self,
        parts: Sequence[WorkloadGenerator],
        weights: Optional[Sequence[float]] = None,
        mode: str = "phased",
        seed: int = 1,
    ) -> None:
        if mode not in ("phased", "blend"):
            raise WorkloadSpecError(f"compose: unknown mode {mode!r} (phased|blend)")
        if not parts:
            raise WorkloadSpecError("compose: at least one part is required")
        for part in parts:
            if not hasattr(part, "spec"):
                raise WorkloadSpecError(
                    f"compose: part {part!r} has no canonical spec(); only "
                    "pattern/trace workloads compose"
                )
        self.parts = list(parts)
        self.weights = [float(w) for w in (weights or [1.0] * len(parts))]
        if len(self.weights) != len(self.parts):
            raise WorkloadSpecError(
                f"compose: {len(self.parts)} parts but "
                f"{len(self.weights)} weights"
            )
        if any(w <= 0 for w in self.weights):
            raise WorkloadSpecError("compose: weights must be positive")
        self.mode = mode
        inner = ",".join(part.spec() for part in self.parts)
        ratio = ":".join(_format_value(w) for w in self.weights)
        super().__init__(f"{mode}({inner},weights={ratio},seed={seed})", seed)

    def spec(self) -> str:
        return self.name

    def spec_digest(self) -> str:
        return spec_digest(self.spec())

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        if self.mode == "phased":
            return self._generate_phased(instructions, llc_bytes)
        return self._generate_blend(instructions, llc_bytes)

    def _generate_phased(self, instructions: int, llc_bytes: int) -> Trace:
        pieces: List[Trace] = []
        produced = 0
        index = 0
        # Each part recurs ~twice per trace, as MixedPhaseGenerator does.
        chunk = max(instructions // (2 * len(self.parts)), 1000)
        while produced < instructions:
            part = self.parts[index % len(self.parts)]
            weight = self.weights[index % len(self.weights)]
            budget = min(max(int(chunk * weight), 500), instructions - produced)
            piece = part.generate(budget, llc_bytes)
            pieces.append(piece)
            produced += piece.instructions
            index += 1
        return Trace.concatenate(self.name, pieces)

    def _generate_blend(self, instructions: int, llc_bytes: int) -> Trace:
        total_weight = sum(self.weights)
        streams = [
            part.generate(
                max(1000, int(instructions * weight / total_weight)), llc_bytes
            ).records
            for part, weight in zip(self.parts, self.weights)
        ]
        cursors = [0] * len(streams)
        credits = [0.0] * len(streams)
        records: List[TraceRecord] = []
        emitted = 0
        # Smooth weighted round-robin: deterministic, starvation-free.
        while emitted < instructions:
            live = [i for i in range(len(streams)) if cursors[i] < len(streams[i])]
            if not live:
                break
            for i in live:
                credits[i] += self.weights[i]
            pick = max(live, key=lambda i: (credits[i], -i))
            credits[pick] -= total_weight
            record = streams[pick][cursors[pick]]
            cursors[pick] += 1
            records.append(record)
            emitted += record.gap + 1
        return Trace(self.name, records)


def compose(
    *parts: WorkloadGenerator,
    weights: Optional[Sequence[float]] = None,
    mode: str = "phased",
    seed: int = 1,
) -> ComposedPattern:
    """Combine pattern workloads into a phased or blended mixture."""
    return ComposedPattern(parts, weights=weights, mode=mode, seed=seed)


# ----------------------------------------------------------------------
# the spec parser
# ----------------------------------------------------------------------
def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on ``separator`` at parenthesis depth zero."""
    pieces: List[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise WorkloadSpecError(f"unbalanced ')' in spec {text!r}")
        elif char == separator and depth == 0:
            pieces.append(text[start:index])
            start = index + 1
    if depth != 0:
        raise WorkloadSpecError(f"unbalanced '(' in spec {text!r}")
    pieces.append(text[start:])
    return pieces


# Strict numeric forms: exponent notation and leading zeros stay
# strings, so hex tokens (trace digests) never misparse as numbers.
_INT_RE = re.compile(r"-?\d+")
_FLOAT_RE = re.compile(r"-?\d+\.\d+")


def _parse_value(text: str) -> object:
    text = text.strip()
    if not text:
        raise WorkloadSpecError("empty value in spec")
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if ":" in text and not text.startswith("/"):
        pieces = [_try_number(piece) for piece in text.split(":")]
        if all(piece is not None for piece in pieces):
            return tuple(pieces)
        return text  # a path or name containing ':'
    number = _try_number(text)
    return text if number is None else number


def _try_number(text: str) -> Union[int, float, None]:
    if _INT_RE.fullmatch(text):
        value = int(text)
        return value if str(value) == text else None
    if _FLOAT_RE.fullmatch(text):
        return float(text)
    return None


def _is_identifier(text: str) -> bool:
    return bool(text) and (text[0].isalpha() or text[0] == "_") and all(
        c.isalnum() or c in "._-" for c in text
    )


def parse_workload_spec(text: str, seed: int = 1) -> WorkloadGenerator:
    """Instantiate the workload a spec string describes.

    ``seed`` is the default when the spec does not pin ``seed=`` itself
    (the sweep harness passes the campaign seed, so unpinned pattern
    cells follow ``REPRO_SEED`` exactly like suite benchmarks).

    Raises:
        WorkloadSpecError: unknown family (with a closest-match
            suggestion), unknown/ill-typed parameter, or malformed
            syntax.
    """
    text = text.strip()
    if "(" not in text:
        family, body = text, ""
    else:
        family, _, rest = text.partition("(")
        family = family.strip()
        rest = rest.strip()
        if not rest.endswith(")"):
            raise WorkloadSpecError(f"spec {text!r} is missing its closing ')'")
        body = rest[:-1]
    if not _is_identifier(family):
        raise WorkloadSpecError(f"bad family name in spec {text!r}")
    factory = PATTERN_FAMILIES.get(family)
    if factory is None:
        raise WorkloadSpecError(
            f"unknown workload family {family!r} "
            f"(families: {', '.join(sorted(PATTERN_FAMILIES))}"
            f"{_suggest(family, sorted(PATTERN_FAMILIES))})"
        )

    params: Dict[str, object] = {}
    positional: List[object] = []
    if body.strip():
        for piece in _split_top_level(body, ","):
            piece = piece.strip()
            if not piece:
                raise WorkloadSpecError(f"empty argument in spec {text!r}")
            key, eq, value_text = piece.partition("=")
            if eq and _is_identifier(key.strip()) and "(" not in key:
                params[key.strip()] = _parse_value(value_text)
            elif "(" in piece or piece in PATTERN_FAMILIES:
                positional.append(parse_workload_spec(piece, seed=seed))
            else:
                positional.append(_parse_value(piece))
    return factory(params, positional, seed)


# ----------------------------------------------------------------------
# family registration
# ----------------------------------------------------------------------
def _simple_family(cls):
    def factory(params, positional, seed):
        if positional:
            raise WorkloadSpecError(
                f"{cls.family}: takes only key=value parameters, got "
                f"positional {positional!r}"
            )
        seed_value = params.pop("seed", seed)
        if not isinstance(seed_value, int):
            raise WorkloadSpecError(f"{cls.family}: seed must be an integer")
        return cls(seed=seed_value, **params)

    return factory


def _compose_family(mode):
    def factory(params, positional, seed):
        parts = []
        for part in positional:
            if not isinstance(part, WorkloadGenerator):
                raise WorkloadSpecError(
                    f"{mode}: parts must be workload specs, got {part!r}"
                )
            parts.append(part)
        seed_value = params.pop("seed", seed)
        weights = params.pop("weights", None)
        if isinstance(weights, (int, float)):
            weights = (weights,)
        if params:
            raise WorkloadSpecError(
                f"{mode}: unknown parameter(s) {', '.join(sorted(params))} "
                "(valid: weights, seed)"
            )
        if not isinstance(seed_value, int):
            raise WorkloadSpecError(f"{mode}: seed must be an integer")
        return ComposedPattern(parts, weights=weights, mode=mode, seed=seed_value)

    return factory


for _cls in (ZipfianPattern, HotspotPattern, BurstyPattern, SequentialPattern,
             UniformRandomPattern):
    register_pattern_family(_cls.family, _simple_family(_cls))
for _mode in ("phased", "blend"):
    register_pattern_family(_mode, _compose_family(_mode))
