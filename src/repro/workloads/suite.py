"""The 29-benchmark synthetic suite (Table III analogue).

One generator per SPEC CPU 2006 benchmark, parameterized from each
benchmark's published memory archetype.  The 19-benchmark
``SINGLE_THREAD_SUBSET`` mirrors the paper's memory-intensive subset
(Section VI-A.1: benchmarks whose misses drop by at least 1% under the
optimal policy); the remaining ten are the compute-bound group the paper
notes "experience no significant reduction in misses even with optimal
replacement".

Parameter provenance, briefly:

* *streamers* (milc, lbm, bwaves): footprints many times the LLC, single
  pass, some store traffic -- no policy can create reuse, only optimal and
  bypass trim eviction damage;
* *thrash* (libquantum): one vector cycled repeatedly, the classic
  LRU-pathological / DIP-winning case;
* *pointer chase* (mcf): dependent walks over a huge pool plus a hot
  price/arc structure;
* *scan+reuse* (hmmer, bzip2, soplex): resident working set periodically
  mauled by scans -- the headline DBRB case (hmmer is the paper's Figure 1
  subject);
* *stencil* (zeusmp, cactusADM, leslie3d, GemsFDTD, wrf): trailing-front
  re-reads with a perfectly learnable last-touch PC;
* *hot/cold* (omnetpp, xalancbmk, sphinx3, soplex): skewed references
  with cold erosion;
* *unpredictable* (astar, sjeng): PC-uncorrelated deadness -- the
  predictor-hostile case of Section VII-C;
* *small footprint* (gamess, povray, namd, tonto, calculix, dealII,
  h264ref, gromacs, gobmk): fits above the LLC.
"""

from __future__ import annotations

import difflib
import hashlib
from typing import Callable, Dict, List, Tuple

from repro.sim.trace import Trace
from repro.workloads.base import WorkloadGenerator
from repro.workloads.generators import (
    HotColdGenerator,
    MixedPhaseGenerator,
    PointerChaseGenerator,
    ScanReuseGenerator,
    SmallFootprintGenerator,
    StencilGenerator,
    StreamingGenerator,
    ThrashGenerator,
    UnpredictableGenerator,
)
from repro.workloads.patterns import (
    PATTERN_FAMILIES,
    WorkloadSpecError,
    parse_workload_spec,
)
import repro.workloads.replay  # noqa: F401  (registers the "trace" family)

__all__ = [
    "ALL_BENCHMARKS",
    "SINGLE_THREAD_SUBSET",
    "UnknownWorkloadError",
    "build_trace",
    "generator_for",
    "resolve_workload",
    "validate_workloads",
    "workload_spec",
    "workload_spec_digest",
]

GeneratorFactory = Callable[[int], WorkloadGenerator]


def _perlbench(seed: int) -> WorkloadGenerator:
    return MixedPhaseGenerator(
        "perlbench",
        phases=[
            (SmallFootprintGenerator("perlbench.interp", ws_factor=0.3, gap=7, seed=seed), 1.0),
            (HotColdGenerator(
                "perlbench.hash", hot_factor=0.35, cold_factor=2.0,
                hot_probability=0.9, gap=6, seed=seed,
            ), 0.4),
        ],
        seed=seed,
    )


def _bzip2(seed: int) -> WorkloadGenerator:
    return ScanReuseGenerator(
        "bzip2", hot_factor=0.45, scan_factor=1.2, hot_passes=3, gap=4, seed=seed
    )


def _gcc(seed: int) -> WorkloadGenerator:
    return MixedPhaseGenerator(
        "gcc",
        phases=[
            (ScanReuseGenerator(
                "gcc.rtl", hot_factor=0.5, scan_factor=1.5, hot_passes=2, gap=4, seed=seed
            ), 1.0),
            (SmallFootprintGenerator("gcc.parse", ws_factor=0.4, gap=6, seed=seed), 0.6),
            (StreamingGenerator(
                "gcc.init", streams=1, ws_factor=6.0, write_fraction=1.0,
                touches_per_block=2, gap=3, seed=seed,
            ), 0.4),
        ],
        seed=seed,
    )


def _mcf(seed: int) -> WorkloadGenerator:
    return PointerChaseGenerator(
        "mcf", ws_factor=12.0, hot_factor=0.5, hot_accesses_per_node=2, gap=4, seed=seed
    )


def _milc(seed: int) -> WorkloadGenerator:
    return StreamingGenerator(
        "milc", streams=3, ws_factor=18.0, write_fraction=0.34,
        touches_per_block=3, gap=3, seed=seed,
    )


def _zeusmp(seed: int) -> WorkloadGenerator:
    return StencilGenerator(
        "zeusmp", near_factor=0.10, far_factor=0.70, stream_fraction=0.25,
        ws_factor=6.0, gap=4, seed=seed,
    )


def _gromacs(seed: int) -> WorkloadGenerator:
    # Neighbor-list sweeps: a small reused set with a light scan component,
    # giving the ~1% optimal headroom that puts gromacs in the subset.
    return ScanReuseGenerator(
        "gromacs", hot_factor=0.35, scan_factor=0.7, hot_passes=4, gap=12, seed=seed
    )


def _cactusadm(seed: int) -> WorkloadGenerator:
    return StencilGenerator(
        "cactusADM", near_factor=0.14, far_factor=0.80, stream_fraction=0.2,
        ws_factor=8.0, gap=5, seed=seed,
    )


def _leslie3d(seed: int) -> WorkloadGenerator:
    return StencilGenerator(
        "leslie3d", near_factor=0.12, far_factor=0.75, stream_fraction=0.35,
        ws_factor=8.0, gap=3, seed=seed,
    )


def _soplex(seed: int) -> WorkloadGenerator:
    return HotColdGenerator(
        "soplex", hot_factor=0.6, cold_factor=10.0, hot_probability=0.65, gap=3, seed=seed
    )


def _hmmer(seed: int) -> WorkloadGenerator:
    # The paper's Figure 1 benchmark: strong reuse, scan-vulnerable.
    return ScanReuseGenerator(
        "hmmer", hot_factor=0.5, scan_factor=2.0, hot_passes=2, gap=3, seed=seed
    )


def _gemsfdtd(seed: int) -> WorkloadGenerator:
    return StencilGenerator(
        "GemsFDTD", near_factor=0.16, far_factor=0.85, stream_fraction=0.4,
        ws_factor=10.0, gap=3, seed=seed,
    )


def _libquantum(seed: int) -> WorkloadGenerator:
    # One giant vector swept cyclically: the canonical thrash pattern.
    return ThrashGenerator("libquantum", ws_factor=4.0, touches_per_block=2, gap=3, seed=seed)


def _lbm(seed: int) -> WorkloadGenerator:
    return StreamingGenerator(
        "lbm", streams=2, ws_factor=16.0, write_fraction=0.5,
        touches_per_block=3, gap=2, seed=seed,
    )


def _omnetpp(seed: int) -> WorkloadGenerator:
    return HotColdGenerator(
        "omnetpp", hot_factor=0.8, cold_factor=12.0, hot_probability=0.7,
        dependent_fraction=0.3, gap=4, seed=seed,
    )


def _astar(seed: int) -> WorkloadGenerator:
    return UnpredictableGenerator(
        "astar", window_factor=0.9, new_probability=0.15, recency_exponent=1.5,
        pc_pool=48, dependent_fraction=0.4, gap=4, seed=seed,
    )


def _wrf(seed: int) -> WorkloadGenerator:
    return StencilGenerator(
        "wrf", near_factor=0.10, far_factor=0.65, stream_fraction=0.3,
        ws_factor=6.0, gap=4, seed=seed,
    )


def _sphinx3(seed: int) -> WorkloadGenerator:
    return HotColdGenerator(
        "sphinx3", hot_factor=0.5, cold_factor=8.0, hot_probability=0.6, gap=3, seed=seed
    )


def _xalancbmk(seed: int) -> WorkloadGenerator:
    return HotColdGenerator(
        "xalancbmk", hot_factor=0.7, cold_factor=20.0, hot_probability=0.8,
        dependent_fraction=0.3, gap=4, seed=seed,
    )


# --- the compute-bound group (not in the single-thread subset) ----------


def _bwaves(seed: int) -> WorkloadGenerator:
    return StreamingGenerator(
        "bwaves", streams=2, ws_factor=10.0, write_fraction=0.5,
        touches_per_block=6, gap=5, seed=seed,
    )


def _calculix(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("calculix", ws_factor=0.25, gap=7, seed=seed)


def _dealii(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("dealII", ws_factor=0.4, gap=6, seed=seed)


def _gamess(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("gamess", ws_factor=0.08, gap=9, seed=seed)


def _gobmk(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("gobmk", ws_factor=0.5, gap=6, touches_per_block=2, seed=seed)


def _h264ref(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("h264ref", ws_factor=0.3, gap=5, seed=seed)


def _namd(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("namd", ws_factor=0.2, gap=8, seed=seed)


def _povray(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("povray", ws_factor=0.05, gap=10, seed=seed)


def _sjeng(seed: int) -> WorkloadGenerator:
    return UnpredictableGenerator(
        "sjeng", window_factor=0.5, new_probability=0.2, pc_pool=32,
        dependent_fraction=0.2, gap=8, seed=seed,
    )


def _tonto(seed: int) -> WorkloadGenerator:
    return SmallFootprintGenerator("tonto", ws_factor=0.15, gap=8, seed=seed)


_FACTORIES: Dict[str, GeneratorFactory] = {
    "perlbench": _perlbench,
    "bzip2": _bzip2,
    "gcc": _gcc,
    "bwaves": _bwaves,
    "gamess": _gamess,
    "mcf": _mcf,
    "milc": _milc,
    "zeusmp": _zeusmp,
    "gromacs": _gromacs,
    "cactusADM": _cactusadm,
    "leslie3d": _leslie3d,
    "namd": _namd,
    "gobmk": _gobmk,
    "dealII": _dealii,
    "soplex": _soplex,
    "povray": _povray,
    "calculix": _calculix,
    "hmmer": _hmmer,
    "sjeng": _sjeng,
    "GemsFDTD": _gemsfdtd,
    "libquantum": _libquantum,
    "h264ref": _h264ref,
    "tonto": _tonto,
    "lbm": _lbm,
    "omnetpp": _omnetpp,
    "astar": _astar,
    "wrf": _wrf,
    "sphinx3": _sphinx3,
    "xalancbmk": _xalancbmk,
}

#: All 29 benchmarks, in Table III order.
ALL_BENCHMARKS: Tuple[str, ...] = tuple(_FACTORIES)

#: The paper's memory-intensive subset (the boldface rows of Table III /
#: the x-axes of Figures 4, 5, 7, 8, 9).
SINGLE_THREAD_SUBSET: Tuple[str, ...] = (
    "perlbench",
    "bzip2",
    "gcc",
    "mcf",
    "milc",
    "zeusmp",
    "gromacs",
    "cactusADM",
    "leslie3d",
    "soplex",
    "hmmer",
    "GemsFDTD",
    "libquantum",
    "lbm",
    "omnetpp",
    "astar",
    "wrf",
    "sphinx3",
    "xalancbmk",
)


class UnknownWorkloadError(KeyError):
    """An unresolvable workload name, with a closest-match suggestion.

    Subclasses :class:`KeyError` for backward compatibility with callers
    that catch the suite's historical error, but renders like a normal
    message (``KeyError.__str__`` would repr-quote it).
    """

    def __str__(self) -> str:  # KeyError reprs its arg; we want prose.
        return self.args[0] if self.args else ""


def _unknown(name: str) -> UnknownWorkloadError:
    candidates = list(ALL_BENCHMARKS) + sorted(PATTERN_FAMILIES)
    matches = difflib.get_close_matches(name, candidates, n=1)
    hint = f"; did you mean {matches[0]!r}?" if matches else ""
    return UnknownWorkloadError(
        f"unknown workload {name!r}{hint} (registered benchmarks: "
        f"{', '.join(sorted(ALL_BENCHMARKS))}; pattern families: "
        f"{', '.join(sorted(PATTERN_FAMILIES))} -- "
        "parameterized specs look like 'zipf(a=1.2,seed=7)')"
    )


def resolve_workload(name: str, seed: int = 1) -> WorkloadGenerator:
    """Resolve a workload name -- suite benchmark or pattern spec.

    Plain names hit the 29-benchmark suite registry; names containing
    ``(`` parse as pattern/trace specs (``zipf(a=1.2)``,
    ``trace(name=foo)``).  ``seed`` seeds suite benchmarks directly and
    is the default for specs that do not pin ``seed=`` themselves.

    Raises:
        UnknownWorkloadError: name matches neither, with the sorted
            registry and a closest-match suggestion.
        WorkloadSpecError: a spec that parses to an unknown family or
            bad parameters.
    """
    factory = _FACTORIES.get(name)
    if factory is not None:
        return factory(seed)
    if "(" in name:
        return parse_workload_spec(name, seed=seed)
    if name in PATTERN_FAMILIES:
        # A bare family name is a valid all-defaults spec: "zipf".
        return parse_workload_spec(name, seed=seed)
    raise _unknown(name)


def generator_for(name: str, seed: int = 1) -> WorkloadGenerator:
    """Instantiate the generator for a benchmark name or pattern spec."""
    return resolve_workload(name, seed)


def validate_workloads(names) -> List[str]:
    """The sub-list of ``names`` that do not resolve (parse-only check).

    Used by the scheduler and CLI for fail-fast validation; trace specs
    are *syntax*-checked only (the library lookup happens at build time,
    possibly on another machine).
    """
    bad: List[str] = []
    for name in names:
        if name in _FACTORIES:
            continue
        try:
            resolve_workload(name)
        except WorkloadSpecError as error:
            # Library misses are build-time concerns, not syntax errors.
            if "not found in library" not in str(error):
                bad.append(f"{name}: {error}")
        except UnknownWorkloadError as error:
            bad.append(str(error))
        except (OSError, ValueError) as error:
            bad.append(f"{name}: {error}")
    return bad


def workload_spec(name: str, seed: int = 1) -> str:
    """The canonical identity of a workload name.

    Suite benchmarks are their own identity (their generators are code,
    versioned with the repo); pattern/trace workloads canonicalize to
    the fully-explicit spec.
    """
    generator = resolve_workload(name, seed)
    spec = getattr(generator, "spec", None)
    return spec() if callable(spec) else f"suite|{name}"


def workload_spec_digest(name: str, seed: int = 1) -> str:
    """16-hex digest of :func:`workload_spec` (stream-store key input)."""
    return hashlib.sha256(workload_spec(name, seed).encode("utf-8")).hexdigest()[:16]


def build_trace(
    name: str, instructions: int, llc_bytes: int, seed: int = 1
) -> Trace:
    """Generate a benchmark trace sized against ``llc_bytes``."""
    return resolve_workload(name, seed).generate(instructions, llc_bytes)
