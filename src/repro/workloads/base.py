"""Workload generator infrastructure.

Every synthetic benchmark is a :class:`WorkloadGenerator` subclass that
emits a :class:`~repro.sim.trace.Trace` through a :class:`TraceBuilder`.
Two conventions keep the suite honest as a dead-block-prediction testbed:

* **PC discipline**: each generator allocates a small pool of PCs (as a
  real loop nest would have) and uses them *consistently*, so last-touch
  PCs correlate with deadness exactly to the degree the archetype says
  they should;
* **relative sizing**: working sets are multiples of the LLC capacity, so
  the same generator puts the same pressure on the paper's 2MB LLC and on
  the scaled-down benchmark machine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.sim.trace import Trace, TraceRecord
from repro.utils.hashing import mix64
from repro.utils.rng import XorShift64

__all__ = ["TraceBuilder", "WorkloadGenerator"]


def _stable_hash(text: str) -> int:
    """A process-independent string hash (built-in ``hash`` is salted)."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value = mix64(value ^ byte)
    return value

#: Synthetic code and data segments: generators allocate PCs and data
#: regions relative to these bases.
CODE_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
BLOCK_BYTES = 64


class TraceBuilder:
    """Accumulates trace records against an instruction budget.

    The builder tracks total instructions (memory ops plus gaps); a
    generator loops until :attr:`exhausted` and then calls :meth:`build`.
    """

    __slots__ = ("budget", "instructions", "name", "records")

    def __init__(self, name: str, budget: int) -> None:
        if budget <= 0:
            raise ValueError(f"instruction budget must be positive, got {budget}")
        self.name = name
        self.budget = budget
        self.instructions = 0
        self.records: List[TraceRecord] = []

    @property
    def exhausted(self) -> bool:
        """True once the instruction budget has been consumed."""
        return self.instructions >= self.budget

    def load(self, pc: int, address: int, gap: int = 2, depends: bool = False) -> None:
        """Append a load preceded by ``gap`` non-memory instructions."""
        self.records.append(TraceRecord(pc, address, False, gap, depends))
        self.instructions += gap + 1

    def store(self, pc: int, address: int, gap: int = 2, depends: bool = False) -> None:
        """Append a store preceded by ``gap`` non-memory instructions."""
        self.records.append(TraceRecord(pc, address, True, gap, depends))
        self.instructions += gap + 1

    def compute(self, instructions: int) -> None:
        """Account a burst of non-memory work (attached to the next op)."""
        # Represented by inflating the next record's gap would complicate
        # generators; instead fold it into the running total and let the
        # next record carry gap 0.  Simpler: emit it as a gap-only record
        # is impossible, so we track it directly.
        if instructions < 0:
            raise ValueError(f"negative compute burst: {instructions}")
        self.instructions += instructions

    def build(self) -> Trace:
        """Finalize into a Trace."""
        trace = Trace(self.name, self.records)
        # `compute()` bursts are not carried by records; patch the count.
        if trace.instructions < self.instructions:
            trace.instructions = self.instructions
        return trace


class WorkloadGenerator(ABC):
    """Base class for synthetic benchmarks.

    Args:
        name: benchmark name ("mcf_like", ...).
        seed: RNG seed; the same (name, seed, budget, llc_bytes) always
            yields an identical trace.
    """

    def __init__(self, name: str, seed: int = 1) -> None:
        self.name = name
        self.seed = seed

    def _rng(self) -> XorShift64:
        """A fresh deterministic generator for one trace production."""
        mixed = _stable_hash(self.name) & 0xFFFF_FFFF
        return XorShift64((self.seed << 32) ^ mixed ^ 0xA5A5_5A5A)

    @abstractmethod
    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        """Produce a trace of roughly ``instructions`` instructions sized
        against an LLC of ``llc_bytes``."""

    # ------------------------------------------------------------------
    # helpers shared by the concrete generators
    # ------------------------------------------------------------------
    @staticmethod
    def region_blocks(llc_bytes: int, factor: float) -> int:
        """Number of 64B blocks in a region of ``factor`` x LLC capacity."""
        blocks = int(llc_bytes * factor) // BLOCK_BYTES
        return max(blocks, 1)

    def pc(self, index: int) -> int:
        """The ``index``-th PC of this generator's pool (4-byte spaced,
        namespaced by benchmark so suites do not alias)."""
        base = CODE_BASE + ((_stable_hash(self.name) & 0xFF) << 12)
        return base + 4 * index

    def data_region(self, region_index: int) -> int:
        """Base byte address of this generator's ``region_index``-th
        disjoint data region (1GB spacing: regions never collide).

        A per-benchmark offset is mixed into address bits 20..29 -- above
        any cache's index bits but *inside* the sampler's 15-bit partial
        tags -- so that two benchmarks marching over same-shaped arrays
        (as multiprogrammed mixes do) do not systematically collide in
        the sampler the way no two real programs' heaps would.
        """
        benchmark_offset = (_stable_hash(self.name) & 0x3FF) << 20
        return DATA_BASE + (region_index << 30) + benchmark_offset

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
