"""Archetype workload generators.

Each class models one memory-behaviour archetype found in SPEC CPU 2006;
:mod:`repro.workloads.suite` instantiates them with per-benchmark
parameters.  The archetypes were chosen for the properties that drive the
paper's experiments:

* whether a block's **last touch is PC-predictable** (the sampling
  predictor's food) or not (the 473.astar pathology);
* **working-set size relative to the LLC** (decides LRU-friendliness,
  thrashing, and how much headroom optimal replacement has);
* **reuse distance structure** (what the mid-level cache filters, which is
  what breaks trace-based prediction at the LLC);
* **dependence structure** (pointer chases serialize miss latency, scaling
  MPKI into IPC loss differently per benchmark).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.sim.trace import Trace
from repro.workloads.base import BLOCK_BYTES, TraceBuilder, WorkloadGenerator

__all__ = [
    "HotColdGenerator",
    "MixedPhaseGenerator",
    "PointerChaseGenerator",
    "ScanReuseGenerator",
    "SmallFootprintGenerator",
    "StencilGenerator",
    "StreamingGenerator",
    "ThrashGenerator",
    "UnpredictableGenerator",
]


class StreamingGenerator(WorkloadGenerator):
    """Sequential streams over arrays far larger than the LLC.

    Models 462.libquantum, 470.lbm, 433.milc, 410.bwaves: every block is
    touched in one short burst and never again before its (inevitable)
    eviction.  The burst's intra-block touches hit in the L1, so the LLC
    sees exactly one access per block from the stream PC -- the ideal
    bypass victim.

    Args:
        streams: concurrent sequential streams (arrays).
        ws_factor: total footprint as a multiple of LLC capacity.
        write_fraction: fraction of streams that also store to the block.
        touches_per_block: word-granularity touches per 64B block.
        gap: non-memory instructions between touches.
        revisit_probability: chance per step of re-reading a block
            ``revisit_distance_factor`` x LLC behind the front.  Real
            streaming codes (lattice updates, flux sweeps) are not
            perfectly touch-once; the distant re-reads are beyond LRU's
            reach but give *optimal* replacement its Table III headroom.
    """

    def __init__(
        self,
        name: str,
        streams: int = 2,
        ws_factor: float = 16.0,
        write_fraction: float = 0.25,
        touches_per_block: int = 4,
        gap: int = 3,
        revisit_probability: float = 0.08,
        revisit_distance_factor: float = 1.5,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        if streams < 1:
            raise ValueError(f"need at least one stream, got {streams}")
        self.streams = streams
        self.ws_factor = ws_factor
        self.write_fraction = write_fraction
        self.touches_per_block = max(1, touches_per_block)
        self.gap = gap
        self.revisit_probability = revisit_probability
        self.revisit_distance_factor = revisit_distance_factor

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        blocks_per_stream = self.region_blocks(llc_bytes, self.ws_factor) // self.streams
        blocks_per_stream = max(blocks_per_stream, 1)
        revisit_distance = min(
            self.region_blocks(llc_bytes, self.revisit_distance_factor),
            max(blocks_per_stream - 1, 1),
        )
        stride = max(BLOCK_BYTES // self.touches_per_block, 4)
        cursors = [0] * self.streams
        writes = int(self.streams * self.write_fraction)
        revisit_pc = self.pc(63)
        while not builder.exhausted:
            for stream in range(self.streams):
                base = self.data_region(stream)
                block_address = base + (cursors[stream] % blocks_per_stream) * BLOCK_BYTES
                pc = self.pc(stream * 4)
                for touch in range(self.touches_per_block):
                    builder.load(pc, block_address + touch * stride, gap=self.gap)
                if stream < writes:
                    builder.store(self.pc(stream * 4 + 1), block_address, gap=1)
                if (
                    cursors[stream] > revisit_distance
                    and rng.random() < self.revisit_probability
                ):
                    behind = (cursors[stream] - revisit_distance) % blocks_per_stream
                    builder.load(revisit_pc, base + behind * BLOCK_BYTES, gap=self.gap)
                cursors[stream] += 1
        return builder.build()


class ThrashGenerator(WorkloadGenerator):
    """A cyclic working set slightly larger than the LLC.

    The canonical LRU-pathological pattern (the case DIP was invented
    for): with ``ws_factor`` > 1 every re-reference distance exceeds the
    cache, so LRU misses on everything; policies that retain *part* of the
    working set (BIP insertion, or dead-block bypass keeping residents in
    place) convert a fraction of the pass into hits.
    """

    def __init__(
        self,
        name: str,
        ws_factor: float = 1.5,
        touches_per_block: int = 2,
        gap: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        self.ws_factor = ws_factor
        self.touches_per_block = max(1, touches_per_block)
        self.gap = gap

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        blocks = self.region_blocks(llc_bytes, self.ws_factor)
        base = self.data_region(0)
        stride = max(BLOCK_BYTES // self.touches_per_block, 4)
        pc = self.pc(0)
        cursor = 0
        while not builder.exhausted:
            address = base + (cursor % blocks) * BLOCK_BYTES
            for touch in range(self.touches_per_block):
                builder.load(pc, address + touch * stride, gap=self.gap)
            cursor += 1
        return builder.build()


class PointerChaseGenerator(WorkloadGenerator):
    """Dependent pointer traversal over a huge node pool.

    Models 429.mcf and the traversal half of 471.omnetpp: a random
    permutation cycle over ``ws_factor`` x LLC of nodes, walked with
    dependent loads (the timing model serializes the misses, which is why
    mcf's MPKI hurts so much).  A fraction of accesses touch a small hot
    structure (the arc/price arrays) that rewards keeping the pool out of
    the cache.
    """

    def __init__(
        self,
        name: str,
        ws_factor: float = 12.0,
        hot_factor: float = 0.4,
        hot_accesses_per_node: int = 2,
        gap: int = 6,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        self.ws_factor = ws_factor
        self.hot_factor = hot_factor
        self.hot_accesses_per_node = hot_accesses_per_node
        self.gap = gap

    def _permutation_step(self, node: int, node_count: int, rng_constant: int) -> int:
        """A fixed full-cycle permutation: multiplicative LCG step."""
        return (node * 0x2545F491 + rng_constant) % node_count

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        node_count = self.region_blocks(llc_bytes, self.ws_factor)
        hot_blocks = self.region_blocks(llc_bytes, self.hot_factor)
        pool_base = self.data_region(0)
        hot_base = self.data_region(1)
        chase_pc = self.pc(0)
        hot_pcs = [self.pc(4 + k) for k in range(4)]
        node = rng.randrange(node_count)
        step_constant = 0x9E3779B9 | 1
        while not builder.exhausted:
            address = pool_base + node * BLOCK_BYTES
            builder.load(chase_pc, address, gap=self.gap, depends=True)
            for k in range(self.hot_accesses_per_node):
                hot_block = rng.randrange(hot_blocks)
                builder.load(
                    hot_pcs[k % len(hot_pcs)],
                    hot_base + hot_block * BLOCK_BYTES,
                    gap=2,
                )
            node = self._permutation_step(node, node_count, step_constant)
        return builder.build()


class ScanReuseGenerator(WorkloadGenerator):
    """A re-used hot working set periodically thrashed by scans.

    Models 456.hmmer (the paper's Figure 1 benchmark), 401.bzip2, and
    450.soplex: a hot region smaller than the LLC is swept repeatedly
    (those re-touches miss the L2 but should hit the LLC), interleaved
    with bursty single-touch scans several times the LLC.  LRU lets each
    scan destroy the hot set; dead-block bypass learns the scan PC and
    keeps the hot set resident -- this is where the sampler's headline
    gains come from.

    Args:
        hot_factor: hot region size as a multiple of LLC capacity (< 1).
        scan_factor: per-round scan volume as a multiple of LLC capacity.
        hot_passes: sweeps over the hot region per round (>= 2 keeps the
            hot PC's sampler trainings balanced, as real reuse does).
        hot_touch_probability: chance a hot block is touched in a given
            pass; < 1 makes per-generation touch counts vary, which is
            what starves count-based predictors of confidence and makes
            trace signatures drift (real programs are never metronomes).
        echo_probability / echo_distance_factor: each hot touch also
            re-reads the block ``echo_distance_factor`` x LLC behind it
            with this probability.  This shallow reuse band sits above the
            private L2's reach but within the sampler's 12-way reach even
            when co-runners inflate shared-LLC set depths 4x -- the
            multi-scale locality real loop nests have, and what keeps hot
            PCs trained live in multiprogrammed mixes (Figure 10).
    """

    def __init__(
        self,
        name: str,
        hot_factor: float = 0.5,
        scan_factor: float = 2.0,
        hot_passes: int = 2,
        hot_touch_probability: float = 0.85,
        echo_probability: float = 0.4,
        echo_distance_factor: float = 0.15,
        touches_per_block: int = 2,
        gap: int = 3,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        self.hot_factor = hot_factor
        self.scan_factor = scan_factor
        self.hot_passes = max(1, hot_passes)
        self.hot_touch_probability = hot_touch_probability
        self.echo_probability = echo_probability
        self.echo_distance_factor = echo_distance_factor
        self.touches_per_block = max(1, touches_per_block)
        self.gap = gap

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        hot_blocks = self.region_blocks(llc_bytes, self.hot_factor)
        scan_blocks_per_round = self.region_blocks(llc_bytes, self.scan_factor)
        hot_base = self.data_region(0)
        scan_base = self.data_region(1)
        stride = max(BLOCK_BYTES // self.touches_per_block, 4)
        # Four hot PCs keyed by block, as a real multi-statement loop body
        # would have; this also keeps any one PC's sampler-training swing
        # well under the dead threshold.
        hot_pcs = [self.pc(k) for k in range(4)]
        scan_pc = self.pc(8)
        scan_cursor = 0
        echo_blocks = min(
            self.region_blocks(llc_bytes, self.echo_distance_factor),
            max(hot_blocks - 1, 1),
        )
        while not builder.exhausted:
            for _ in range(self.hot_passes):
                for block in range(hot_blocks):
                    if rng.random() >= self.hot_touch_probability:
                        continue
                    address = hot_base + block * BLOCK_BYTES
                    pc = hot_pcs[block & 3]
                    for touch in range(self.touches_per_block):
                        builder.load(pc, address + touch * stride, gap=self.gap)
                    if rng.random() < self.echo_probability:
                        echo = (block - echo_blocks) % hot_blocks
                        builder.load(
                            hot_pcs[echo & 3],
                            hot_base + echo * BLOCK_BYTES,
                            gap=self.gap,
                        )
                    if builder.exhausted:
                        break
                if builder.exhausted:
                    break
            for _ in range(scan_blocks_per_round):
                address = scan_base + (scan_cursor % (scan_blocks_per_round * 64)) * BLOCK_BYTES
                builder.load(scan_pc, address, gap=self.gap)
                scan_cursor += 1
                if builder.exhausted:
                    break
        return builder.build()


class StencilGenerator(WorkloadGenerator):
    """Plane-sweep stencil with a near and a far trailing front.

    Models 434.zeusmp, 437.leslie3d, 436.cactusADM, 459.GemsFDTD, 481.wrf.
    Each grid step, the sweep:

    * produces block *b* (store, PC *A*);
    * re-reads the *near* neighbor plane ``near_factor`` x LLC behind the
      front -- with the **same PC pool A**, as real stencil loop bodies
      reuse their load PCs across planes (probability ``near_probability``);
    * re-reads the *far* plane ``far_factor`` x LLC behind (PC *F*),
      after which the block is dead (probability ``far_probability``);
    * streams boundary data that is never reused (PC *B*, rate
      ``stream_fraction``).

    The statistics that matter: the near re-use is shallow (every policy,
    and the sampler, sees it); the far re-use sits just beyond the LLC's
    raw LRU depth, so capturing it requires evicting the post-far dead
    blocks and bypassing the boundary -- the DBRB opportunity.  Because PC
    *A* ends some generations (when the far touch is skipped) and extends
    others, aggressive predictors that fire at low confidence kill live
    blocks here, while the sampler's threshold-8 conservatism holds off --
    the Section VII-C accuracy story in miniature.
    """

    def __init__(
        self,
        name: str,
        near_factor: float = 0.12,
        far_factor: float = 0.46,
        stream_fraction: float = 0.3,
        near_probability: float = 0.9,
        far_probability: float = 0.85,
        ws_factor: float = 8.0,
        gap: int = 3,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        if not 0 < near_factor < far_factor:
            raise ValueError(
                f"need 0 < near_factor < far_factor, got {near_factor}, {far_factor}"
            )
        self.near_factor = near_factor
        self.far_factor = far_factor
        self.stream_fraction = stream_fraction
        self.near_probability = near_probability
        self.far_probability = far_probability
        self.ws_factor = ws_factor
        self.gap = gap

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        grid_blocks = self.region_blocks(llc_bytes, self.ws_factor)
        near_blocks = self.region_blocks(llc_bytes, self.near_factor)
        far_blocks = self.region_blocks(llc_bytes, self.far_factor)
        grid_base = self.data_region(0)
        boundary_base = self.data_region(1)
        # PC pool A covers both the producing store and the near re-read.
        pcs_a = [self.pc(0), self.pc(1)]
        far_pc = self.pc(4)
        boundary_pc = self.pc(8)
        boundary_blocks = self.region_blocks(llc_bytes, self.ws_factor * 2)
        cursor = 0
        boundary_cursor = 0
        while not builder.exhausted:
            lead = cursor % grid_blocks
            builder.store(pcs_a[lead & 1], grid_base + lead * BLOCK_BYTES, gap=self.gap)
            if cursor >= near_blocks and rng.random() < self.near_probability:
                near = (cursor - near_blocks) % grid_blocks
                builder.load(
                    pcs_a[near & 1], grid_base + near * BLOCK_BYTES, gap=self.gap
                )
            if cursor >= far_blocks and rng.random() < self.far_probability:
                far = (cursor - far_blocks) % grid_blocks
                builder.load(far_pc, grid_base + far * BLOCK_BYTES, gap=self.gap)
            if rng.random() < self.stream_fraction:
                address = boundary_base + (boundary_cursor % boundary_blocks) * BLOCK_BYTES
                builder.load(boundary_pc, address, gap=2)
                boundary_cursor += 1
            cursor += 1
        return builder.build()


class HotColdGenerator(WorkloadGenerator):
    """Skewed random accesses: a resident hot region vs. a vast cold one.

    Models 471.omnetpp's event structures, 483.xalancbmk's DOM tables, and
    482.sphinx3's acoustic scores: most references go to a hot region that
    *would* fit the LLC, but cold single-touch references (``1 -
    hot_probability`` of accesses) continuously erode it under LRU.
    """

    def __init__(
        self,
        name: str,
        hot_factor: float = 0.7,
        cold_factor: float = 16.0,
        hot_probability: float = 0.75,
        dependent_fraction: float = 0.0,
        recent_fraction: float = 0.25,
        recent_window_factor: float = 0.25,
        gap: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        if not 0.0 < hot_probability < 1.0:
            raise ValueError(
                f"hot_probability must be in (0, 1), got {hot_probability}"
            )
        self.hot_factor = hot_factor
        self.cold_factor = cold_factor
        self.hot_probability = hot_probability
        self.dependent_fraction = dependent_fraction
        # Multi-scale locality: a fraction of hot references re-touch one
        # of the recently touched hot blocks, creating a shallow reuse
        # band (just above the private L2) that stays sampler-visible even
        # under shared-LLC depth inflation -- see ScanReuseGenerator's
        # echo_* discussion.
        self.recent_fraction = recent_fraction
        self.recent_window_factor = recent_window_factor
        self.gap = gap

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        hot_blocks = self.region_blocks(llc_bytes, self.hot_factor)
        cold_blocks = self.region_blocks(llc_bytes, self.cold_factor)
        hot_base = self.data_region(0)
        cold_base = self.data_region(1)
        hot_pcs = [self.pc(k) for k in range(4)]
        cold_pc = self.pc(8)
        cold_cursor = 0
        recent_window = max(
            self.region_blocks(llc_bytes, self.recent_window_factor), 1
        )
        recent = []
        recent_cursor = 0
        while not builder.exhausted:
            depends = rng.random() < self.dependent_fraction
            if rng.random() < self.hot_probability:
                if recent and rng.random() < self.recent_fraction:
                    block = recent[rng.randrange(len(recent))]
                else:
                    block = rng.randrange(hot_blocks)
                if len(recent) < recent_window:
                    recent.append(block)
                else:
                    recent[recent_cursor] = block
                    recent_cursor = (recent_cursor + 1) % recent_window
                builder.load(
                    hot_pcs[block & 3],
                    hot_base + block * BLOCK_BYTES,
                    gap=self.gap,
                    depends=depends,
                )
            else:
                # Cold references sweep; sweeping (vs. uniform random)
                # guarantees no accidental short-distance reuse.
                address = cold_base + (cold_cursor % cold_blocks) * BLOCK_BYTES
                builder.load(cold_pc, address, gap=self.gap, depends=depends)
                cold_cursor += 1
        return builder.build()


class UnpredictableGenerator(WorkloadGenerator):
    """PC-uncorrelated reference behaviour: the 473.astar pathology.

    Every access uses a random PC from a wide pool, so whether a given
    access is a block's last touch is statistically independent of the
    PC.  No PC-indexed predictor can beat its base rate here, so each
    predictor's *damage* is governed purely by how aggressively it
    predicts: reftrace's threshold-2 counters fire constantly and wreck
    recoverable hits (the paper's 473.astar blowup), while the sampler's
    threshold-8 confidence keeps coverage -- and therefore damage -- low
    (Section VII-C).

    The reference pattern is a *churning frontier*: new blocks are
    allocated continuously (graph expansion), and re-references target
    recently allocated blocks with a recency bias.  Recency bias is what
    makes mispredictions expensive -- the LRU victim is genuinely the best
    victim, so every block a predictor wrongly marks dead converts a
    future hit into a miss.

    Args:
        window_factor: size of the actively re-referenced recent window,
            as a multiple of LLC capacity.
        new_probability: chance an access allocates a fresh frontier block
            instead of re-referencing the window.
        recency_exponent: re-references pick ``frontier - 1 -
            int(u**recency_exponent * window)``; higher = stronger bias
            toward the newest blocks.
    """

    def __init__(
        self,
        name: str,
        ws_factor: float = 1.5,  # kept for storage sizing of the region
        window_factor: float = 0.9,
        new_probability: float = 0.3,
        recency_exponent: float = 2.0,
        pc_pool: int = 48,
        dependent_fraction: float = 0.5,
        gap: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        self.ws_factor = ws_factor
        self.window_factor = window_factor
        self.new_probability = new_probability
        self.recency_exponent = recency_exponent
        self.pc_pool = max(2, pc_pool)
        self.dependent_fraction = dependent_fraction
        self.gap = gap

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        window_blocks = self.region_blocks(llc_bytes, self.window_factor)
        base = self.data_region(0)
        pcs = [self.pc(k) for k in range(self.pc_pool)]
        frontier = 0
        while not builder.exhausted:
            if frontier == 0 or rng.random() < self.new_probability:
                block = frontier
                frontier += 1
            else:
                reach = min(window_blocks, frontier)
                offset = int((rng.random() ** self.recency_exponent) * reach)
                block = frontier - 1 - offset
            pc = pcs[rng.randrange(self.pc_pool)]
            depends = rng.random() < self.dependent_fraction
            builder.load(pc, base + block * BLOCK_BYTES, gap=self.gap, depends=depends)
        return builder.build()


class SmallFootprintGenerator(WorkloadGenerator):
    """Compute-bound codes whose data fits comfortably above the LLC.

    Models 416.gamess, 453.povray, 444.namd, 465.tonto, 454.calculix,
    447.dealII, 464.h264ref, 435.gromacs, 445.gobmk: long non-memory gaps
    and a working set of ``ws_factor`` x LLC (well under 1), so the LLC
    sees almost nothing and no policy can help or hurt -- the "ten of the
    29 benchmarks experience no significant reduction" group of
    Section VI-A.1.
    """

    def __init__(
        self,
        name: str,
        ws_factor: float = 0.15,
        gap: int = 8,
        touches_per_block: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        self.ws_factor = ws_factor
        self.gap = gap
        self.touches_per_block = max(1, touches_per_block)

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        builder = TraceBuilder(self.name, instructions)
        rng = self._rng()
        blocks = self.region_blocks(llc_bytes, self.ws_factor)
        base = self.data_region(0)
        pcs = [self.pc(k) for k in range(6)]
        stride = max(BLOCK_BYTES // self.touches_per_block, 4)
        while not builder.exhausted:
            block = rng.randrange(blocks)
            address = base + block * BLOCK_BYTES
            pc = pcs[block % len(pcs)]
            for touch in range(self.touches_per_block):
                builder.load(pc, address + touch * stride, gap=self.gap)
        return builder.build()


class MixedPhaseGenerator(WorkloadGenerator):
    """Alternating program phases, each with its own archetype.

    Models 403.gcc, 400.perlbench, 401.bzip2's phase behaviour: the trace
    cycles through sub-generators, giving predictors non-stationary
    behaviour to track.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Tuple[WorkloadGenerator, float]],
        phase_instructions: int = None,
        seed: int = 1,
    ) -> None:
        super().__init__(name, seed)
        if not phases:
            raise ValueError("MixedPhaseGenerator needs at least one phase")
        self.phases = list(phases)
        # None = budget-proportional: each phase recurs ~twice per trace.
        # Real program phases last millions of instructions; pinning phase
        # length to a small constant would make phase churn an artifact of
        # short simulation budgets (predictors would spend every phase
        # re-learning), so the default scales with the trace.
        self.phase_instructions = phase_instructions

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        pieces: List[Trace] = []
        produced = 0
        phase_index = 0
        phase_budget = self.phase_instructions
        if phase_budget is None:
            phase_budget = max(instructions // (2 * len(self.phases)), 20_000)
        while produced < instructions:
            generator, weight = self.phases[phase_index % len(self.phases)]
            budget = min(
                max(int(phase_budget * weight), 1000),
                instructions - produced,
            )
            piece = generator.generate(budget, llc_bytes)
            pieces.append(piece)
            produced += piece.instructions
            phase_index += 1
        return Trace.concatenate(self.name, pieces)
