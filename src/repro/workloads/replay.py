"""External trace replay: bring-your-own traces as first-class workloads.

Two pieces:

* :class:`TraceLibrary` -- a tiny content-addressed store for imported
  trace files (``repro trace import``).  Traces live under a root
  directory (``REPRO_TRACE_LIB``, default ``.repro-traces``) as
  canonical gzip blobs named by the sha256 of their *canonical text
  serialization* (:func:`repro.sim.traceio.trace_lines`), with a JSON
  index mapping human names to digests.  Importing the same content
  twice -- from a ``.gz`` or plain file, under any filename -- lands on
  the same blob.

* :class:`TraceReplayWorkload` -- a
  :class:`~repro.workloads.base.WorkloadGenerator` that replays an
  imported (or directly referenced) trace file, truncating or looping it
  to the requested instruction budget.  Its canonical spec pins the
  trace's **content digest**, so a re-import of different content under
  the same library name changes every downstream key (checkpoint cells,
  stream-store blobs) instead of silently colliding.

Spec forms::

    trace(NAME)                     # library lookup by name
    trace(NAME,loop=true)           # wrap around instead of truncating
    trace(file=/path/to/file.gz)    # direct file reference (no library)

The canonical form always carries ``digest=<16 hex>``; a spec that pins
a digest is verified against the loaded content at generation time.

Fleet caveat: workers resolve ``trace(...)`` cells from *their own*
trace library (or the spec's literal ``file=`` path).  Compiled-stream
blobs travel by digest as usual, so a warm stream store hides this; a
cold fleet worker needs the trace library synced to its machine.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.sim.trace import Trace
from repro.sim.traceio import load_trace, trace_lines
from repro.workloads.base import WorkloadGenerator
from repro.workloads.patterns import (
    WorkloadSpecError,
    register_pattern_family,
    spec_digest,
)

__all__ = [
    "TraceLibrary",
    "TraceReplayWorkload",
    "default_trace_library",
    "trace_content_digest",
]

_ENV_ROOT = "REPRO_TRACE_LIB"
_DEFAULT_ROOT = ".repro-traces"
_DIGEST_CHARS = 16

# Digest memo keyed by (resolved path, size, mtime_ns): re-hashing a
# multi-MB trace on every cell of a sweep would dominate cold compiles.
_digest_cache: Dict[object, str] = {}


def trace_content_digest(trace: Trace) -> str:
    """sha256 (hex) of the trace's canonical text serialization."""
    digest = hashlib.sha256()
    for line in trace_lines(trace):
        digest.update(line.encode("ascii"))
    return digest.hexdigest()


def _digest_of_file(path: Path) -> str:
    stat = path.stat()
    key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns)
    cached = _digest_cache.get(key)
    if cached is None:
        cached = trace_content_digest(load_trace(path))
        _digest_cache[key] = cached
    return cached


class TraceLibrary:
    """Content-addressed store of imported traces.

    Layout::

        <root>/index.json                 name -> {digest, records,
                                                   instructions, source}
        <root>/blobs/<sha256>.trace.gz    canonical gzip blobs
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(_ENV_ROOT, "") or _DEFAULT_ROOT
        self.root = Path(root)
        self._index_path = self.root / "index.json"
        self._blob_dir = self.root / "blobs"

    # ------------------------------------------------------------------
    # index
    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, Dict[str, object]]:
        """The name -> metadata index (empty for a fresh library)."""
        try:
            with open(self._index_path, encoding="utf-8") as stream:
                index = json.load(stream)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"unreadable trace library index {self._index_path}: {error}")
        if not isinstance(index, dict):
            raise ValueError(f"corrupt trace library index {self._index_path}")
        return index

    def _write_index(self, index: Dict[str, Dict[str, object]]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._index_path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(index, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(tmp, self._index_path)

    def blob_path(self, digest: str) -> Path:
        return self._blob_dir / f"{digest}.trace.gz"

    # ------------------------------------------------------------------
    # import / load
    # ------------------------------------------------------------------
    def import_file(self, path: Union[str, Path], name: Optional[str] = None) -> Dict[str, object]:
        """Bring an external trace file under the library.

        The file is parsed (so malformed or truncated traces are
        rejected at import time with :mod:`~repro.sim.traceio`'s
        diagnostics), re-serialized canonically, and stored as a gzip
        blob named by its content digest.  Returns the index entry.
        """
        path = Path(path)
        trace = load_trace(path)
        entry_name = name or trace.name
        if not entry_name or any(c in entry_name for c in "|,()= \t"):
            raise ValueError(
                f"bad trace name {entry_name!r}: must be non-empty and free of "
                "'|', ',', parentheses, '=' and whitespace (it becomes part of "
                "workload spec strings)"
            )
        digest = trace_content_digest(trace)
        self._blob_dir.mkdir(parents=True, exist_ok=True)
        blob = self.blob_path(digest)
        if not blob.exists():
            tmp = blob.with_suffix(f".tmp.{os.getpid()}")
            # mtime=0 keeps the gzip bytes deterministic for a given trace.
            with gzip.GzipFile(tmp, "wb", mtime=0) as stream:
                for line in trace_lines(trace):
                    stream.write(line.encode("ascii"))
            os.replace(tmp, blob)
        index = self.entries()
        index[entry_name] = {
            "digest": digest,
            "records": len(trace.records),
            "instructions": trace.instructions,
            "source": str(path),
        }
        self._write_index(index)
        return index[entry_name]

    def lookup(self, name: str) -> Dict[str, object]:
        """The index entry for ``name`` (with a suggestion on a miss)."""
        import difflib

        index = self.entries()
        entry = index.get(name)
        if entry is None:
            known = ", ".join(sorted(index)) or "<library is empty>"
            matches = difflib.get_close_matches(name, list(index), n=1)
            hint = f"; did you mean {matches[0]!r}?" if matches else ""
            raise WorkloadSpecError(
                f"trace {name!r} not found in library {self.root} "
                f"(imported traces: {known}{hint})"
            )
        return entry

    def load(self, name: str) -> Trace:
        """Load the trace registered under ``name``."""
        entry = self.lookup(name)
        blob = self.blob_path(str(entry["digest"]))
        if not blob.exists():
            raise WorkloadSpecError(
                f"trace {name!r}: blob {blob} is missing (evicted or torn "
                "import); re-run `repro trace import`"
            )
        return load_trace(blob)


def default_trace_library() -> TraceLibrary:
    """The library named by ``REPRO_TRACE_LIB`` (default .repro-traces)."""
    return TraceLibrary()


class TraceReplayWorkload(WorkloadGenerator):
    """Replay an external trace as a workload.

    Args:
        source: a library trace name, or a direct file path when
            ``from_file`` is true.
        loop: wrap around when the trace is shorter than the requested
            budget (default: truncate -- the remaining budget is spent
            as trailing non-memory instructions).
        digest: expected content digest; filled automatically from the
            library/file, verified if supplied explicitly.
        library: the :class:`TraceLibrary` to resolve names in.
    """

    def __init__(
        self,
        source: str,
        loop: bool = False,
        seed: int = 1,
        digest: Optional[str] = None,
        from_file: bool = False,
        library: Optional[TraceLibrary] = None,
    ) -> None:
        self.source = str(source)
        self.loop = bool(loop)
        self.from_file = bool(from_file)
        self.library = library or default_trace_library()
        if from_file:
            actual = _digest_of_file(Path(self.source))[:_DIGEST_CHARS]
        else:
            actual = str(self.library.lookup(self.source)["digest"])[:_DIGEST_CHARS]
        if digest is not None and str(digest) != actual:
            raise WorkloadSpecError(
                f"trace {self.source!r}: content digest mismatch -- spec pins "
                f"{digest}, the trace content is {actual} (the trace was "
                "re-imported with different content; refresh the spec)"
            )
        self.digest = actual
        key = "file" if from_file else "name"
        loop_text = "true" if self.loop else "false"
        super().__init__(
            f"trace({key}={self.source},digest={self.digest},"
            f"loop={loop_text},seed={seed})",
            seed,
        )

    def spec(self) -> str:
        return self.name

    def spec_digest(self) -> str:
        return spec_digest(self.spec())

    def _load(self) -> Trace:
        if self.from_file:
            return load_trace(Path(self.source))
        return self.library.load(self.source)

    def generate(self, instructions: int, llc_bytes: int) -> Trace:
        source = self._load()
        if not source.records:
            raise WorkloadSpecError(f"trace {self.source!r} has no records")
        records: List = []
        consumed = 0
        while consumed < instructions:
            for record in source.records:
                records.append(record)
                consumed += record.gap + 1
                if consumed >= instructions:
                    break
            else:
                if not self.loop:
                    break
                continue
            break
        trace = Trace(self.name, records)
        if trace.instructions < instructions:
            # Truncation mode on a short trace: account the leftover
            # budget as trailing compute so IPC math stays comparable.
            trace.instructions = instructions
        return trace


def _trace_family(params: Dict[str, object], positional: List[object], seed: int):
    params = dict(params)
    name = params.pop("name", None)
    file_path = params.pop("file", None)
    if positional:
        if len(positional) > 1 or name is not None or file_path is not None:
            raise WorkloadSpecError(
                "trace: give exactly one source -- trace(NAME) or "
                "trace(file=PATH)"
            )
        name = positional[0]
    if (name is None) == (file_path is None):
        raise WorkloadSpecError(
            "trace: give exactly one source -- trace(NAME) or trace(file=PATH)"
        )
    digest = params.pop("digest", None)
    loop = params.pop("loop", False)
    seed_value = params.pop("seed", seed)
    if params:
        raise WorkloadSpecError(
            f"trace: unknown parameter(s) {', '.join(sorted(params))} "
            "(valid: name, file, digest, loop, seed)"
        )
    if not isinstance(loop, bool):
        raise WorkloadSpecError("trace: loop must be true or false")
    if not isinstance(seed_value, int):
        raise WorkloadSpecError("trace: seed must be an integer")
    return TraceReplayWorkload(
        str(file_path if name is None else name),
        loop=loop,
        seed=seed_value,
        digest=None if digest is None else str(digest),
        from_file=name is None,
    )


register_pattern_family("trace", _trace_family)
