"""The ten quad-core workload mixes of Table IV, plus ad-hoc mixes.

Benchmark composition is taken verbatim from the paper's Table IV; each
mix combines four single-thread benchmarks with a variety of cache
sensitivities (streamers, thrash, pointer chase, compute-bound), which is
what makes shared-LLC management interesting.

Beyond Table IV, any ``+``-separated list of workload names is a valid
ad-hoc mix -- ``mcf+hmmer+zipf(a=1.4)+seq(streams=8)`` -- one workload
per core, resolved through :func:`repro.workloads.suite.build_trace` so
suite benchmarks and pattern specs combine freely.
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Sequence, Tuple

from repro.sim.trace import Trace
from repro.workloads.suite import build_trace, validate_workloads

__all__ = ["MIXES", "MIX_NAMES", "build_mix_traces", "mix_members"]

#: Table IV, verbatim.
MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "mix1": ("mcf", "hmmer", "libquantum", "omnetpp"),
    "mix2": ("gobmk", "soplex", "libquantum", "lbm"),
    "mix3": ("zeusmp", "leslie3d", "libquantum", "xalancbmk"),
    "mix4": ("gamess", "cactusADM", "soplex", "libquantum"),
    "mix5": ("bzip2", "gamess", "mcf", "sphinx3"),
    "mix6": ("gcc", "calculix", "libquantum", "sphinx3"),
    "mix7": ("perlbench", "milc", "hmmer", "lbm"),
    "mix8": ("bzip2", "gcc", "gobmk", "lbm"),
    "mix9": ("gamess", "mcf", "tonto", "xalancbmk"),
    "mix10": ("milc", "namd", "sphinx3", "xalancbmk"),
}

MIX_NAMES: Tuple[str, ...] = tuple(MIXES)


def build_mix_traces(
    mix_name: str, instructions_per_core: int, llc_bytes: int, seed: int = 1
) -> List[Trace]:
    """Generate the four traces of a mix.

    ``llc_bytes`` should be the *per-core* LLC share (the paper sizes
    workloads against a 2MB/core budget even though the quad-core LLC is
    one shared 8MB array), so single-thread and multi-core runs use
    identical traces for a given machine scale.
    """
    names = mix_members(mix_name)
    return [
        build_trace(name, instructions_per_core, llc_bytes, seed=seed + core)
        for core, name in enumerate(names)
    ]


def _split_plus(text: str) -> List[str]:
    """Split an ad-hoc mix on ``+`` at parenthesis depth zero."""
    pieces: List[str] = []
    depth = 0
    start = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(depth - 1, 0)
        elif char == "+" and depth == 0:
            pieces.append(text[start:index].strip())
            start = index + 1
    pieces.append(text[start:].strip())
    return pieces


def mix_members(mix_name: str) -> Sequence[str]:
    """Resolve a mix name to its per-core workload names.

    Table IV names resolve from :data:`MIXES`; names containing ``+``
    are ad-hoc mixes whose members are validated individually.

    Raises:
        KeyError: unknown Table IV mix, with a closest-match suggestion.
        ValueError: an ad-hoc mix with an unresolvable member.
    """
    names = MIXES.get(mix_name)
    if names is not None:
        return names
    if "+" in mix_name:
        members = _split_plus(mix_name)
        if any(not member for member in members):
            raise ValueError(f"ad-hoc mix {mix_name!r} has an empty member")
        bad = validate_workloads(members)
        if bad:
            raise ValueError(
                f"ad-hoc mix {mix_name!r} has unresolvable members: "
                + "; ".join(bad)
            )
        return members
    matches = difflib.get_close_matches(mix_name, MIX_NAMES, n=1)
    hint = f"; did you mean {matches[0]!r}?" if matches else ""
    raise KeyError(
        f"unknown mix {mix_name!r}{hint} (known: {', '.join(MIX_NAMES)}; "
        "ad-hoc mixes join workload names with '+')"
    )
