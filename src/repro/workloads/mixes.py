"""The ten quad-core workload mixes of Table IV.

Benchmark composition is taken verbatim from the paper's Table IV; each
mix combines four single-thread benchmarks with a variety of cache
sensitivities (streamers, thrash, pointer chase, compute-bound), which is
what makes shared-LLC management interesting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.trace import Trace
from repro.workloads.suite import build_trace

__all__ = ["MIXES", "MIX_NAMES", "build_mix_traces"]

#: Table IV, verbatim.
MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "mix1": ("mcf", "hmmer", "libquantum", "omnetpp"),
    "mix2": ("gobmk", "soplex", "libquantum", "lbm"),
    "mix3": ("zeusmp", "leslie3d", "libquantum", "xalancbmk"),
    "mix4": ("gamess", "cactusADM", "soplex", "libquantum"),
    "mix5": ("bzip2", "gamess", "mcf", "sphinx3"),
    "mix6": ("gcc", "calculix", "libquantum", "sphinx3"),
    "mix7": ("perlbench", "milc", "hmmer", "lbm"),
    "mix8": ("bzip2", "gcc", "gobmk", "lbm"),
    "mix9": ("gamess", "mcf", "tonto", "xalancbmk"),
    "mix10": ("milc", "namd", "sphinx3", "xalancbmk"),
}

MIX_NAMES: Tuple[str, ...] = tuple(MIXES)


def build_mix_traces(
    mix_name: str, instructions_per_core: int, llc_bytes: int, seed: int = 1
) -> List[Trace]:
    """Generate the four traces of a mix.

    ``llc_bytes`` should be the *per-core* LLC share (the paper sizes
    workloads against a 2MB/core budget even though the quad-core LLC is
    one shared 8MB array), so single-thread and multi-core runs use
    identical traces for a given machine scale.
    """
    try:
        names = MIXES[mix_name]
    except KeyError:
        raise KeyError(
            f"unknown mix {mix_name!r}; known: {', '.join(MIX_NAMES)}"
        ) from None
    return [
        build_trace(name, instructions_per_core, llc_bytes, seed=seed + core)
        for core, name in enumerate(names)
    ]
