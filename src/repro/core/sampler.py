"""The sampler: a decoupled partial-tag array (paper Sections III-A to III-D).

The sampler tracks a small number of cache sets -- 32 sets for both the 2MB
single-core LLC and the 8MB quad-core LLC -- and is the *only* place the
predictor learns from.  Key properties straight from the paper:

* each sampler set corresponds to every ``num_cache_sets / 32``-th LLC set;
* entries hold 15-bit partial tags and 15-bit partial PCs plus a
  prediction bit, a valid bit, and LRU state;
* the sampler is LRU-managed regardless of the LLC's policy (a
  deterministic policy is easier to learn from -- Section III-B);
* its associativity need not match the LLC: 12 ways beats 16 because
  likely-dead tags leave the sampler sooner (Section III-B);
* tags never bypass the sampler -- every access to a sampled set is
  installed (Section V-B).

Training protocol on an access to a sampled set:

* **sampler hit**: the entry's recorded last-touch PC was *not* the last
  touch after all -> train "live" on the stored signature, overwrite the
  signature with the current PC, refresh the prediction bit, promote to MRU;
* **sampler miss**: victimize the LRU entry; if it was valid, its stored
  signature really did end the block's life in the sampler -> train "dead";
  install the new partial tag with the current PC's signature at MRU.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.skewed import SkewedCounterTable, skewed_indices
from repro.utils.bits import ilog2, mask
from repro.utils.hashing import fold_xor

__all__ = [
    "Sampler",
    "SamplerEntry",
    "partial_tag",
    "pc_signature",
    "simulate_sampled_stream",
]


@lru_cache(maxsize=None)
def pc_signature(pc: int, pc_bits: int) -> int:
    """Fold a PC to its table-index signature (process-wide memo).

    The fold is pure and the distinct-PC set of a workload is small, so
    one memo shared by the object-kernel sampler/predictor and the array
    path's prediction-plane precompute serves every technique of a sweep.
    """
    return fold_xor(pc, pc_bits)


def partial_tag(tag: int, tag_bits: int) -> int:
    """Lower-order bits of a full tag (paper Section III-A).

    Shared by the object-kernel sampler and the plane precompute; a
    single AND, so unlike :func:`pc_signature` a memo would cost more
    than the computation.
    """
    return tag & mask(tag_bits)


class SamplerEntry:
    """One sampler frame: partial tag, last-touch PC signature, bookkeeping."""

    __slots__ = ("partial_tag", "prediction", "signature", "valid")

    def __init__(self) -> None:
        self.valid = False
        self.partial_tag = 0
        self.signature = 0
        self.prediction = False

    def __repr__(self) -> str:
        if not self.valid:
            return "SamplerEntry(invalid)"
        return (
            f"SamplerEntry(tag={self.partial_tag:#06x}, "
            f"sig={self.signature:#06x}, dead={self.prediction})"
        )


class Sampler:
    """The sampling partial-tag array.

    Args:
        tables: the skewed counter tables trained by this sampler.
        num_sets: sampler sets (paper: 32).
        associativity: sampler ways (paper: 12; 16 for the ablation).
        tag_bits: partial tag width (paper: 15 -- "we observed no incorrect
            matches in any of the benchmarks").
        pc_bits: partial PC signature width (paper: 15).
        cache_sets: number of sets in the cache being sampled; used to
            derive which cache sets have a sampler set.
    """

    def __init__(
        self,
        tables: SkewedCounterTable,
        cache_sets: int,
        num_sets: int = 32,
        associativity: int = 12,
        tag_bits: int = 15,
        pc_bits: int = 15,
    ) -> None:
        if num_sets < 1:
            raise ValueError(f"sampler needs at least one set, got {num_sets}")
        if associativity < 1:
            raise ValueError(f"sampler needs at least one way, got {associativity}")
        if cache_sets < 1:
            raise ValueError(f"cache_sets must be positive, got {cache_sets}")
        self.tables = tables
        # A tiny test cache may have fewer sets than the sampler wants.
        self.num_sets = min(num_sets, cache_sets)
        self.associativity = associativity
        self.tag_bits = tag_bits
        self.pc_bits = pc_bits
        self.interval = max(1, cache_sets // self.num_sets)
        self._tag_mask = mask(tag_bits)
        self.sets: List[List[SamplerEntry]] = [
            [SamplerEntry() for _ in range(associativity)]
            for _ in range(self.num_sets)
        ]
        # LRU stacks, MRU first, mirroring repro.replacement.lru.
        self._stacks: List[List[int]] = [
            list(range(associativity)) for _ in range(self.num_sets)
        ]
        # Event counters used by the power model and the paper's claim that
        # <1.6% of LLC accesses update the predictor.
        self.accesses = 0
        self.hits = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # set mapping
    # ------------------------------------------------------------------
    def sampler_set_for(self, cache_set: int) -> Optional[int]:
        """Sampler set tracking ``cache_set``, or None if unsampled.

        Cache set ``k * interval`` maps to sampler set ``k`` -- e.g. every
        64th set of a 2,048-set cache (paper Section III-A).
        """
        if cache_set % self.interval != 0:
            return None
        sampler_set = cache_set // self.interval
        if sampler_set >= self.num_sets:
            return None
        return sampler_set

    # ------------------------------------------------------------------
    # signature arithmetic
    # ------------------------------------------------------------------
    def partial_tag(self, tag: int) -> int:
        """Lower-order bits of the full tag (paper Section III-A)."""
        return tag & self._tag_mask

    def pc_signature(self, pc: int) -> int:
        """Fold the PC to the signature width used to index the tables."""
        return pc_signature(pc, self.pc_bits)

    # ------------------------------------------------------------------
    # the access path
    # ------------------------------------------------------------------
    def access(self, sampler_set: int, tag: int, pc: int) -> None:
        """Process one access to a sampled cache set; trains the tables."""
        self.accesses += 1
        partial = self.partial_tag(tag)
        signature = self.pc_signature(pc)
        entries = self.sets[sampler_set]
        stack = self._stacks[sampler_set]

        for way, entry in enumerate(entries):
            if entry.valid and entry.partial_tag == partial:
                self.hits += 1
                # The stored signature was not the last touch: train live.
                self.tables.train(entry.signature, dead=False)
                entry.signature = signature
                entry.prediction = self.tables.predict(signature)
                stack.remove(way)
                stack.insert(0, way)
                return

        # Sampler miss: victimize LRU (tags never bypass the sampler).
        way = self._choose_victim(sampler_set)
        entry = entries[way]
        if entry.valid:
            self.evictions += 1
            # The victim's stored signature really was its last touch.
            self.tables.train(entry.signature, dead=True)
        entry.valid = True
        entry.partial_tag = partial
        entry.signature = signature
        entry.prediction = self.tables.predict(signature)
        stack.remove(way)
        stack.insert(0, way)

    def _choose_victim(self, sampler_set: int) -> int:
        for way, entry in enumerate(self.sets[sampler_set]):
            if not entry.valid:
                return way
        return self._stacks[sampler_set][-1]

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> Dict[str, float]:
        """Occupancy gauge plus cumulative event counters.

        ``*_count`` keys follow the interval-recorder convention
        (cumulative, differenced into per-epoch rates); occupancy is the
        fraction of sampler frames currently valid.
        """
        valid = sum(
            1 for entries in self.sets for entry in entries if entry.valid
        )
        return {
            "sampler_occupancy": valid / (self.num_sets * self.associativity),
            "sampler_access_count": self.accesses,
            "sampler_hit_count": self.hits,
            "sampler_eviction_count": self.evictions,
        }

    # ------------------------------------------------------------------
    # storage accounting (Table I: 6.75KB for the paper's configuration)
    # ------------------------------------------------------------------
    @property
    def entry_bits(self) -> int:
        """Bits per entry: partial tag + partial PC + prediction + valid +
        LRU position (paper Section IV-C)."""
        lru_bits = max(1, (self.associativity - 1).bit_length())
        return self.tag_bits + self.pc_bits + 1 + 1 + lru_bits

    @property
    def storage_bits(self) -> int:
        """Total sampler storage in bits."""
        return self.num_sets * self.associativity * self.entry_bits

    def __repr__(self) -> str:
        return (
            f"Sampler({self.num_sets}x{self.associativity}, "
            f"interval={self.interval})"
        )


# ----------------------------------------------------------------------
# batched plane construction for the array replay path
# ----------------------------------------------------------------------
def simulate_sampled_stream(
    set_indices: Sequence[int],
    tags: Sequence[int],
    pcs: Sequence[int],
    cache_sets: int,
    num_sets: int = 32,
    associativity: int = 12,
    tag_bits: int = 15,
    pc_bits: int = 15,
    num_tables: int = 3,
    entries_per_table: int = 4096,
    counter_bits: int = 2,
    threshold: int = 8,
) -> Tuple[
    bytearray,
    List[List[Tuple[int, int, bool]]],
    List[List[int]],
    List[List[int]],
    Tuple[int, int, int],
]:
    """One-pass batched replay of the sampler + skewed tables.

    With ``use_sampler=True`` the predictor trains *exclusively* through
    the sampler, and the sampler observes every access to a sampled set
    regardless of the LLC's hit/miss outcome (``touch`` samples on hits,
    ``predict_fill`` samples on misses -- tags never bypass the sampler,
    Section V-B -- and ``install`` does not sample).  Sampler and table
    evolution is therefore a pure function of the access stream,
    independent of LLC contents, so it can be simulated once per
    workload and shared across every technique that wraps the default
    predictor -- the heart of the array-native DBRB kernel
    (:mod:`repro.sim.replay_array`).

    Returns ``(dead, sampler_ways, sampler_stacks, tables, counters)``:

    * ``dead[p]``: the prediction for access ``p``'s PC evaluated *after*
      position ``p``'s sampler update -- exactly the value the object
      path assigns on a hit (``touch``) and consults on a miss
      (``predict_fill``/``install``, identical within one access since
      no training separates them);
    * ``sampler_ways[s]``: the filled ways of sampler set ``s`` in way
      order, as ``(partial_tag, signature, prediction)`` triples;
    * ``sampler_stacks[s]``: the final LRU stack (MRU first, a full way
      permutation, never-filled ways at the tail in way order);
    * ``tables``: the final per-bank counter lists;
    * ``counters``: ``(accesses, hits, evictions)`` event totals.

    Predictions are memoized per PC under a table *stamp* bumped only
    when a training event actually changes a counter, so the unsampled
    ~98.4% of accesses cost one dict probe each.
    """
    eff_sets = min(num_sets, cache_sets)
    interval = max(1, cache_sets // eff_sets)
    index_bits = ilog2(entries_per_table)
    counter_max = (1 << counter_bits) - 1
    tag_mask = mask(tag_bits)
    tables: List[List[int]] = [[0] * entries_per_table for _ in range(num_tables)]

    total = len(set_indices)
    dead = bytearray(total)
    tag_to_way: List[Dict[int, int]] = [{} for _ in range(eff_sets)]
    way_partial = [[0] * associativity for _ in range(eff_sets)]
    way_sig = [[0] * associativity for _ in range(eff_sets)]
    way_indices: List[List[Tuple[int, ...]]] = [
        [()] * associativity for _ in range(eff_sets)
    ]
    way_pred = [[False] * associativity for _ in range(eff_sets)]
    filled_by_set = [0] * eff_sets
    stacks = [list(range(associativity)) for _ in range(eff_sets)]
    accesses = hits = evictions = 0

    # pc -> (signature, per-bank indices); pc -> [stamp, prediction].
    pc_info: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    pc_info_get = pc_info.get
    pred_memo: Dict[int, List] = {}
    pred_memo_get = pred_memo.get
    stamp = 0

    for position in range(total):
        pc = pcs[position]
        info = pc_info_get(pc)
        if info is None:
            signature = pc_signature(pc, pc_bits)
            info = (signature, skewed_indices(signature, num_tables, index_bits))
            pc_info[pc] = info
        set_index = set_indices[position]
        if not set_index % interval:
            sampler_set = set_index // interval
            if sampler_set < eff_sets:
                accesses += 1
                partial = tags[position] & tag_mask
                lookup = tag_to_way[sampler_set]
                way = lookup.get(partial)
                stack = stacks[sampler_set]
                if way is not None:
                    # Sampler hit: the stored signature was not the last
                    # touch after all -> train live (decrement).
                    hits += 1
                    for table, idx in zip(tables, way_indices[sampler_set][way]):
                        value = table[idx]
                        if value > 0:
                            table[idx] = value - 1
                            stamp += 1
                else:
                    filled = filled_by_set[sampler_set]
                    if filled < associativity:
                        way = filled
                        filled_by_set[sampler_set] = filled + 1
                    else:
                        # Victimize LRU; its signature really did end the
                        # block's sampler life -> train dead (increment).
                        way = stack[-1]
                        evictions += 1
                        for table, idx in zip(
                            tables, way_indices[sampler_set][way]
                        ):
                            value = table[idx]
                            if value < counter_max:
                                table[idx] = value + 1
                                stamp += 1
                        del lookup[way_partial[sampler_set][way]]
                    lookup[partial] = way
                    way_partial[sampler_set][way] = partial
                signature, indices = info
                way_sig[sampler_set][way] = signature
                way_indices[sampler_set][way] = indices
                stack.remove(way)
                stack.insert(0, way)
                confidence = 0
                for table, idx in zip(tables, indices):
                    confidence += table[idx]
                prediction = confidence >= threshold
                way_pred[sampler_set][way] = prediction
                pred_memo[pc] = [stamp, prediction]
                dead[position] = prediction
                continue
        entry = pred_memo_get(pc)
        if entry is not None and entry[0] == stamp:
            dead[position] = entry[1]
            continue
        confidence = 0
        for table, idx in zip(tables, info[1]):
            confidence += table[idx]
        prediction = confidence >= threshold
        pred_memo[pc] = [stamp, prediction]
        dead[position] = prediction

    sampler_ways = [
        [
            (way_partial[s][way], way_sig[s][way], way_pred[s][way])
            for way in range(filled_by_set[s])
        ]
        for s in range(eff_sets)
    ]
    return dead, sampler_ways, stacks, tables, (accesses, hits, evictions)
