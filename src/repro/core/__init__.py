"""The paper's contribution: the sampling dead block predictor and the
dead-block replacement and bypass (DBRB) policy it drives.

Components map one-to-one onto Section III of the paper:

* :class:`SkewedCounterTable` -- three 4,096-entry tables of 2-bit
  saturating counters, each indexed by a different hash of the 15-bit
  prediction signature; a block is dead when the summed confidence meets a
  threshold of 8 (Section III-E).
* :class:`Sampler` -- the decoupled partial-tag array: 32 sets of 12 ways,
  15-bit partial tags and 15-bit partial PCs, LRU-managed, never bypassed
  (Sections III-A through III-D).
* :class:`SamplingDeadBlockPredictor` -- ties the two together and exposes
  the ablation knobs of Section VII-A.4 (sampler on/off, associativity,
  skewed vs single table).
* :class:`DBRBPolicy` -- dead block replacement and bypass over any default
  policy (LRU or random) and any predictor (Section V).
"""

from repro.core.policy import DBRBPolicy
from repro.core.predictor import SamplingDeadBlockPredictor
from repro.core.sampler import Sampler, SamplerEntry
from repro.core.skewed import SkewedCounterTable

__all__ = [
    "DBRBPolicy",
    "Sampler",
    "SamplerEntry",
    "SamplingDeadBlockPredictor",
    "SkewedCounterTable",
]
