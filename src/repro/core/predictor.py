"""The sampling dead block predictor (paper Section III).

The predictor answers "is this block dead?" from nothing but the PC of the
current access: fold the PC to a 15-bit signature, read the three skewed
counter tables, compare the summed confidence with the threshold.  All
*training* happens through the sampler on the ~1.6% of LLC accesses that
touch a sampled set; the LLC itself carries only one prediction bit per
block.

The constructor exposes every knob of the paper's Figure 6 ablation:

=====================  =====================================================
``use_sampler=False``  "DBRB alone": no sampler; the predictor learns from
                       every LLC access and eviction, keeping a last-PC
                       signature in each block's metadata (this is exactly
                       "the reftrace predictor using the last PC instead of
                       the trace signature", Section VII-A.4).
``skewed=False``       one 4x-larger table instead of three skewed tables.
``sampler_assoc=16``   sampler associativity matching the LLC instead of
                       the reduced 12 ways.
=====================  =====================================================
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.core.sampler import Sampler, pc_signature
from repro.core.skewed import SkewedCounterTable
from repro.predictors.base import DeadBlockPredictor

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["SamplingDeadBlockPredictor"]

_LAST_PC_KEY = "sdbp_last_pc"

#: Default table geometry (paper Section III-E / IV-C).
_SKEWED_TABLES = 3
_SKEWED_ENTRIES = 4096
_SKEWED_THRESHOLD = 8
#: Single-table ablation: one table, 4x the entries, threshold for a lone
#: 2-bit counter (the conventional weakly-dead threshold).
_SINGLE_ENTRIES = 4 * _SKEWED_ENTRIES
_SINGLE_THRESHOLD = 2


class SamplingDeadBlockPredictor(DeadBlockPredictor):
    """PC-indexed dead block predictor trained through a sampler.

    Args:
        sampler_sets: sampler sets (paper: 32).
        sampler_assoc: sampler ways (paper: 12).
        use_sampler: disable to learn from every LLC access (ablation).
        skewed: three skewed tables (True) or one 4x table (False).
        threshold: override the confidence threshold; None picks the
            paper's value for the chosen table organization.
        tag_bits / pc_bits: partial tag and signature widths (paper: 15).
    """

    name = "sampler"

    def __init__(
        self,
        sampler_sets: int = 32,
        sampler_assoc: int = 12,
        use_sampler: bool = True,
        skewed: bool = True,
        threshold: Optional[int] = None,
        tag_bits: int = 15,
        pc_bits: int = 15,
    ) -> None:
        super().__init__()
        if skewed:
            self.tables = SkewedCounterTable(
                num_tables=_SKEWED_TABLES,
                entries_per_table=_SKEWED_ENTRIES,
                threshold=threshold if threshold is not None else _SKEWED_THRESHOLD,
            )
        else:
            self.tables = SkewedCounterTable(
                num_tables=1,
                entries_per_table=_SINGLE_ENTRIES,
                threshold=threshold if threshold is not None else _SINGLE_THRESHOLD,
            )
        self.use_sampler = use_sampler
        self.skewed = skewed
        self._sampler_sets = sampler_sets
        self._sampler_assoc = sampler_assoc
        self._tag_bits = tag_bits
        self._pc_bits = pc_bits
        self.sampler: Optional[Sampler] = None

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        if self.use_sampler:
            self.sampler = Sampler(
                self.tables,
                cache_sets=cache.geometry.num_sets,
                num_sets=self._sampler_sets,
                associativity=self._sampler_assoc,
                tag_bits=self._tag_bits,
                pc_bits=self._pc_bits,
            )

    # ------------------------------------------------------------------
    # prediction: purely a function of the accessing PC
    # ------------------------------------------------------------------
    def _signature(self, pc: int) -> int:
        # Shared process-wide memo (repro.core.sampler.pc_signature): the
        # fold is pure and the distinct-PC set of a workload is small.
        return pc_signature(pc, self._pc_bits)

    def _predict(self, pc: int) -> bool:
        return self.tables.predict(self._signature(pc))

    def _sample(self, set_index: int, access: "CacheAccess") -> None:
        """Feed the access to the sampler when its set is sampled."""
        sampler = self.sampler
        if sampler is None:
            return
        # Inlined Sampler.sampler_set_for: this runs on every LLC access,
        # and only ~1.6% of sets are sampled, so the reject path must be
        # two integer ops, not a method call.
        interval = sampler.interval
        if set_index % interval:
            return
        sampler_set = set_index // interval
        if sampler_set < sampler.num_sets:
            sampler.access(
                sampler_set, self.cache.geometry.tag(access.address), access.pc
            )

    # ------------------------------------------------------------------
    # predictor events
    # ------------------------------------------------------------------
    def touch(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        if self.use_sampler:
            self._sample(set_index, access)
        else:
            block = self.cache.sets[set_index][way]
            previous = block.meta.get(_LAST_PC_KEY)
            if previous is not None:
                # Re-reference proves the previous PC was not the last touch.
                self.tables.train(previous, dead=False)
            block.meta[_LAST_PC_KEY] = self._signature(access.pc)
        return self._predict(access.pc)

    def predict_fill(self, set_index: int, access: "CacheAccess") -> bool:
        # NOTE: the sampler must still see bypassed accesses -- tags never
        # bypass the sampler (Section V-B) -- so sampling happens here, on
        # the *decision* path, rather than in install().
        if self.use_sampler:
            self._sample(set_index, access)
        return self._predict(access.pc)

    def install(self, set_index: int, way: int, access: "CacheAccess") -> bool:
        if not self.use_sampler:
            block = self.cache.sets[set_index][way]
            block.meta[_LAST_PC_KEY] = self._signature(access.pc)
        return self._predict(access.pc)

    def evicted(self, set_index: int, way: int, access: "CacheAccess") -> None:
        if self.use_sampler:
            return  # training comes exclusively from sampler evictions
        block = self.cache.sets[set_index][way]
        signature = block.meta.get(_LAST_PC_KEY)
        if signature is not None:
            self.tables.train(signature, dead=True)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> Dict[str, float]:
        """Sampler occupancy/event counters plus table-population gauges."""
        snapshot: Dict[str, float] = {}
        if self.sampler is not None:
            snapshot.update(self.sampler.telemetry_snapshot())
        snapshot.update(self.tables.telemetry_snapshot())
        return snapshot

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = []
        if self.use_sampler and self.sampler is not None:
            parts.append(
                f"sampler={self.sampler.num_sets}x{self.sampler.associativity}"
            )
        elif self.use_sampler:
            parts.append(f"sampler={self._sampler_sets}x{self._sampler_assoc}")
        else:
            parts.append("no-sampler")
        parts.append("skewed" if self.skewed else "single-table")
        return f"SamplingDeadBlockPredictor({', '.join(parts)})"
