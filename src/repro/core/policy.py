"""Dead-block replacement and bypass (DBRB), paper Section V.

The optimization, verbatim from the paper: "the replacement policy will
choose a dead block to be replaced before falling back on a default
replacement policy such as random or LRU, and a block that is predicted
dead on arrival will not be placed, i.e., it will bypass the LLC."

:class:`DBRBPolicy` is generic over both the *default policy* (LRU for
Figures 4-6 and 10a, random for Figures 7, 8, and 10b) and the *predictor*
(the sampling predictor, reftrace for "TDBP", counting for "CDBP"), which
is exactly how the paper constructs its comparison points (Table V).

Victim selection follows the counting-predictor convention the paper
adopts (Section II-A.4): among predicted-dead blocks choose the one
*closest to LRU*; with a non-LRU default policy, dead blocks are scanned
in way order.  If no block is predicted dead, the default policy's victim
is used.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.predictors.base import DeadBlockPredictor
from repro.replacement.base import ReplacementPolicy
from repro.replacement.lru import LRUPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import Cache, CacheAccess

__all__ = ["DBRBPolicy"]


class DBRBPolicy(ReplacementPolicy):
    """Dead-block replacement and bypass over a default policy.

    Args:
        default: the fallback replacement policy (LRU, random, PLRU, ...).
        predictor: any :class:`~repro.predictors.base.DeadBlockPredictor`.
        enable_bypass: let dead-on-arrival blocks skip the cache.
        enable_replacement: prefer predicted-dead victims.  (Both knobs on
            is the paper's configuration; they exist for ablations.)
    """

    def __init__(
        self,
        default: ReplacementPolicy,
        predictor: DeadBlockPredictor,
        enable_bypass: bool = True,
        enable_replacement: bool = True,
    ) -> None:
        super().__init__()
        self.default = default
        self.predictor = predictor
        self.enable_bypass = enable_bypass
        self.enable_replacement = enable_replacement

    def bind(self, cache: "Cache") -> None:
        super().bind(cache)
        self.default.bind(cache)
        self.predictor.bind(cache)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self.default.on_hit(set_index, way, access)
        block = self.cache.sets[set_index][way]
        block.predicted_dead = self.predictor.touch(set_index, way, access)

    def on_miss(self, set_index: int, access: "CacheAccess") -> None:
        self.default.on_miss(set_index, access)

    def should_bypass(self, set_index: int, access: "CacheAccess") -> bool:
        # The predictor is consulted on every miss even when bypass is off:
        # the sampling predictor's sampler must observe all accesses to its
        # sampled sets (Section V-B).
        dead_on_arrival = self.predictor.predict_fill(set_index, access)
        return self.enable_bypass and dead_on_arrival

    def choose_victim(self, set_index: int, access: "CacheAccess") -> int:
        if self.enable_replacement:
            dead_way = self._dead_victim(set_index, access)
            if dead_way is not None:
                return dead_way
        return self.default.choose_victim(set_index, access)

    def _dead_victim(self, set_index: int, access: "CacheAccess"):
        """Predicted-dead block closest to LRU, or None."""
        predictor = self.predictor
        now = access.seq
        if isinstance(self.default, LRUPolicy):
            # Walk from the LRU end of the recency stack.
            for way in reversed(self.default.recency_order(set_index)):
                if predictor.is_dead_now(set_index, way, now):
                    return way
            return None
        for way in range(self.cache.geometry.associativity):
            if predictor.is_dead_now(set_index, way, now):
                return way
        return None

    def on_fill(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self.default.on_fill(set_index, way, access)
        block = self.cache.sets[set_index][way]
        block.predicted_dead = self.predictor.install(set_index, way, access)

    def on_evict(self, set_index: int, way: int, access: "CacheAccess") -> None:
        self.default.on_evict(set_index, way, access)
        self.predictor.evicted(set_index, way, access)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> Dict[str, float]:
        """Merge the default policy's and the predictor's metrics."""
        snapshot = dict(self.default.telemetry_snapshot())
        snapshot.update(self.predictor.telemetry_snapshot())
        return snapshot

    def __repr__(self) -> str:
        return f"DBRBPolicy(default={self.default!r}, predictor={self.predictor!r})"
