"""The skewed prediction table (paper Section III-E).

"The predictor keeps three 4,096-entry tables of 2-bit counters, each
indexed by a different hash of a 15-bit signature.  Each access to the
predictor yields three counter values whose sum is used as a confidence
compared with a threshold; if the threshold is met, then the corresponding
block is predicted dead. [...] We find that a threshold of eight gives the
best accuracy."

The skew matters because two unrelated signatures that conflict in one
table are unlikely to conflict in all three, so destructive interference is
voted down.  A bonus the paper calls out: three tables give ten confidence
levels (0..9) instead of four, allowing a finer threshold.

The same class also models the *single-table* ablation configuration of
Figure 6 (``num_tables=1`` with a 4x larger table), where the paper's
"DBRB alone" predictor is one 2-bit counter table with a threshold of 2.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.utils.bits import ilog2
from repro.utils.hashing import skewed_hash

__all__ = ["SkewedCounterTable", "skewed_indices"]


@lru_cache(maxsize=None)
def skewed_indices(signature: int, num_tables: int, index_bits: int) -> Tuple[int, ...]:
    """Per-bank skewed table indices for ``signature``.

    A pure function of its arguments (the skew salts are fixed), shared
    process-wide: the object-kernel tables and the array path's
    prediction-plane precompute (:mod:`repro.cache.soa`) index through
    the same memo, so a sweep pays for each signature's three hashes
    once, not once per technique.  The signature space is 15 bits and
    the geometry arguments take two values in practice, so the cache is
    bounded at ~64K entries.
    """
    return tuple(
        skewed_hash(signature, table_index, index_bits)
        for table_index in range(num_tables)
    )


class SkewedCounterTable:
    """A bank of skew-indexed saturating counter tables.

    Args:
        num_tables: number of skewed banks (paper: 3; ablation: 1).
        entries_per_table: counters per bank (paper: 4,096; must be a
            power of two).
        counter_bits: counter width (paper: 2).
        threshold: summed confidence at or above which the prediction is
            "dead" (paper: 8 for three tables; 2 is the sensible default
            for one table).
    """

    def __init__(
        self,
        num_tables: int = 3,
        entries_per_table: int = 4096,
        counter_bits: int = 2,
        threshold: int = 8,
    ) -> None:
        if num_tables < 1:
            raise ValueError(f"need at least one table, got {num_tables}")
        self.num_tables = num_tables
        self.index_bits = ilog2(entries_per_table)
        self.counter_max = (1 << counter_bits) - 1
        max_confidence = num_tables * self.counter_max
        if not 0 < threshold <= max_confidence:
            raise ValueError(
                f"threshold {threshold} out of range (0, {max_confidence}]"
            )
        self.threshold = threshold
        self.tables: List[List[int]] = [
            [0] * entries_per_table for _ in range(num_tables)
        ]

    # ------------------------------------------------------------------
    def _indices(self, signature: int) -> Tuple[int, ...]:
        """Per-bank table indices for ``signature`` (process-wide memo)."""
        return skewed_indices(signature, self.num_tables, self.index_bits)

    def confidence(self, signature: int) -> int:
        """Summed counter value across the banks for ``signature``."""
        total = 0
        for table, index in zip(self.tables, self._indices(signature)):
            total += table[index]
        return total

    def predict(self, signature: int) -> bool:
        """True when ``signature``'s confidence meets the dead threshold."""
        total = 0
        for table, index in zip(self.tables, self._indices(signature)):
            total += table[index]
        return total >= self.threshold

    def train(self, signature: int, dead: bool) -> None:
        """Push every bank's counter toward dead (increment) or live
        (decrement), saturating."""
        maximum = self.counter_max
        for table, index in zip(self.tables, self._indices(signature)):
            value = table[index]
            if dead:
                if value < maximum:
                    table[index] = value + 1
            elif value > 0:
                table[index] = value - 1

    # ------------------------------------------------------------------
    def telemetry_snapshot(self) -> Dict[str, float]:
        """Counter-population gauges for the interval recorder.

        ``table_saturation`` is the fraction of counters pinned at their
        maximum (a saturated table stops learning "dead" -- the paper's
        2-bit choice banks on decay via live training); the mean counter
        tracks overall confidence drift.
        """
        counters = sum(len(table) for table in self.tables)
        saturated = 0
        total = 0
        for table in self.tables:
            for value in table:
                total += value
                if value == self.counter_max:
                    saturated += 1
        return {
            "table_saturation": saturated / counters,
            "table_mean_counter": total / counters,
        }

    # ------------------------------------------------------------------
    @property
    def storage_bits(self) -> int:
        """Total predictor-table storage in bits (for Table I accounting)."""
        counter_bits = ilog2(self.counter_max + 1)
        return self.num_tables * len(self.tables[0]) * counter_bits

    def __repr__(self) -> str:
        return (
            f"SkewedCounterTable({self.num_tables}x{len(self.tables[0])}, "
            f"threshold={self.threshold})"
        )
