#!/usr/bin/env python
"""Quad-core shared-LLC management (the paper's Figure 10 scenario).

Runs one of the paper's Table IV mixes on a shared LLC under shared-LRU,
TADIP, thread-aware RRIP, and sampler-driven DBRB, and reports per-core
IPC plus the normalized weighted speedup.  The same 32-set sampler used
for the single-core cache serves the 4x larger shared cache unmodified
(paper Section III-F).

Run:
    python examples/multicore_shared_llc.py [mix1..mix10]
"""

import sys

from repro.harness import ExperimentConfig, TECHNIQUES, WorkloadCache, format_table
from repro.workloads import MIXES


def main(argv) -> int:
    mix_name = argv[0] if argv else "mix1"
    if mix_name not in MIXES:
        print(f"unknown mix {mix_name!r}; choose from {', '.join(MIXES)}",
              file=sys.stderr)
        return 1

    config = ExperimentConfig(scale=8, instructions=200_000)
    cache = WorkloadCache(config)
    members = MIXES[mix_name]
    print(f"{mix_name}: {', '.join(members)}")
    print(f"shared LLC: {cache.multicore.shared_geometry.describe()}\n")

    prepared = cache.prepared_mix(mix_name)
    technique_keys = ("lru", "tadip", "rrip", "sampler")
    results = {}
    for key in technique_keys:
        technique = TECHNIQUES[key]
        results[key] = cache.multicore.run(
            prepared,
            lambda g, a, n, technique=technique: technique.build(g, a, n),
            technique_name=key,
        )

    baseline = results["lru"]
    rows = []
    for key in technique_keys:
        result = results[key]
        rows.append(
            [TECHNIQUES[key].label]
            + [round(ipc, 3) for ipc in result.ipcs]
            + [
                result.weighted_ipc / baseline.weighted_ipc,
                result.llc_stats.misses / baseline.llc_stats.misses,
            ]
        )
    headers = ["technique"] + [f"IPC:{name}" for name in members] + [
        "norm. weighted speedup",
        "norm. misses",
    ]
    print(format_table(headers, rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
