#!/usr/bin/env python
"""Visualize cache efficiency the way the paper's Figure 1 does.

Renders per-frame live-time ratios as an ASCII greyscale (rows are cache
sets, columns are ways; dark = the frame spent its time holding dead
blocks) for a baseline LRU cache and for the same cache driven by the
sampling dead block predictor.

Run:
    python examples/cache_efficiency.py [benchmark]
"""

import sys

from repro.analysis import render_greyscale
from repro.harness import ExperimentConfig, WorkloadCache, efficiency_experiment
from repro.workloads import ALL_BENCHMARKS


def main(argv) -> int:
    benchmark = argv[0] if argv else "hmmer"
    if benchmark not in ALL_BENCHMARKS:
        print(f"unknown benchmark {benchmark!r}", file=sys.stderr)
        return 1

    config = ExperimentConfig(scale=8, instructions=300_000)
    cache = WorkloadCache(config)
    print(f"measuring {benchmark} on {config.describe()}...\n")
    result = efficiency_experiment(cache, benchmark=benchmark)

    print(f"(a) LRU cache efficiency:          {result.lru_efficiency:6.1%}")
    print(f"(b) sampler-DBRB cache efficiency: {result.sampler_efficiency:6.1%}")
    print()
    print("LRU (darker = dead longer)          Sampler DBRB")
    left = render_greyscale(result.lru_matrix).split("\n")
    right = render_greyscale(result.sampler_matrix).split("\n")
    width = max(len(line) for line in left) + 20
    for a, b in zip(left, right):
        print(a.ljust(width) + b)
    print()
    print("The paper's Figure 1 reports 22% -> 87% for 456.hmmer on a 1MB")
    print("LRU cache; the direction and magnitude of the jump is the")
    print("reproduced property.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
