#!/usr/bin/env python
"""Quickstart: attach the sampling dead block predictor to an LLC.

Builds the paper's machine (scaled 1/8 for speed), runs the synthetic
hmmer workload -- the paper's Figure 1 subject -- under plain LRU and
under sampler-driven dead block replacement and bypass (DBRB), and prints
the miss and performance impact.

Run:
    python examples/quickstart.py
"""

from repro import (
    DBRBPolicy,
    LRUPolicy,
    MachineConfig,
    SamplingDeadBlockPredictor,
    SingleCoreSystem,
    build_trace,
)


def main() -> None:
    # 1. The machine: L1D + L2 + LLC, 4-wide out-of-order core
    #    (paper Section VI-A, scaled 1/8 so this runs in seconds).
    config = MachineConfig().scaled(8)
    system = SingleCoreSystem(config)
    print(f"machine: L1 {config.l1.describe()}, L2 {config.l2.describe()}, "
          f"LLC {config.llc.describe()}")

    # 2. A workload: the synthetic analogue of 456.hmmer (a hot working
    #    set periodically mauled by scans).
    trace = build_trace("hmmer", instructions=300_000,
                        llc_bytes=config.llc.size_bytes)
    print(f"workload: {trace}")

    # 3. One L1/L2 filtering pass serves every LLC policy we try.
    filtered = system.prepare(trace)
    print(f"filtered: {len(filtered.llc_indices):,} of {len(trace):,} "
          f"references reach the LLC")

    # 4. Baseline LRU vs sampler-driven DBRB.
    lru = system.run(filtered, lambda g, a: LRUPolicy(), "LRU")
    dbrb = system.run(
        filtered,
        lambda g, a: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
        "Sampler DBRB",
    )

    print()
    print(f"{'':14s}{'MPKI':>10s}{'IPC':>10s}{'bypasses':>10s}{'dead evictions':>16s}")
    for result in (lru, dbrb):
        print(f"{result.technique:14s}{result.mpki:10.2f}{result.ipc:10.3f}"
              f"{result.llc_stats.bypasses:10d}{result.llc_stats.dead_block_victims:16d}")
    print()
    print(f"miss reduction: {1 - dbrb.llc_stats.misses / lru.llc_stats.misses:.1%}")
    print(f"speedup:        {dbrb.ipc / lru.ipc:.3f}x")


if __name__ == "__main__":
    main()
