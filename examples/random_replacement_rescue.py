#!/usr/bin/env python
"""Rescue a randomly replaced cache with the sampling predictor.

The paper's Section VII-B pitch: true LRU is prohibitively expensive in a
16-way LLC, but a *random* default policy plus the sampling predictor's
one metadata bit per line beats the full LRU cache -- "1.71 bits per cache
line to deliver 7.5% fewer misses than the LRU policy".

This example measures that trade on a few workloads and also prints the
storage ledger behind the 1.71-bits claim.

Run:
    python examples/random_replacement_rescue.py
"""

from repro import (
    CacheGeometry,
    DBRBPolicy,
    LRUPolicy,
    MachineConfig,
    RandomPolicy,
    SamplingDeadBlockPredictor,
    SingleCoreSystem,
    build_trace,
)
from repro.harness import format_table
from repro.power import sampler_storage

BENCHMARKS = ("hmmer", "libquantum", "soplex", "sphinx3")


def main() -> None:
    config = MachineConfig().scaled(8)
    system = SingleCoreSystem(config)

    rows = []
    for name in BENCHMARKS:
        trace = build_trace(name, 250_000, config.llc.size_bytes)
        filtered = system.prepare(trace)
        lru = system.run(filtered, lambda g, a: LRUPolicy(), "lru")
        random_only = system.run(filtered, lambda g, a: RandomPolicy(), "random")
        random_sampler = system.run(
            filtered,
            lambda g, a: DBRBPolicy(RandomPolicy(), SamplingDeadBlockPredictor()),
            "random+sampler",
        )
        base = lru.llc_stats.misses or 1
        rows.append(
            [
                name,
                lru.mpki,
                random_only.llc_stats.misses / base,
                random_sampler.llc_stats.misses / base,
                random_sampler.ipc / lru.ipc if lru.ipc else 1.0,
            ]
        )
    print(
        format_table(
            ["benchmark", "LRU MPKI", "random / LRU", "random+sampler / LRU",
             "speedup vs LRU"],
            rows,
            title="A random-default cache, rescued (misses normalized to LRU)",
        )
    )

    # The bits-per-line ledger (paper Section VII-B.1).  The paper's
    # "1.71 bits per cache line" amortizes the prediction tables plus the
    # one metadata bit (3KB/32K lines + 1); including the sampler tag
    # array as well gives the larger figure below.
    paper_llc = CacheGeometry(2 * 1024 * 1024, 16, 64)
    breakdown = sampler_storage(paper_llc, sampler_sets=32)
    tables_bits = 3 * 4096 * 2
    print()
    print(f"tables + dead bit per line: "
          f"{tables_bits / paper_llc.num_blocks + 1:.2f} bits/line (paper: 1.71)")
    print(f"including the 32-set sampler array: "
          f"{breakdown.total_bits / paper_llc.num_blocks:.2f} bits/line")


if __name__ == "__main__":
    main()
