#!/usr/bin/env python
"""Prefetch into dead blocks (the paper's future-work direction).

The sampling predictor identifies frames whose occupants will not be
referenced again; a prefetcher can treat those frames as free capacity.
This example runs a streaming workload under three configurations --
plain LRU, sampler-DBRB, and sampler-DBRB plus next-block prefetching
into dead frames -- and shows the miss reduction compounding.

Run:
    python examples/dead_block_prefetching.py [benchmark]
"""

import sys

from repro import (
    Cache,
    DBRBPolicy,
    LRUPolicy,
    MachineConfig,
    SamplingDeadBlockPredictor,
    SingleCoreSystem,
    build_trace,
)
from repro.harness import format_table
from repro.prefetch import CorrelationPrefetcher, NextBlockPrefetcher, PrefetchEngine
from repro.sim.system import build_llc_accesses
from repro.workloads import ALL_BENCHMARKS


def main(argv) -> int:
    benchmark = argv[0] if argv else "milc"
    if benchmark not in ALL_BENCHMARKS:
        print(f"unknown benchmark {benchmark!r}", file=sys.stderr)
        return 1

    config = MachineConfig().scaled(8)
    system = SingleCoreSystem(config)
    trace = build_trace(benchmark, 250_000, config.llc.size_bytes)
    filtered = system.prepare(trace)
    accesses = build_llc_accesses(filtered)
    print(f"{benchmark}: {len(accesses):,} LLC accesses\n")

    def dbrb_policy(bypass):
        return DBRBPolicy(
            LRUPolicy(), SamplingDeadBlockPredictor(), enable_bypass=bypass
        )

    rows = []
    lru = Cache(config.llc, LRUPolicy(), "LLC")
    lru_misses = sum(0 if lru.access(a) else 1 for a in accesses)
    rows.append(["LRU", lru_misses, 1.0, None, None])

    dbrb = Cache(config.llc, dbrb_policy(bypass=True), "LLC")
    dbrb_misses = sum(0 if dbrb.access(a) else 1 for a in accesses)
    rows.append(["Sampler DBRB", dbrb_misses, dbrb_misses / lru_misses, None, None])

    for label, prefetcher in (
        ("DBRB + next-block pf", NextBlockPrefetcher(degree=2)),
        ("DBRB + correlation pf", CorrelationPrefetcher()),
    ):
        cache = Cache(config.llc, dbrb_policy(bypass=False), "LLC")
        engine = PrefetchEngine(cache, prefetcher)
        misses = sum(0 if hit else 1 for hit in engine.run(accesses))
        engine.finalize()
        rows.append(
            [label, misses, misses / lru_misses, engine.stats.issued,
             engine.stats.accuracy]
        )

    print(format_table(
        ["configuration", "LLC misses", "vs LRU", "prefetches", "pf accuracy"],
        rows,
        title="Dead-block-directed prefetching",
    ))
    print()
    print("Note: prefetch configurations disable bypass so that dead frames")
    print("stay available as prefetch targets instead of being skipped.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
