#!/usr/bin/env python
"""Compare the paper's cache-management techniques head-to-head.

Runs a few representative workloads -- a thrash pattern (libquantum), a
scan-vs-reuse pattern (hmmer), a pointer chase (mcf), and the
predictor-hostile astar -- under every Figure 4 technique and prints the
misses-normalized-to-LRU table, i.e. a four-benchmark slice of Figure 4.

Run:
    python examples/policy_comparison.py [benchmark ...]
"""

import sys

from repro.harness import (
    ExperimentConfig,
    SINGLE_THREAD_TECHNIQUES,
    TECHNIQUES,
    WorkloadCache,
    format_table,
    single_thread_comparison,
)
from repro.workloads import ALL_BENCHMARKS

DEFAULT_BENCHMARKS = ("libquantum", "hmmer", "mcf", "astar")


def main(argv) -> int:
    benchmarks = tuple(argv) or DEFAULT_BENCHMARKS
    unknown = [name for name in benchmarks if name not in ALL_BENCHMARKS]
    if unknown:
        print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_BENCHMARKS)}", file=sys.stderr)
        return 1

    config = ExperimentConfig(scale=8, instructions=250_000)
    cache = WorkloadCache(config)
    print(f"running on {config.describe()}; this takes a minute...\n")

    comparison = single_thread_comparison(
        cache, SINGLE_THREAD_TECHNIQUES, benchmarks=benchmarks
    )
    labels = [TECHNIQUES[key].label for key in SINGLE_THREAD_TECHNIQUES]
    print(
        format_table(
            ["benchmark"] + labels,
            comparison.mpki_rows(),
            title="LLC misses normalized to LRU (lower is better)",
        )
    )
    print()
    speed_keys = [
        key for key in SINGLE_THREAD_TECHNIQUES if TECHNIQUES[key].timing_meaningful
    ]
    print(
        format_table(
            ["benchmark"] + [TECHNIQUES[key].label for key in speed_keys],
            comparison.speedup_rows(technique_keys=speed_keys),
            title="Speedup over LRU (higher is better)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
