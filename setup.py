"""Setup shim.

The project is configured in ``pyproject.toml``; this file exists so that
environments without the ``wheel`` package (no PEP 517 editable builds) can
still do ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
