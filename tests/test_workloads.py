"""Tests for the synthetic workload suite."""

import pytest

from repro.workloads import (
    ALL_BENCHMARKS,
    MIXES,
    SINGLE_THREAD_SUBSET,
    build_mix_traces,
    build_trace,
    generator_for,
)
from repro.workloads.generators import (
    HotColdGenerator,
    PointerChaseGenerator,
    ScanReuseGenerator,
    StreamingGenerator,
    ThrashGenerator,
    UnpredictableGenerator,
)

LLC_BYTES = 256 * 1024  # the scaled benchmark machine's LLC


class TestSuiteStructure:
    def test_twenty_nine_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 29  # Table III rows

    def test_nineteen_in_subset(self):
        assert len(SINGLE_THREAD_SUBSET) == 19  # Figure 4's x-axis

    def test_subset_is_a_subset(self):
        assert set(SINGLE_THREAD_SUBSET) <= set(ALL_BENCHMARKS)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            generator_for("nonexistent")

    def test_mixes_match_table_iv(self):
        assert len(MIXES) == 10
        assert MIXES["mix1"] == ("mcf", "hmmer", "libquantum", "omnetpp")
        assert MIXES["mix7"] == ("perlbench", "milc", "hmmer", "lbm")

    def test_all_mix_members_exist(self):
        for members in MIXES.values():
            for name in members:
                assert name in ALL_BENCHMARKS

    def test_build_mix_traces(self):
        traces = build_mix_traces("mix1", 20_000, LLC_BYTES)
        assert len(traces) == 4
        assert [t.name for t in traces] == list(MIXES["mix1"])

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            build_mix_traces("mix99", 1000, LLC_BYTES)


class TestTraceProperties:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_every_benchmark_generates(self, name):
        trace = build_trace(name, 20_000, LLC_BYTES)
        assert len(trace) > 0
        # Budget respected within one iteration's slack.
        assert 20_000 <= trace.instructions < 26_000

    def test_determinism(self):
        a = build_trace("mcf", 15_000, LLC_BYTES, seed=7)
        b = build_trace("mcf", 15_000, LLC_BYTES, seed=7)
        assert a.records == b.records

    def test_seed_changes_trace(self):
        a = build_trace("omnetpp", 15_000, LLC_BYTES, seed=1)
        b = build_trace("omnetpp", 15_000, LLC_BYTES, seed=2)
        assert a.records != b.records

    def test_pointer_chase_is_dependent(self):
        trace = build_trace("mcf", 15_000, LLC_BYTES)
        dependent = sum(1 for record in trace if record.depends)
        assert dependent > len(trace) * 0.2

    def test_streaming_has_writes(self):
        trace = build_trace("lbm", 15_000, LLC_BYTES)
        writes = sum(1 for record in trace if record.is_write)
        assert writes > 0

    def test_small_footprint_stays_small(self):
        trace = build_trace("gamess", 20_000, LLC_BYTES)
        blocks = {record.address >> 6 for record in trace}
        assert len(blocks) * 64 < 0.2 * LLC_BYTES

    def test_streaming_footprint_is_huge(self):
        trace = build_trace("milc", 150_000, LLC_BYTES)
        blocks = {record.address >> 6 for record in trace}
        assert len(blocks) * 64 > 2 * LLC_BYTES

    def test_pc_pools_are_disjoint_across_benchmarks(self):
        pcs_a = {record.pc for record in build_trace("hmmer", 10_000, LLC_BYTES)}
        pcs_b = {record.pc for record in build_trace("mcf", 10_000, LLC_BYTES)}
        assert not (pcs_a & pcs_b)


class TestGeneratorValidation:
    def test_streaming_rejects_zero_streams(self):
        with pytest.raises(ValueError):
            StreamingGenerator("x", streams=0)

    def test_hotcold_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            HotColdGenerator("x", hot_probability=1.5)

    def test_mixed_phase_rejects_empty(self):
        from repro.workloads.generators import MixedPhaseGenerator

        with pytest.raises(ValueError):
            MixedPhaseGenerator("x", phases=[])


class TestArchetypeSignatures:
    """Each archetype must actually exhibit its defining statistic."""

    def test_thrash_has_cyclic_reuse(self):
        # One pass over 1.5x LLC costs ~60k instructions here; give the
        # budget for ~3 passes so the cycle is visible.
        trace = ThrashGenerator("t", ws_factor=1.5).generate(190_000, LLC_BYTES)
        blocks = [record.address >> 6 for record in trace]
        unique = len(set(blocks))
        assert len(blocks) > 2.5 * unique  # blocks revisited across passes
        assert unique * 64 > 1.2 * LLC_BYTES

    def test_scan_reuse_hot_blocks_rereferenced(self):
        generator = ScanReuseGenerator("t", hot_factor=0.4, scan_factor=1.0)
        trace = generator.generate(120_000, LLC_BYTES)
        from collections import Counter

        counts = Counter(record.address >> 6 for record in trace)
        multi = sum(1 for count in counts.values() if count >= 4)
        single = sum(1 for count in counts.values() if count == 1)
        assert multi > 0  # a reused hot set exists
        assert single > multi  # drowned in single-touch scan blocks

    def test_unpredictable_pc_block_independence(self):
        generator = UnpredictableGenerator("t", ws_factor=2.0, pc_pool=16)
        trace = generator.generate(30_000, LLC_BYTES)
        pcs = {record.pc for record in trace}
        assert len(pcs) == 16

    def test_pointer_chase_walks_whole_pool(self):
        generator = PointerChaseGenerator("t", ws_factor=4.0, hot_accesses_per_node=0)
        trace = generator.generate(60_000, LLC_BYTES)
        blocks = {record.address >> 6 for record in trace}
        # The permutation should touch a large share of distinct nodes.
        assert len(blocks) > 1000
