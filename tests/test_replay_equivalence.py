"""Golden equivalence of the replay kernel and the reference access loop.

``replay()`` promises bit-identical behavior to
``[cache.access(a) for a in accesses]`` for every replacement policy:
the same hit vector, the same :class:`CacheStats` (hits, misses,
bypasses, fills, evictions, writebacks, dead victims), the same block
contents.  These tests drive every policy family of the repo through
both paths on the same deterministic stream and compare everything.
"""

from __future__ import annotations

import pytest

from repro.cache.cache import Cache, CacheAccess, CacheObserver
from repro.cache.geometry import CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import (
    DIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    RandomPolicy,
    SHiPPolicy,
    TADIPPolicy,
    TreePLRUPolicy,
)
from repro.sim.replay import replay
from repro.utils.rng import XorShift64
from repro.vvc.cache import VictimRelocationCache

GEOMETRY = CacheGeometry(size_bytes=32 * 4 * 64, associativity=4, block_bytes=64)

#: name -> zero-argument policy factory; a fresh instance per path keeps
#: stateful policies (RNG streams, PSELs, predictor tables) comparable.
POLICIES = {
    "lru": lambda: LRUPolicy(),
    "random": lambda: RandomPolicy(),
    "plru": lambda: TreePLRUPolicy(),
    "dip": lambda: DIPPolicy(),
    "rrip": lambda: DRRIPPolicy(),
    "ship": lambda: SHiPPolicy(),
    "tadip": lambda: TADIPPolicy(num_cores=2),
    "dbrb": lambda: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
}


def make_stream(length: int = 8000, blocks: int = 300) -> list:
    """A deterministic mixed stream: reuse, conflicts, writes, streaming.

    Half the accesses reuse a working set (hits, evictions, writebacks);
    the other half stream through never-revisited blocks from a handful
    of PCs, which is what trains a dead-block predictor to bypass.
    """
    rng = XorShift64(0xC0FFEE)
    accesses = []
    next_cold_block = blocks
    for seq in range(length):
        if rng.randrange(2):
            block = rng.randrange(blocks)
            # Skew toward a hot subset so hits, evictions, and
            # writebacks all occur in quantity.
            if rng.randrange(4):
                block %= 48
            pc = 0x400000 + 8 * rng.randrange(24)
        else:
            block = next_cold_block
            next_cold_block += 1
            pc = 0x500000 + 8 * rng.randrange(4)
        accesses.append(
            CacheAccess(
                address=block * GEOMETRY.block_bytes,
                pc=pc,
                is_write=rng.randrange(5) == 0,
                seq=seq,
                core=seq % 2,
            )
        )
    return accesses


STREAM = make_stream()
SET_INDICES = [GEOMETRY.set_index(a.address) for a in STREAM]
TAGS = [GEOMETRY.tag(a.address) for a in STREAM]


def run_reference(policy_factory):
    cache = Cache(GEOMETRY, policy_factory(), name="ref")
    hits = [cache.access(access) for access in STREAM]
    return cache, hits


def assert_same_state(reference: Cache, replayed: Cache) -> None:
    assert reference.stats.snapshot() == replayed.stats.snapshot()
    for set_index in range(GEOMETRY.num_sets):
        for way in range(GEOMETRY.associativity):
            ref_block = reference.sets[set_index][way]
            new_block = replayed.sets[set_index][way]
            assert ref_block.valid == new_block.valid
            if ref_block.valid:
                assert ref_block.tag == new_block.tag
                assert ref_block.dirty == new_block.dirty
                assert ref_block.last_access_seq == new_block.last_access_seq
                assert ref_block.access_count == new_block.access_count


def assert_tag_index_coherent(cache: Cache) -> None:
    for set_index in range(GEOMETRY.num_sets):
        expected = {
            block.tag: way
            for way, block in enumerate(cache.sets[set_index])
            if block.valid
        }
        assert cache._tag_index[set_index] == expected


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_replay_matches_access_loop(name):
    policy_factory = POLICIES[name]
    reference, loop_hits = run_reference(policy_factory)

    replayed = Cache(GEOMETRY, policy_factory(), name="replay")
    replay_hits = replay(replayed, STREAM, SET_INDICES, TAGS)

    assert replay_hits == loop_hits
    assert_same_state(reference, replayed)
    assert_tag_index_coherent(reference)
    assert_tag_index_coherent(replayed)
    # The stream must have actually exercised the interesting paths.
    stats = replayed.stats
    assert stats.hits > 0 and stats.misses > 0
    assert stats.evictions > 0 and stats.writebacks > 0
    if name == "dbrb":
        assert stats.bypasses > 0


@pytest.mark.parametrize("name", ["lru", "dbrb"])
def test_replay_inline_decomposition_matches(name):
    """Without precomputed arrays the kernel derives (set, tag) itself."""
    policy_factory = POLICIES[name]
    _, loop_hits = run_reference(policy_factory)
    replayed = Cache(GEOMETRY, policy_factory(), name="replay")
    assert replay(replayed, STREAM) == loop_hits


def test_replay_validates_array_lengths():
    cache = Cache(GEOMETRY, LRUPolicy(), name="llc")
    with pytest.raises(ValueError):
        replay(cache, STREAM, SET_INDICES, None)
    with pytest.raises(ValueError):
        replay(cache, STREAM, SET_INDICES[:-1], TAGS[:-1])


class _CountingObserver(CacheObserver):
    def __init__(self):
        self.events = 0

    def on_hit(self, set_index, way, block, access):
        self.events += 1

    def on_fill(self, set_index, way, block, access):
        self.events += 1


def test_replay_with_observer_takes_reference_path():
    """Observers force the fallback loop and still see every event."""
    reference, loop_hits = run_reference(POLICIES["lru"])

    observed = Cache(GEOMETRY, LRUPolicy(), name="observed")
    observer = _CountingObserver()
    observed.add_observer(observer)
    hits = replay(observed, STREAM, SET_INDICES, TAGS)

    assert hits == loop_hits
    assert_same_state(reference, observed)
    stats = observed.stats
    assert observer.events == stats.hits + stats.fills


def test_replay_with_vvc_subclass_takes_reference_path():
    """Cache subclasses keep their overridden access semantics."""
    loop_cache = VictimRelocationCache(GEOMETRY, LRUPolicy())
    loop_hits = [loop_cache.access(access) for access in STREAM]

    replay_cache = VictimRelocationCache(GEOMETRY, LRUPolicy())
    replay_hits = replay(replay_cache, STREAM, SET_INDICES, TAGS)

    assert replay_hits == loop_hits
    assert loop_cache.stats.snapshot() == replay_cache.stats.snapshot()
    assert loop_cache.vvc_stats == replay_cache.vvc_stats
