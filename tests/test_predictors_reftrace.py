"""Tests for the reference-trace predictor (TDBP's engine)."""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy
from repro.predictors import RefTracePredictor
from repro.replacement import LRUPolicy


def small_cache(predictor, sets=4, assoc=2, bypass=True):
    geometry = CacheGeometry(size_bytes=sets * assoc * 64, associativity=assoc)
    policy = DBRBPolicy(LRUPolicy(), predictor, enable_bypass=bypass)
    return Cache(geometry, policy)


class TestConstruction:
    def test_paper_table_size(self):
        predictor = RefTracePredictor()
        assert len(predictor.table) == 2**15  # 8KB of 2-bit counters

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            RefTracePredictor(threshold=0)
        with pytest.raises(ValueError):
            RefTracePredictor(threshold=4)

    def test_rejects_bad_signature_bits(self):
        with pytest.raises(ValueError):
            RefTracePredictor(signature_bits=0)


class TestSignatures:
    def test_signature_is_truncated_sum_of_pcs(self):
        predictor = RefTracePredictor()
        first = predictor._initial_signature(0x400)
        extended = predictor._extend_signature(first, 0x500)
        expected = (
            predictor._initial_signature(0x400)
            + predictor._initial_signature(0x500)
        ) & predictor.signature_mask
        assert extended == expected

    def test_signature_order_sensitivity(self):
        # Sums commute, so A;B == B;A -- matching the original "truncated
        # sum" formulation.
        predictor = RefTracePredictor()
        ab = predictor._extend_signature(predictor._initial_signature(0xA), 0xB)
        ba = predictor._extend_signature(predictor._initial_signature(0xB), 0xA)
        assert ab == ba


class TestLearning:
    def test_learns_single_touch_death(self):
        """Blocks filled by one PC and never re-touched: after enough
        generations, new fills from that PC predict dead on arrival."""
        predictor = RefTracePredictor()
        cache = small_cache(predictor)
        stream_pc = 0x900
        # Stream distinct blocks through one set (set 0 of 4).
        for i in range(40):
            cache.access(CacheAccess(address=i * 4 * 64, pc=stream_pc, seq=i))
        assert predictor.predict_fill(0, CacheAccess(address=0, pc=stream_pc, seq=99))

    def test_bypass_engages_after_learning(self):
        predictor = RefTracePredictor()
        cache = small_cache(predictor)
        for i in range(40):
            cache.access(CacheAccess(address=i * 4 * 64, pc=0x900, seq=i))
        assert cache.stats.bypasses > 0

    def test_retouch_trains_live(self):
        """A block re-accessed after its 'last' touch must push its trace
        signature back toward live."""
        predictor = RefTracePredictor()
        # bypass off: the pre-trained "dead" PC must still get placed so the
        # re-touch can correct the table.
        cache = small_cache(predictor, sets=1, assoc=2, bypass=False)
        pc = 0x700
        signature = predictor._initial_signature(pc)
        predictor.table[signature] = 3  # pretend it learned "dead after fill"
        cache.access(CacheAccess(address=0, pc=pc, seq=0))     # fill
        cache.access(CacheAccess(address=0, pc=pc, seq=1))     # re-touch
        assert predictor.table[signature] == 2

    def test_eviction_trains_final_signature_dead(self):
        predictor = RefTracePredictor()
        cache = small_cache(predictor, sets=1, assoc=1)
        pc_a, pc_b = 0x10, 0x20
        cache.access(CacheAccess(address=0, pc=pc_a, seq=0))
        cache.access(CacheAccess(address=64, pc=pc_b, seq=1))  # evicts block 0
        final_signature = predictor._initial_signature(pc_a)
        assert predictor.table[final_signature] == 1

    def test_trace_confusion_with_filtered_stream(self):
        """The paper's Section VII-A.3 effect in miniature: when the same
        block's LLC trace varies between generations (mid-level filtering),
        the trace signature never stabilizes and the predictor learns
        nothing useful, while a last-PC scheme would."""
        predictor = RefTracePredictor()
        cache = small_cache(predictor, sets=1, assoc=1)
        pcs = [0x1, 0x2, 0x3, 0x4]
        seq = 0
        # Each generation the block sees a different-length prefix of pcs,
        # then is evicted by a conflicting block.
        for generation in range(12):
            prefix = 1 + generation % 3
            for pc in pcs[:prefix]:
                cache.access(CacheAccess(address=0, pc=pc, seq=seq))
                seq += 1
            cache.access(CacheAccess(address=64, pc=0x99, seq=seq))
            seq += 1
        # No final signature should have reached a confident dead state
        # except by accident: count the strongly trained entries.
        strong = sum(1 for value in predictor.table if value >= 2)
        assert strong <= 4  # a handful of scattered, conflicting signatures
