"""Unit tests for repro.utils.counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.counters import SaturatingCounter


class TestSaturatingCounter:
    def test_default_is_two_bit(self):
        counter = SaturatingCounter()
        assert counter.maximum == 3
        assert counter.value == 0

    def test_increment_saturates(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_saturated()

    def test_decrement_saturates_at_zero(self):
        counter = SaturatingCounter(bits=2, initial=1)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_increment_returns_new_value(self):
        counter = SaturatingCounter(bits=3)
        assert counter.increment() == 1
        assert counter.increment() == 2

    def test_initial_value_respected(self):
        assert SaturatingCounter(bits=4, initial=9).value == 9

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_reset(self):
        counter = SaturatingCounter(bits=2, initial=3)
        counter.reset()
        assert counter.value == 0
        counter.reset(2)
        assert counter.value == 2

    def test_reset_rejects_out_of_range(self):
        counter = SaturatingCounter(bits=2)
        with pytest.raises(ValueError):
            counter.reset(4)

    def test_int_conversion(self):
        assert int(SaturatingCounter(bits=2, initial=2)) == 2

    @given(st.integers(1, 8), st.lists(st.booleans(), max_size=200))
    def test_always_in_range(self, bits, operations):
        counter = SaturatingCounter(bits=bits)
        for up in operations:
            if up:
                counter.increment()
            else:
                counter.decrement()
            assert 0 <= counter.value <= counter.maximum
