"""Round-trip tests for :mod:`repro.harness.export`.

``export_json`` followed by ``json.load`` must preserve every field of
every serializable result kind -- the exported files feed the plotting
scripts, so a silently dropped or coerced field corrupts figures
downstream.  Result objects are synthesized with hand-picked values so
each assertion pins an exact number through the round trip.
"""

from __future__ import annotations

import json
import math
from types import SimpleNamespace

import pytest

from repro.harness.experiments import (
    AccuracyResult,
    EfficiencyResult,
    MulticoreComparison,
    SingleThreadComparison,
)
from repro.harness.export import export_json, to_dict
from repro.harness.faults import CellTimeout


def _run(misses: int, ipc: float) -> SimpleNamespace:
    """A RunResult stand-in with the attributes the accessors touch."""
    return SimpleNamespace(llc_stats=SimpleNamespace(misses=misses), ipc=ipc)


def _single_thread() -> SingleThreadComparison:
    return SingleThreadComparison(
        benchmarks=("mcf", "hmmer"),
        technique_keys=("sampler", "rrip"),
        baseline={"mcf": _run(1000, 0.5), "hmmer": _run(400, 1.0)},
        results={
            "mcf": {"sampler": _run(800, 0.6), "rrip": _run(900, 0.55)},
            "hmmer": {"sampler": _run(300, 1.2), "rrip": _run(380, 1.05)},
        },
        failures=(
            CellTimeout("mcf", "rrip", attempts=3, detail="cell exceeded 30s"),
        ),
    )


def _multicore() -> MulticoreComparison:
    def mc(misses, weighted_ipc):
        return SimpleNamespace(
            llc_stats=SimpleNamespace(misses=misses), weighted_ipc=weighted_ipc
        )

    return MulticoreComparison(
        mixes=("mix1", "mix2"),
        technique_keys=("sampler",),
        baseline={"mix1": mc(2000, 2.0), "mix2": mc(500, 3.0)},
        results={
            "mix1": {"sampler": mc(1500, 2.4)},
            "mix2": {"sampler": mc(450, 3.3)},
        },
    )


def _accuracy() -> AccuracyResult:
    return AccuracyResult(
        predictors=("reftrace", "sampler"),
        coverage={
            "reftrace": {"mcf": 0.9, "hmmer": 0.8},
            "sampler": {"mcf": 0.7, "hmmer": 0.6},
        },
        false_positive={
            "reftrace": {"mcf": 0.05, "hmmer": 0.1},
            "sampler": {"mcf": 0.2, "hmmer": 0.3},
        },
    )


def _efficiency() -> EfficiencyResult:
    return EfficiencyResult(
        benchmark="hmmer",
        lru_efficiency=0.22,
        sampler_efficiency=0.87,
        lru_matrix=[[0.1, 0.2], [0.3, 0.4]],
        sampler_matrix=[[0.5, 0.6], [0.7, 0.8]],
    )


@pytest.mark.parametrize(
    "factory", [_single_thread, _multicore, _accuracy, _efficiency],
    ids=["single_thread", "multicore", "accuracy", "efficiency"],
)
def test_export_json_roundtrip_is_lossless(factory, tmp_path):
    result = factory()
    path = tmp_path / "result.json"
    export_json(result, path)
    assert json.load(open(path)) == to_dict(result)


def test_single_thread_fields_survive(tmp_path):
    result = _single_thread()
    path = tmp_path / "st.json"
    export_json(result, path)
    data = json.load(open(path))

    assert data["kind"] == "single_thread_comparison"
    assert data["benchmarks"] == ["mcf", "hmmer"]
    assert data["techniques"] == ["sampler", "rrip"]
    assert data["normalized_mpki"]["mcf"]["sampler"] == 800 / 1000
    assert data["normalized_mpki"]["hmmer"]["rrip"] == 380 / 400
    assert data["speedup"]["mcf"]["sampler"] == 0.6 / 0.5
    assert data["mpki_amean"]["sampler"] == pytest.approx((0.8 + 0.75) / 2)
    assert data["speedup_gmean"]["sampler"] == pytest.approx(
        math.sqrt((0.6 / 0.5) * (1.2 / 1.0))
    )
    assert data["failures"] == [
        {
            "benchmark": "mcf",
            "technique": "rrip",
            "kind": "CellTimeout",
            "attempts": 3,
            "detail": "cell exceeded 30s",
        }
    ]


def test_multicore_fields_survive(tmp_path):
    result = _multicore()
    path = tmp_path / "mc.json"
    export_json(result, path)
    data = json.load(open(path))

    assert data["kind"] == "multicore_comparison"
    assert data["mixes"] == ["mix1", "mix2"]
    assert data["normalized_weighted_speedup"]["mix1"]["sampler"] == 2.4 / 2.0
    assert data["normalized_mpki"]["mix2"]["sampler"] == 450 / 500
    assert data["speedup_gmean"]["sampler"] == pytest.approx(
        math.sqrt((2.4 / 2.0) * (3.3 / 3.0))
    )


def test_accuracy_fields_survive(tmp_path):
    result = _accuracy()
    path = tmp_path / "acc.json"
    export_json(result, path)
    data = json.load(open(path))

    assert data["kind"] == "accuracy"
    assert data["predictors"] == ["reftrace", "sampler"]
    assert data["coverage"]["sampler"]["hmmer"] == 0.6
    assert data["false_positive"]["reftrace"]["mcf"] == 0.05
    assert data["mean_coverage"]["reftrace"] == pytest.approx(0.85)
    assert data["mean_false_positive"]["sampler"] == pytest.approx(0.25)


def test_efficiency_fields_survive(tmp_path):
    result = _efficiency()
    path = tmp_path / "eff.json"
    export_json(result, path)
    data = json.load(open(path))

    assert data["kind"] == "efficiency"
    assert data["benchmark"] == "hmmer"
    assert data["lru_efficiency"] == 0.22
    assert data["sampler_efficiency"] == 0.87
    assert data["lru_matrix"] == [[0.1, 0.2], [0.3, 0.4]]
    assert data["sampler_matrix"] == [[0.5, 0.6], [0.7, 0.8]]


def test_unknown_result_type_raises(tmp_path):
    with pytest.raises(TypeError, match="cannot serialize"):
        export_json(object(), tmp_path / "nope.json")


@pytest.mark.faults
def test_partial_sweep_with_dedup_hit_cells_roundtrips(tmp_path, monkeypatch):
    """A *real* partial sweep: checkpointed (dedup-hit) cells resumed off
    disk mixed with cells that failed unrecoverably.  The export must
    round-trip losslessly -- real numbers for the resumed cells, JSON
    ``null`` for the failed cells and for any mean that folds one in --
    instead of crashing on the missing cells.
    """
    from repro.harness.checkpoint import CheckpointStore
    from repro.harness.faults import FaultPolicy
    from repro.harness.parallel import parallel_single_thread_comparison
    from repro.harness.runner import ExperimentConfig

    config = ExperimentConfig(instructions=20_000)
    store = CheckpointStore(tmp_path / "ckpt")

    # Phase 1: complete the perlbench cells into the checkpoint store;
    # on resume they are the sweep's dedup hits.
    parallel_single_thread_comparison(
        config, ("rrip",), ("perlbench",), jobs=1, checkpoint=store
    )

    # Phase 2: resume over perlbench+mcf with every worker attempt
    # crashing and no degradation: perlbench comes off disk, every mcf
    # cell fails, and allow_partial returns the mixed result.
    monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:1.0")
    comparison = parallel_single_thread_comparison(
        config, ("rrip",), ("perlbench", "mcf"), jobs=2,
        checkpoint=store, resume=True,
        fault_policy=FaultPolicy(
            max_retries=0, watchdog=2.0, backoff=0.0, degrade_serially=False
        ),
        allow_partial=True,
    )
    assert comparison.is_partial
    assert "perlbench" in comparison.baseline and "mcf" not in comparison.baseline

    path = tmp_path / "partial.json"
    export_json(comparison, path)
    data = json.load(open(path))
    assert data == to_dict(comparison)

    assert data["normalized_mpki"]["perlbench"]["rrip"] is not None
    assert data["speedup"]["perlbench"]["rrip"] is not None
    assert data["normalized_mpki"]["mcf"]["rrip"] is None
    assert data["speedup"]["mcf"]["rrip"] is None
    assert data["mpki_amean"]["rrip"] is None
    assert data["speedup_gmean"]["rrip"] is None
    failed = {(f["benchmark"], f["technique"]) for f in data["failures"]}
    assert ("mcf", "rrip") in failed
