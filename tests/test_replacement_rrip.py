"""Tests for SRRIP / BRRIP / DRRIP."""

import pytest

from repro.cache import Cache, CacheAccess
from repro.replacement import BRRIPPolicy, DRRIPPolicy, LRUPolicy, SRRIPPolicy

from tests.conftest import replay, tiny_geometry


class TestSRRIP:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(rrpv_bits=0)

    def test_hit_resets_rrpv(self):
        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, SRRIPPolicy())
        replay(cache, [0, 0])
        assert cache.policy._rrpv[0][0] == 0

    def test_insertion_is_long_not_near(self):
        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, SRRIPPolicy())
        replay(cache, [0])
        assert cache.policy._rrpv[0][0] == cache.policy.rrpv_max - 1

    def test_victim_prefers_distant_block(self):
        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, SRRIPPolicy())
        # Fill both ways; re-reference block 0 so it is near (rrpv 0) while
        # block 1 stays long (rrpv 2).  The scan block must evict block 1.
        replay(cache, [0, 1, 0, 2])
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_aging_when_no_distant_block(self):
        geometry = tiny_geometry(sets=1, assoc=2)
        cache = Cache(geometry, SRRIPPolicy())
        replay(cache, [0, 1, 0, 1])  # both rrpv 0
        replay(cache, [2])
        # Aging adds 3 to both, leftmost (way 0) evicted.
        assert not cache.contains(0)
        assert cache.contains(64)

    def test_scan_resistance(self):
        """SRRIP's headline property: a one-time scan should not destroy a
        re-used working set, unlike LRU."""
        geometry = tiny_geometry(sets=1, assoc=4)
        working = [0, 1, 0, 1, 0, 1]
        scan = [10, 11, 12, 13]
        probe = [0, 1]
        srrip = Cache(geometry, SRRIPPolicy())
        lru = Cache(tiny_geometry(sets=1, assoc=4), LRUPolicy())
        for cache in (srrip, lru):
            replay(cache, working)
            replay(cache, scan)
        assert sum(replay(srrip, probe)) >= sum(replay(lru, probe))
        assert sum(replay(srrip, probe + probe)) >= 2


class TestBRRIP:
    def test_mostly_inserts_distant(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, BRRIPPolicy(epsilon_inverse=1000))
        replay(cache, [0])
        assert cache.policy._rrpv[0][0] == cache.policy.rrpv_max

    def test_epsilon_one_matches_srrip_insertion(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, BRRIPPolicy(epsilon_inverse=1))
        replay(cache, [0])
        assert cache.policy._rrpv[0][0] == cache.policy.rrpv_max - 1

    def test_brrip_survives_thrash_better_than_srrip(self):
        pattern = []
        for _ in range(60):
            pattern.extend(range(6))  # 6 blocks in a 4-way set
        srrip = Cache(tiny_geometry(sets=1, assoc=4), SRRIPPolicy())
        brrip = Cache(tiny_geometry(sets=1, assoc=4), BRRIPPolicy())
        assert sum(replay(brrip, pattern)) >= sum(replay(srrip, pattern))


class TestDRRIP:
    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            DRRIPPolicy(num_cores=0)

    def test_leader_sets_assigned(self):
        geometry = tiny_geometry(sets=64, assoc=4)
        policy = DRRIPPolicy(leader_sets=4)
        Cache(geometry, policy)
        owners = [o for o in policy._leader_owner if o != DRRIPPolicy._FOLLOWER]
        assert len(owners) == 8  # 4 SRRIP + 4 BRRIP leaders

    def test_psel_drifts_to_brrip_under_thrash(self):
        geometry = tiny_geometry(sets=16, assoc=4)
        policy = DRRIPPolicy(leader_sets=4, psel_bits=8)
        cache = Cache(geometry, policy)
        start = policy.psels[0]
        pattern = []
        for _ in range(40):
            pattern.extend(range(16 * 6))
        replay(cache, pattern)
        assert policy.psels[0] > start

    def test_multicore_psels_are_independent(self):
        geometry = tiny_geometry(sets=64, assoc=4)
        policy = DRRIPPolicy(num_cores=2, leader_sets=4, psel_bits=6)
        cache = Cache(geometry, policy)
        seq = 0
        for _ in range(40):
            for i in range(64 * 5):  # core 0 thrashes
                cache.access(CacheAccess(address=i * 64, pc=1, seq=seq, core=0))
                seq += 1
            for i in range(32):  # core 1 is friendly
                cache.access(
                    CacheAccess(address=(1 << 22) + i * 64, pc=2, seq=seq, core=1)
                )
                seq += 1
        assert policy._brrip_wins(0)
        assert not policy._brrip_wins(1)
