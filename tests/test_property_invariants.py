"""Property-based invariants across the whole cache/policy/predictor stack.

These run every policy and predictor combination against arbitrary access
strings and check the accounting identities and optimality bounds that
must hold regardless of workload.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.predictors import (
    AIPPredictor,
    BurstFilter,
    CountingPredictor,
    RefTracePredictor,
    TimeBasedPredictor,
)
from repro.replacement import (
    BIPPolicy,
    DIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    OptimalPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TADIPPolicy,
    TreePLRUPolicy,
    annotate_next_use,
)


def small_geometry() -> CacheGeometry:
    return CacheGeometry(4 * 2 * 64, 2, 64)


#: (block number, pc index) pairs; small domains force heavy conflict.
access_strings = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 5)),
    min_size=1,
    max_size=250,
)


def build_accesses(pairs, geometry):
    return [
        CacheAccess(
            address=block * geometry.block_bytes,
            pc=0x400 + 4 * pc,
            is_write=(block + pc) % 5 == 0,
            seq=seq,
        )
        for seq, (block, pc) in enumerate(pairs)
    ]


POLICY_FACTORIES = [
    ("lru", lambda g, a: LRUPolicy()),
    ("random", lambda g, a: RandomPolicy(seed=7)),
    ("plru", lambda g, a: TreePLRUPolicy()),
    ("bip", lambda g, a: BIPPolicy()),
    ("dip", lambda g, a: DIPPolicy(leader_sets=1)),
    ("tadip", lambda g, a: TADIPPolicy(num_cores=2, leader_sets=1)),
    ("srrip", lambda g, a: SRRIPPolicy()),
    ("drrip", lambda g, a: DRRIPPolicy(leader_sets=1)),
    ("optimal", lambda g, a: OptimalPolicy(annotate_next_use(a, g))),
    ("dbrb-sampler", lambda g, a: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=2))),
    ("dbrb-reftrace", lambda g, a: DBRBPolicy(LRUPolicy(), RefTracePredictor())),
    ("dbrb-counting", lambda g, a: DBRBPolicy(LRUPolicy(), CountingPredictor())),
    ("dbrb-aip", lambda g, a: DBRBPolicy(LRUPolicy(), AIPPredictor())),
    ("dbrb-time", lambda g, a: DBRBPolicy(LRUPolicy(), TimeBasedPredictor())),
    ("dbrb-bursts", lambda g, a: DBRBPolicy(LRUPolicy(), BurstFilter(RefTracePredictor()))),
    ("dbrb-random-sampler", lambda g, a: DBRBPolicy(RandomPolicy(seed=5), SamplingDeadBlockPredictor(sampler_assoc=2))),
]


@settings(max_examples=25, deadline=None)
@given(pairs=access_strings)
def test_accounting_identities_hold_for_every_policy(pairs):
    """accesses = hits + misses; fills = misses - bypasses; residency =
    fills - evictions; everything non-negative."""
    geometry = small_geometry()
    for name, factory in POLICY_FACTORIES:
        accesses = build_accesses(pairs, geometry)
        cache = Cache(geometry, factory(geometry, accesses))
        for access in accesses:
            cache.access(access)
        stats = cache.stats
        assert stats.accesses == len(accesses), name
        assert stats.hits + stats.misses == stats.accesses, name
        assert stats.fills == stats.misses - stats.bypasses, name
        resident = sum(1 for _ in cache.resident_blocks())
        assert resident == stats.fills - stats.evictions, name
        assert stats.writebacks <= stats.evictions, name
        assert stats.dead_block_victims <= stats.evictions, name


@settings(max_examples=25, deadline=None)
@given(pairs=access_strings)
def test_set_occupancy_never_exceeds_associativity(pairs):
    geometry = small_geometry()
    for name, factory in POLICY_FACTORIES:
        accesses = build_accesses(pairs, geometry)
        cache = Cache(geometry, factory(geometry, accesses))
        for access in accesses:
            cache.access(access)
            for ways in cache.sets:
                valid = [b for b in ways if b.valid]
                tags = [b.tag for b in valid]
                assert len(tags) == len(set(tags)), f"{name}: duplicate tags"


@settings(max_examples=25, deadline=None)
@given(pairs=access_strings)
def test_optimal_dominates_every_policy(pairs):
    """Belady MIN with bypass must achieve at least as many hits as every
    other policy on the same access string."""
    geometry = small_geometry()
    accesses = build_accesses(pairs, geometry)
    optimal_cache = Cache(
        geometry, OptimalPolicy(annotate_next_use(accesses, geometry))
    )
    for access in accesses:
        optimal_cache.access(access)
    optimal_hits = optimal_cache.stats.hits

    for name, factory in POLICY_FACTORIES:
        if name == "optimal":
            continue
        accesses = build_accesses(pairs, geometry)
        cache = Cache(geometry, factory(geometry, accesses))
        for access in accesses:
            cache.access(access)
        assert cache.stats.hits <= optimal_hits, name


@settings(max_examples=20, deadline=None)
@given(pairs=access_strings)
def test_runs_are_deterministic(pairs):
    """Two identical runs of any policy produce identical statistics."""
    geometry = small_geometry()
    for name, factory in POLICY_FACTORIES:
        outcomes = []
        for _ in range(2):
            accesses = build_accesses(pairs, geometry)
            cache = Cache(geometry, factory(geometry, accesses))
            hits = [cache.access(access) for access in accesses]
            outcomes.append((hits, cache.stats.snapshot()))
        assert outcomes[0][0] == outcomes[1][0], name
        assert outcomes[0][1] == outcomes[1][1], name


@settings(max_examples=25, deadline=None)
@given(pairs=access_strings)
def test_sampler_structural_invariants(pairs):
    """The sampler's LRU stacks stay permutations and its sets never hold
    duplicate partial tags."""
    geometry = small_geometry()
    predictor = SamplingDeadBlockPredictor(sampler_assoc=2)
    cache = Cache(geometry, DBRBPolicy(LRUPolicy(), predictor))
    for access in build_accesses(pairs, geometry):
        cache.access(access)
        sampler = predictor.sampler
        for stack in sampler._stacks:
            assert sorted(stack) == list(range(sampler.associativity))
        for entries in sampler.sets:
            tags = [e.partial_tag for e in entries if e.valid]
            assert len(tags) == len(set(tags))
