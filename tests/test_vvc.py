"""Tests for the virtual victim cache extension."""

import pytest

from repro.cache import Cache, CacheAccess, CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.replacement import LRUPolicy
from repro.vvc import VictimRelocationCache


def geometry(sets=4, assoc=2):
    return CacheGeometry(sets * assoc * 64, assoc, 64)


def access(block, seq, pc=0x1):
    return CacheAccess(address=block * 64, pc=pc, seq=seq)


class TestConstruction:
    def test_requires_two_sets(self):
        with pytest.raises(ValueError):
            VictimRelocationCache(CacheGeometry(1 * 2 * 64, 2, 64), LRUPolicy())

    def test_partner_pairing(self):
        assert VictimRelocationCache.partner_of(0) == 1
        assert VictimRelocationCache.partner_of(1) == 0
        assert VictimRelocationCache.partner_of(6) == 7


class TestRelocation:
    def build(self):
        cache = VictimRelocationCache(geometry(), LRUPolicy())
        return cache

    def test_live_victim_parks_in_invalid_partner_frame(self):
        cache = self.build()
        # Fill set 0 (blocks 0, 4), set 1 left empty.
        cache.access(access(0, 0))
        cache.access(access(4, 1))
        # Block 8 (set 0) evicts block 0 -> relocated to set 1.
        cache.access(access(8, 2))
        assert cache.vvc_stats.relocations == 1
        assert cache.stats.evictions == 0  # nothing actually left the cache

    def test_vvc_hit_promotes_home(self):
        cache = self.build()
        cache.access(access(0, 0))
        cache.access(access(4, 1))
        cache.access(access(8, 2))   # block 0 parked in set 1
        hit = cache.access(access(0, 3))
        assert hit
        assert cache.vvc_stats.vvc_hits == 1
        assert cache.vvc_stats.promotions == 1
        assert cache.contains(0)
        # Block 0's relocated copy is gone (its promotion may in turn have
        # parked set 0's displaced victim, which is fine).
        leftover = [
            b for _, _, b in cache.resident_blocks()
            if b.meta.get("vvc_home_tag") == cache.geometry.tag(0)
            and b.meta.get("vvc_home_set") == 0
        ]
        assert not leftover

    def test_no_relocation_without_dead_or_invalid_frame(self):
        cache = self.build()
        # Fill both partner sets with live blocks.
        for seq, block in enumerate((0, 4, 1, 5)):
            cache.access(access(block, seq))
        cache.access(access(8, 4))  # set 0 eviction; set 1 full & live
        assert cache.vvc_stats.relocations == 0
        assert cache.stats.evictions == 1

    def test_relocation_into_dead_partner_frame(self):
        cache = self.build()
        for seq, block in enumerate((0, 4, 1, 5)):
            cache.access(access(block, seq))
        # Mark block 1 (set 1) dead: it may be displaced by a victim.
        set_index = cache.geometry.set_index(1 * 64)
        way = cache.find(set_index, cache.geometry.tag(1 * 64))
        cache.sets[set_index][way].predicted_dead = True
        cache.access(access(8, 4))  # set 0 victim parks over dead block 1
        assert cache.vvc_stats.relocations == 1
        assert not cache.contains(1 * 64)
        assert cache.stats.evictions == 1  # the dead block truly left

    def test_relocated_blocks_not_relocated_again(self):
        cache = self.build()
        cache.access(access(0, 0))
        cache.access(access(4, 1))
        cache.access(access(8, 2))   # block 0 -> set 1
        # Fill set 1 and force evictions there; the relocated copy may be
        # evicted but must not bounce to set 0.
        cache.access(access(1, 3))
        cache.access(access(5, 4))
        assert cache.vvc_stats.relocations == 1  # no second relocation

    def test_dirty_bit_travels(self):
        cache = self.build()
        cache.access(CacheAccess(address=0, pc=0x1, is_write=True, seq=0))
        cache.access(access(4, 1))
        cache.access(access(8, 2))  # dirty block 0 parked
        parked = next(
            b for _, _, b in cache.resident_blocks() if "vvc_home_set" in b.meta
        )
        assert parked.dirty
        # Promotion carries dirtiness home again.
        cache.access(access(0, 3))
        home = cache.find(cache.geometry.set_index(0), cache.geometry.tag(0))
        assert cache.sets[0][home].dirty


class TestVVCWithSamplerWorkload:
    def test_vvc_reduces_misses_on_skewed_sets(self):
        """The PACT 2010 motivation: hot sets borrow capacity from sets
        whose blocks are dead.  Build a workload where even sets thrash a
        4-way working set while odd sets hold single-touch (dead) data."""
        shape = geometry(sets=8, assoc=2)

        def workload():
            seq = 0
            cold = 0
            for _ in range(60):
                for hot in range(3):  # 3 blocks in set 0: thrash for 2 ways
                    yield access(hot * 8, seq)  # blocks 0,8,16 -> set 0
                    seq += 1
                yield access(1 + 8 * (cold % 40), seq)  # set 1, single touch
                seq += 1
                cold += 1

        def run(cache):
            for a in workload():
                cache.access(a)
            return cache.stats.misses

        plain_policy = DBRBPolicy(
            LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=2),
            enable_bypass=False,
        )
        vvc_policy = DBRBPolicy(
            LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=2),
            enable_bypass=False,
        )
        plain = run(Cache(shape, plain_policy))
        vvc_cache = VictimRelocationCache(shape, vvc_policy)
        vvc = run(vvc_cache)
        assert vvc_cache.vvc_stats.relocations > 0
        assert vvc_cache.vvc_stats.vvc_hits > 0
        assert vvc < plain
