"""The batched DBRB kernel: equivalence, ablation fallback, fleet identity.

PR focus: the paper's headline technique -- DBRB over the sampling dead
block predictor -- now replays array-native.  The prediction plane is a
pure function of the access stream (with ``use_sampler=True`` the
sampler sees every access to a sampled set whether the LLC hit or
missed, and training comes exclusively from the sampler), so the kernel
consumes a precomputed ``dead[p]`` plane and must leave behind exactly
the object path's state: stats including bypasses and dead-block
victims, block contents including the per-block prediction bit, the
default policy's recency stacks or RNG position, and the predictor's
sampler sets, sampler stacks, and skewed counter tables.

Three layers of pinning, mirroring ``test_replay_array``:

* golden full-state equivalence on a stream engineered to actually
  exercise bypasses and dead-victim overrides (scanning PCs that train
  dead, reuse PCs that train live);
* a hypothesis property over random streams and geometries for both
  default policies;
* every Figure 6 ablation shape must fall back to the object kernel
  with its documented ``dbrb-*`` reason;
* sweep bit-identity with the kernel toggled on/off across the serial
  and parallel shared-memory paths, plus the fleet: a sampler sweep
  surviving a chaos-killed worker must stay bit-identical to the
  kernel-off serial reference.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cache.cache import Cache, CacheAccess
from repro.cache.geometry import CacheGeometry
from repro.core import DBRBPolicy, SamplingDeadBlockPredictor
from repro.predictors import CountingPredictor
from repro.replacement import LRUPolicy, RandomPolicy, TreePLRUPolicy
from repro.sim.replay import replay
from repro.utils.rng import XorShift64

GEOMETRY = CacheGeometry(size_bytes=64 * 8 * 64, associativity=8, block_bytes=64)

#: Both Table V cells that build a DBRBPolicy over the sampling predictor.
DBRB_POLICIES = {
    "sampler": lambda: DBRBPolicy(LRUPolicy(), SamplingDeadBlockPredictor()),
    "random_sampler": lambda: DBRBPolicy(
        RandomPolicy(), SamplingDeadBlockPredictor()
    ),
}


def make_dead_stream(geometry, length=6000, seed=11, seq_offset=0):
    """A stream whose predictions actually fire.

    Scanning PCs touch a 4x-capacity footprint once per visit (their
    sampler evictions train *dead*), while a handful of reuse PCs hammer
    a hot 1/16th (their sampler hits train *live*).  The skewed tables
    saturate for the scan signatures, producing real bypasses and
    dead-victim overrides -- without this shaping, ``dead[p]`` stays all
    zeros and the equivalence below would be vacuous.
    """
    rng = XorShift64(seed)
    footprint = geometry.num_sets * geometry.associativity * 4
    hot = max(1, footprint // 16)
    accesses = []
    for position in range(length):
        if rng.random() < 0.55:
            block = rng.randrange(footprint)
            pc = 0x40 + (block % 3)
        else:
            block = rng.randrange(hot)
            pc = 0x900 + (block % 5)
        accesses.append(
            CacheAccess(
                address=block * geometry.block_bytes,
                pc=pc,
                is_write=rng.random() < 0.25,
                seq=position + seq_offset,
                core=0,
            )
        )
    return accesses


def make_mixed_stream(geometry, length=4000, seed=7):
    """test_replay_array's generator: reuse skew, conflicts, varied PCs."""
    rng = XorShift64(seed)
    footprint = geometry.num_sets * geometry.associativity * 3
    accesses = []
    for position in range(length):
        block = rng.randrange(footprint)
        if rng.random() < 0.5:
            block = rng.randrange(max(1, footprint // 8))
        accesses.append(
            CacheAccess(
                address=block * geometry.block_bytes,
                pc=block & 0xFFFF,
                is_write=rng.random() < 0.3,
                seq=position,
                core=0,
            )
        )
    return accesses


def decompose(geometry, accesses):
    offset_bits = geometry.offset_bits
    index_mask = geometry.num_sets - 1
    set_indices = [(a.address >> offset_bits) & index_mask for a in accesses]
    tags = [(a.address >> offset_bits) >> geometry.index_bits for a in accesses]
    return set_indices, tags


def dbrb_state(policy):
    """Every DBRB internal the array kernel must reproduce exactly."""
    state = {}
    default = policy.default
    if hasattr(default, "_stacks"):
        state["default_stacks"] = repr(default._stacks)
    rng = getattr(default, "_rng", None)
    if rng is not None:
        state["default_rng"] = rng._state
    predictor = policy.predictor
    state["tables"] = repr(predictor.tables.tables)
    sampler = predictor.sampler
    state["sampler_sets"] = [
        [
            (entry.valid, entry.partial_tag, entry.signature, entry.prediction)
            for entry in entries
        ]
        for entries in sampler.sets
    ]
    state["sampler_stacks"] = repr(sampler._stacks)
    state["sampler_counters"] = (sampler.accesses, sampler.hits, sampler.evictions)
    return state


def block_state(cache):
    return [
        (
            block.valid, block.tag, block.dirty, block.predicted_dead,
            block.fill_seq, block.last_access_seq, block.access_count,
            dict(block.meta) if block.meta else {},
        )
        for blocks in cache.sets
        for block in blocks
    ]


def replay_both(policy_factory, geometry, accesses, monkeypatch):
    """Replay on the object then the array kernel; return both sides."""
    set_indices, tags = decompose(geometry, accesses)
    results = {}
    for mode in ("0", "1"):
        monkeypatch.setenv("REPRO_ARRAY_KERNEL", mode)
        cache = Cache(geometry, policy_factory())
        hits = replay(cache, accesses, set_indices, tags)
        results[mode] = (hits, cache)
    return results["0"], results["1"]


def assert_equivalent(object_side, array_side):
    object_hits, object_cache = object_side
    array_hits, array_cache = array_side
    assert array_cache.last_replay_kernel == "array", (
        f"array kernel declined: {array_cache.last_replay_fallback}"
    )
    assert object_cache.last_replay_kernel == "object"
    assert array_hits == object_hits
    assert array_cache.stats.snapshot() == object_cache.stats.snapshot()
    assert array_cache._tag_index == object_cache._tag_index
    assert block_state(array_cache) == block_state(object_cache)
    assert dbrb_state(array_cache.policy) == dbrb_state(object_cache.policy)


# ----------------------------------------------------------------------
# golden equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(DBRB_POLICIES))
def test_dbrb_array_kernel_matches_object_kernel(name, monkeypatch):
    accesses = make_dead_stream(GEOMETRY)
    object_side, array_side = replay_both(
        DBRB_POLICIES[name], GEOMETRY, accesses, monkeypatch
    )
    assert_equivalent(object_side, array_side)
    # The engineered stream must exercise every DBRB-specific path, or
    # the full-state equivalence above proves nothing about them.
    stats = array_side[1].stats
    assert stats.hits > 0 and stats.misses > 0 and stats.evictions > 0
    assert stats.writebacks > 0
    assert stats.bypasses > 0, "predictions never fired on the fill path"
    assert stats.dead_block_victims > 0, "victim override never fired"


@pytest.mark.parametrize("name", sorted(DBRB_POLICIES))
def test_dbrb_array_kernel_mixed_stream(name, monkeypatch):
    """Varied-PC traffic where predictions mostly stay quiet: the kernel
    must agree on the boring streams too, not just the engineered one."""
    accesses = make_mixed_stream(GEOMETRY)
    object_side, array_side = replay_both(
        DBRB_POLICIES[name], GEOMETRY, accesses, monkeypatch
    )
    assert_equivalent(object_side, array_side)


def test_dbrb_array_kernel_handles_stream_seq_offsets(monkeypatch):
    """seq != position streams exercise the materializer's slow branch;
    the prediction plane must keep indexing by position regardless."""
    accesses = make_dead_stream(GEOMETRY, length=3000, seq_offset=50_000)
    object_side, array_side = replay_both(
        DBRB_POLICIES["sampler"], GEOMETRY, accesses, monkeypatch
    )
    assert_equivalent(object_side, array_side)
    resident = [b for b in block_state(array_side[1]) if b[0]]
    assert resident and all(b[4] >= 50_000 for b in resident)


@given(
    seed=st.integers(0, 2**32 - 1),
    length=st.integers(150, 600),
    sets=st.sampled_from([8, 16]),
    assoc=st.sampled_from([2, 4]),
    name=st.sampled_from(sorted(DBRB_POLICIES)),
    engineered=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_dbrb_equivalence_property(seed, length, sets, assoc, name, engineered):
    """Random streams and geometries (including caches smaller than the
    32-set sampler, where every set is sampled): never a divergence."""
    geometry = CacheGeometry(size_bytes=sets * assoc * 64, associativity=assoc)
    maker = make_dead_stream if engineered else make_mixed_stream
    accesses = maker(geometry, length=length, seed=seed | 1)
    monkeypatch = pytest.MonkeyPatch()
    try:
        object_side, array_side = replay_both(
            DBRB_POLICIES[name], geometry, accesses, monkeypatch
        )
    finally:
        monkeypatch.undo()
    assert_equivalent(object_side, array_side)


# ----------------------------------------------------------------------
# ablation shapes: every documented dbrb-* fallback reason
# ----------------------------------------------------------------------
STREAM = make_dead_stream(GEOMETRY)
SET_INDICES, TAGS = decompose(GEOMETRY, STREAM)

ABLATIONS = {
    "dbrb-predictor:CountingPredictor": lambda: DBRBPolicy(
        LRUPolicy(), CountingPredictor()
    ),
    "dbrb-default:TreePLRUPolicy": lambda: DBRBPolicy(
        TreePLRUPolicy(), SamplingDeadBlockPredictor()
    ),
    "dbrb-no-bypass": lambda: DBRBPolicy(
        LRUPolicy(), SamplingDeadBlockPredictor(), enable_bypass=False
    ),
    "dbrb-no-replacement": lambda: DBRBPolicy(
        LRUPolicy(), SamplingDeadBlockPredictor(), enable_replacement=False
    ),
    "dbrb-no-sampler": lambda: DBRBPolicy(
        LRUPolicy(), SamplingDeadBlockPredictor(use_sampler=False)
    ),
    "dbrb-single-table": lambda: DBRBPolicy(
        LRUPolicy(), SamplingDeadBlockPredictor(skewed=False)
    ),
    "dbrb-sampler-geometry": lambda: DBRBPolicy(
        LRUPolicy(), SamplingDeadBlockPredictor(sampler_assoc=16)
    ),
    "dbrb-table-geometry": lambda: DBRBPolicy(
        LRUPolicy(), SamplingDeadBlockPredictor(threshold=4)
    ),
}


@pytest.mark.parametrize("reason", sorted(ABLATIONS))
def test_dbrb_fallback_ablation_shapes(reason, monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    cache = Cache(GEOMETRY, ABLATIONS[reason]())
    replay(cache, STREAM, SET_INDICES, TAGS)
    assert cache.last_replay_kernel == "object"
    assert cache.last_replay_fallback == reason


def test_dbrb_fallback_warm_predictor(monkeypatch):
    """The plane simulates from a cold predictor, so pre-trained tables
    or a touched sampler must push the replay to the object kernel."""
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1")
    trained = Cache(GEOMETRY, DBRB_POLICIES["sampler"]())
    trained.policy.predictor.tables.train(1, dead=True)
    replay(trained, STREAM, SET_INDICES, TAGS)
    assert trained.last_replay_kernel == "object"
    assert trained.last_replay_fallback == "dbrb-warm-predictor"

    touched = Cache(GEOMETRY, DBRB_POLICIES["sampler"]())
    touched.policy.predictor.sampler.accesses = 1
    replay(touched, STREAM, SET_INDICES, TAGS)
    assert touched.last_replay_kernel == "object"
    assert touched.last_replay_fallback == "dbrb-warm-predictor"


# ----------------------------------------------------------------------
# end-to-end sweep bit-identity, kernel on vs off
# ----------------------------------------------------------------------
SWEEP_BENCHMARKS = ("mcf",)
SWEEP_TECHNIQUES = ("sampler", "random_sampler")


def run_sweep(monkeypatch, array_kernel, **kwargs):
    from repro.harness.export import to_dict
    from repro.harness.parallel import parallel_single_thread_comparison
    from repro.harness.runner import ExperimentConfig

    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "1" if array_kernel else "0")
    config = ExperimentConfig(instructions=30_000)
    comparison = parallel_single_thread_comparison(
        config, SWEEP_TECHNIQUES, SWEEP_BENCHMARKS, **kwargs
    )
    return to_dict(comparison)


def test_dbrb_sweep_bit_identity_array_on_off_serial(monkeypatch):
    assert run_sweep(monkeypatch, True, jobs=1) == run_sweep(
        monkeypatch, False, jobs=1
    )


@pytest.mark.faults
def test_dbrb_sweep_bit_identity_array_on_parallel_shm(monkeypatch):
    """Array kernel inside spawn workers with shared-memory streams must
    match the kernel-off serial sweep bit for bit."""
    parallel = run_sweep(monkeypatch, True, jobs=2, shared_memory=True)
    serial = run_sweep(monkeypatch, False, jobs=1)
    assert parallel == serial


# ----------------------------------------------------------------------
# fleet: a sampler sweep survives a chaos-killed worker bit-identically
# ----------------------------------------------------------------------
_KILL_EXIT_CODE = 67


def _spawn_worker(url, name, root, extra_env):
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_CHAOS", None)
    env.update(extra_env)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", url, "--name", name, "--once",
            "--stream-cache", str(root / f"worker-streams-{name}"),
        ],
        env=env,
    )


@pytest.mark.fleet(timeout=240)
def test_fleet_sampler_bit_identity_across_chaos_kill(tmp_path, monkeypatch):
    """The PR's acceptance bar, end to end: sampler cells replayed on the
    array kernel inside real fleet workers -- one chaos-killed mid-lease,
    its cells re-dispatched -- produce the same bytes as a kernel-off
    serial sweep in this process."""
    from repro.harness.export import to_dict
    from repro.harness.parallel import parallel_single_thread_comparison
    from repro.harness.runner import ExperimentConfig, WorkloadCache
    from repro.service.client import ServiceClient
    from repro.service.scheduler import ExperimentScheduler
    from repro.service.server import ExperimentServer

    config = ExperimentConfig(scale=16, instructions=10_000, seed=1)
    monkeypatch.setenv("REPRO_ARRAY_KERNEL", "0")
    serial = parallel_single_thread_comparison(
        WorkloadCache(config), list(SWEEP_TECHNIQUES), ("perlbench",), jobs=1
    )
    expected = to_dict(serial)
    monkeypatch.delenv("REPRO_ARRAY_KERNEL", raising=False)

    scheduler = ExperimentScheduler(
        job_store=tmp_path / "service",
        stream_cache=tmp_path / "streams",
        fleet=True,
        lease_ttl=0.5,
        heartbeat_seconds=0.1,
        lease_cells=2,
    )
    handle = ExperimentServer(scheduler, port=0).start_in_thread()
    workers = []
    try:
        url = f"http://127.0.0.1:{handle.port}"
        client = ServiceClient(url)
        job = client.submit(
            client="dbrb-chaos",
            benchmarks=["perlbench"], techniques=list(SWEEP_TECHNIQUES),
            sweep=True,
            config={
                "scale": config.scale,
                "instructions": config.instructions,
                "seed": config.seed,
                "cores": config.num_cores,
            },
        )
        # The victim leases with the array kernel on and is chaos-rigged
        # to die, kill -9 style, the moment it starts its first cell.
        victim = _spawn_worker(
            url, "victim", tmp_path,
            {"REPRO_CHAOS": "kill:1@1", "REPRO_ARRAY_KERNEL": "1"},
        )
        workers.append(victim)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if client.stats()["fleet"]["cells"]["leased"] >= 1:
                break
            time.sleep(0.1)
        else:
            pytest.fail("victim worker never leased a cell")
        assert victim.wait(timeout=60.0) == _KILL_EXIT_CODE

        survivor = _spawn_worker(
            url, "survivor", tmp_path, {"REPRO_ARRAY_KERNEL": "1"}
        )
        workers.append(survivor)
        final = client.wait(job["id"], timeout=180.0)
        assert final["state"] == "done", final.get("error")
        assert client.result(job["id"]) == expected

        fleet = client.stats()["fleet"]
        assert fleet["cells"]["redispatched"] >= 1
        assert fleet["leases"]["expired"] >= 1
        assert survivor.wait(timeout=60.0) == 0
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        handle.stop()
