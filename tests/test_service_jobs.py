"""Job model and persistent job store (:mod:`repro.service.jobs`).

Pure state-machine and persistence tests: no server, no pools.  Pins the
contracts the scheduler and HTTP layer build on -- legal/illegal
transitions, content-addressed cell keys shared with the checkpoint
store, atomic job records, and restart resume semantics.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.checkpoint import CheckpointStore
from repro.harness.runner import ExperimentConfig
from repro.service.jobs import (
    Job,
    JobStateError,
    JobStore,
    STATES,
    TERMINAL_STATES,
    cell_key,
    config_from_dict,
)

CONFIG = ExperimentConfig(instructions=20_000)


def make_job(**overrides) -> Job:
    kwargs = dict(
        kind="sweep",
        client="alice",
        priority=0,
        config=CONFIG,
        benchmarks=("perlbench",),
        techniques=("rrip",),
        cells=(("perlbench", None), ("perlbench", "rrip")),
        seq=1,
    )
    kwargs.update(overrides)
    return Job.new(**kwargs)


class TestStateMachine:
    def test_happy_path(self):
        job = make_job()
        assert job.state == "queued" and not job.is_terminal
        job.transition("running")
        assert job.started_at is not None and job.finished_at is None
        job.transition("done")
        assert job.is_terminal and job.finished_at is not None

    def test_queued_straight_to_done_covers_full_dedup(self):
        # A job whose every cell was already checkpointed never runs.
        job = make_job()
        job.transition("done")
        assert job.state == "done" and job.started_at is None

    def test_cancel_from_queued_and_running(self):
        for first in ((), ("running",)):
            job = make_job()
            for state in first:
                job.transition(state)
            job.transition("cancelled")
            assert job.is_terminal

    @pytest.mark.parametrize("terminal", TERMINAL_STATES)
    def test_terminal_states_never_transition(self, terminal):
        job = make_job()
        job.state = terminal
        for target in STATES:
            if target == terminal:
                job.transition(target)  # same-state is a no-op
            else:
                with pytest.raises(JobStateError, match="illegal transition"):
                    job.transition(target)

    def test_running_cannot_requeue(self):
        job = make_job()
        job.transition("running")
        with pytest.raises(JobStateError):
            job.transition("queued")

    def test_unknown_state_rejected(self):
        with pytest.raises(JobStateError, match="unknown job state"):
            make_job().transition("paused")


class TestCellKeys:
    def test_service_and_checkpoint_agree(self):
        # Dedup is sound only if both layers address cells identically.
        for technique in ("sampler", None):
            assert cell_key(CONFIG, "mcf", technique) == CheckpointStore.cell_key(
                CONFIG, "mcf", technique
            )

    def test_key_distinguishes_configs(self):
        other = ExperimentConfig(instructions=20_000, seed=2)
        assert cell_key(CONFIG, "mcf", "rrip") != cell_key(other, "mcf", "rrip")


class TestConfigFromDict:
    def test_defaults_and_partial_fill(self):
        assert config_from_dict(None) == ExperimentConfig()
        assert config_from_dict({"instructions": 5}) == ExperimentConfig(instructions=5)

    def test_cores_spelling_maps_to_num_cores(self):
        assert config_from_dict({"cores": 2}).num_cores == 2

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            config_from_dict({"scael": 8})

    @pytest.mark.parametrize(
        "raw",
        [{"scale": 0}, {"instructions": -1}, {"seed": "1"}, {"cores": True},
         {"scale": 1.5}],
    )
    def test_bad_values_rejected(self, raw):
        with pytest.raises(ValueError, match="positive integer"):
            config_from_dict(raw)


class TestJobStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job()
        job.transition("running")
        store.save(job, progress={"total": 2, "done": 1, "failed": 0, "pending": 1})
        loaded = store.load(job.id)
        assert loaded is not None
        assert loaded.to_dict() == job.to_dict()
        assert loaded.cells == job.cells
        assert loaded.config == CONFIG

    def test_missing_and_torn_records_read_as_none(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.load("job-nope") is None
        job = make_job()
        path = store.save(job)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load(job.id) is None

    def test_record_with_unknown_state_reads_as_none(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job()
        path = store.save(job)
        record = json.loads(path.read_text())
        record["state"] = "paused"
        path.write_text(json.dumps(record))
        assert store.load(job.id) is None

    def test_load_all_orders_by_seq(self, tmp_path):
        store = JobStore(tmp_path)
        later = make_job(seq=7)
        earlier = make_job(seq=3)
        store.save(later)
        store.save(earlier)
        assert [job.seq for job in store.load_all()] == [3, 7]
        assert len(store) == 2

    def test_resume_requeues_interrupted_jobs(self, tmp_path):
        # A job caught 'running' by a crash must come back as 'queued'
        # (its finished cells are checkpoint dedup hits on re-admit),
        # and the flip must itself be persisted.
        store = JobStore(tmp_path)
        running = make_job(seq=1)
        running.transition("running")
        done = make_job(seq=2)
        done.transition("done")
        queued = make_job(seq=3)
        for job in (running, done, queued):
            store.save(job)

        resumed = {job.seq: job for job in store.resume()}
        assert resumed[1].state == "queued"
        assert resumed[2].state == "done"
        assert resumed[3].state == "queued"
        # Persisted, not just in-memory: a second store sees the flip.
        assert JobStore(tmp_path).load(running.id).state == "queued"
