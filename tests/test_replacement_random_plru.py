"""Tests for random and tree-PLRU replacement."""

import pytest

from repro.cache import Cache
from repro.replacement import LRUPolicy, RandomPolicy, TreePLRUPolicy

from tests.conftest import replay, tiny_geometry


class TestRandomPolicy:
    def test_reproducible_with_same_seed(self):
        pattern = list(range(12)) * 3
        results = []
        for _ in range(2):
            cache = Cache(tiny_geometry(sets=2, assoc=2), RandomPolicy(seed=99))
            results.append(replay(cache, pattern))
        assert results[0] == results[1]

    def test_different_seeds_choose_different_victims(self):
        from repro.cache import CacheObserver

        class WayRecorder(CacheObserver):
            def __init__(self):
                self.ways = []

            def on_evict(self, set_index, way, block, access):
                self.ways.append((set_index, way))

        pattern = list(range(24)) * 4
        recordings = []
        for seed in (1, 2):
            cache = Cache(tiny_geometry(sets=2, assoc=2), RandomPolicy(seed=seed))
            recorder = WayRecorder()
            cache.add_observer(recorder)
            replay(cache, pattern)
            recordings.append(recorder.ways)
        # ~88 evictions of 1 random bit each: identical sequences for two
        # seeds would mean the streams are correlated.
        assert recordings[0] != recordings[1]

    def test_victims_cover_all_ways(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, RandomPolicy(seed=5))
        evicted_ways = set()

        from repro.cache import CacheObserver

        class WayRecorder(CacheObserver):
            def on_evict(self, set_index, way, block, access):
                evicted_ways.add(way)

        cache.add_observer(WayRecorder())
        replay(cache, list(range(200)))
        assert evicted_ways == {0, 1, 2, 3}

    def test_hits_still_happen(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, RandomPolicy(seed=5))
        hits = replay(cache, [0, 1, 0, 1, 0, 1])
        assert hits == [False, False, True, True, True, True]


class TestTreePLRU:
    def test_requires_power_of_two_assoc(self):
        # Construct an 8-block, 2-set, 4-way geometry but claim 3 ways:
        # geometry validation rejects non-dividing assoc first, so build a
        # legal 12-block geometry with 3 ways.
        from repro.cache.geometry import CacheGeometry

        geometry = CacheGeometry(size_bytes=3 * 4 * 64, associativity=3, block_bytes=64)
        with pytest.raises(ValueError):
            Cache(geometry, TreePLRUPolicy())

    def test_assoc_two_matches_true_lru(self):
        """With 2 ways, tree PLRU degenerates to exact LRU."""
        pattern = [0, 1, 2, 0, 1, 2, 3, 0, 3, 1, 2, 0, 0, 1]
        plru = Cache(tiny_geometry(sets=2, assoc=2), TreePLRUPolicy())
        lru = Cache(tiny_geometry(sets=2, assoc=2), LRUPolicy())
        assert replay(plru, pattern) == replay(lru, pattern)

    def test_most_recent_block_never_victimized(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, TreePLRUPolicy())
        replay(cache, [0, 1, 2, 3])
        # Touch block 3 (way 3), then force an eviction: way 3 must survive.
        replay_result = replay(cache, [3, 4])
        assert replay_result == [True, False]
        assert cache.contains(3 * 64)

    def test_fills_all_ways_before_evicting(self):
        geometry = tiny_geometry(sets=1, assoc=8)
        cache = Cache(geometry, TreePLRUPolicy())
        replay(cache, list(range(8)))
        assert cache.stats.evictions == 0
        assert len(list(cache.resident_blocks())) == 8

    def test_repeated_scans_evict_everything_eventually(self):
        geometry = tiny_geometry(sets=1, assoc=4)
        cache = Cache(geometry, TreePLRUPolicy())
        replay(cache, list(range(100)))
        assert cache.stats.evictions == 96
